//! Deterministic tests for the histogram math and the Prometheus text
//! exposition checker (the same checker CI runs against the
//! `observability` example's output).

use cer_obs::{
    bucket_bounds, validate_prometheus_text, Histogram, HistogramSnapshot, MetricsSnapshot, BUCKETS,
};

#[test]
fn bucket_boundaries_are_exact() {
    // A sample equal to a bucket's upper bound must land in that
    // bucket: recording the bound then asking for p100 returns the
    // bound itself, while bound+1 reports the next bucket up.
    let bounds = bucket_bounds();
    for &bound in bounds.iter().take(20) {
        let h = Histogram::new();
        h.record(bound);
        assert_eq!(h.snapshot().max(), bound);

        let h2 = Histogram::new();
        h2.record(bound + 1);
        assert!(h2.snapshot().max() > bound);
    }
    // Everything beyond the top finite bound saturates there.
    let h = Histogram::new();
    h.record(u64::MAX);
    assert_eq!(h.snapshot().max(), bounds[bounds.len() - 1]);
}

#[test]
fn merge_is_associative_and_commutative() {
    let mk = |samples: &[u64]| {
        let h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    };
    let a = mk(&[10, 50, 2_000, 1_000_000]);
    let b = mk(&[16, 17, 40_000]);
    let c = mk(&[1, 1, 1, 900_000_000]);

    let merge = |x: &HistogramSnapshot, y: &HistogramSnapshot| {
        let mut out = x.clone();
        out.merge(y);
        out
    };
    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
    assert_eq!(merge(&merge(&a, &b), &c), merge(&a, &merge(&b, &c)));
    // a ⊕ b == b ⊕ a
    assert_eq!(merge(&a, &b), merge(&b, &a));
    // Counts add.
    assert_eq!(merge(&a, &b).count(), a.count() + b.count());
}

#[test]
fn exact_percentiles_on_hand_built_distributions() {
    let bounds = bucket_bounds();
    // 100 samples: 50 in bucket 0, 40 in bucket 5, 10 in bucket 10.
    // Every quantile is then knowable exactly.
    let mut counts = [0u64; BUCKETS];
    counts[0] = 50;
    counts[5] = 40;
    counts[10] = 10;
    let s = HistogramSnapshot { counts };
    assert_eq!(s.count(), 100);
    assert_eq!(s.p50(), bounds[0]); // rank 50 is the last of bucket 0
    assert_eq!(s.quantile(0.51), bounds[5]); // rank 51 starts bucket 5
    assert_eq!(s.p90(), bounds[5]); // rank 90 is the last of bucket 5
    assert_eq!(s.p99(), bounds[10]);
    assert_eq!(s.max(), bounds[10]);
    assert_eq!(s.quantile(0.0), bounds[0]); // clamped to rank 1
    assert_eq!(s.quantile(1.0), bounds[10]);

    // Empty histogram: all zeros, no panic.
    let empty = HistogramSnapshot::default();
    assert_eq!(empty.p50(), 0);
    assert_eq!(empty.max(), 0);
    assert_eq!(empty.count(), 0);
}

#[test]
fn single_sample_every_quantile_is_its_bucket() {
    let h = Histogram::new();
    h.record(777);
    let s = h.snapshot();
    let v = s.p50();
    assert!(v >= 777, "quantile is an upper bound");
    assert_eq!(s.p99(), v);
    assert_eq!(s.max(), v);
    assert_eq!(s.count(), 1);
}

#[test]
fn exporter_output_is_always_valid() {
    // Exercise the exporter across empty, labelled and histogram-heavy
    // snapshots; the checker must accept every rendering.
    let mut s = MetricsSnapshot::new();
    validate_prometheus_text(&s.to_prometheus_text()).unwrap();

    s.push_counter("a_total", "plain", &[], 0);
    s.push_gauge(
        "b",
        "labels with \"quotes\" and \\slashes\\",
        &[("k", "va\"lue\\with\nnewline".to_string())],
        3,
    );
    let h = Histogram::new();
    for i in 0..1000u64 {
        h.record(i * 97);
    }
    s.push_histogram(
        "c_nanos",
        "hist",
        &[("shard", "2".to_string())],
        h.snapshot(),
    );
    let text = s.to_prometheus_text();
    validate_prometheus_text(&text).unwrap();
}

#[test]
fn checker_catches_real_world_mistakes() {
    // A _count that disagrees with the +Inf bucket — the classic
    // aggregation bug this checker exists to catch.
    let bad = "\
# TYPE x_nanos histogram
x_nanos_bucket{le=\"100\"} 4
x_nanos_bucket{le=\"+Inf\"} 9
x_nanos_sum 123
x_nanos_count 10
";
    assert!(validate_prometheus_text(bad).is_err());

    // Missing +Inf bucket.
    let bad2 = "\
# TYPE x_nanos histogram
x_nanos_bucket{le=\"100\"} 4
x_nanos_sum 1
x_nanos_count 4
";
    assert!(validate_prometheus_text(bad2).is_err());
}

//! Bounded ring-buffer event journal.
//!
//! Pipeline events (backpressure parks, drops, query churn, snapshots)
//! are rare compared to tuple traffic, so the journal trades a short
//! mutex for strict sequencing: every pushed item receives a
//! monotonically increasing sequence number, and when the ring wraps
//! the overwritten entries are *counted*, never silently lost — a
//! reader draining the journal can always tell how much history it
//! missed.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One journal entry: the item plus its journal-assigned sequence
/// number (0-based, dense, monotone across the life of the journal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry<T> {
    /// Position of this entry in the journal's total history.
    pub seq: u64,
    /// The recorded event.
    pub item: T,
}

/// A bounded, overwrite-oldest event journal.
///
/// `push` is `&self` (internally synchronized) so producers, shard
/// workers and the control plane can all record into one shared
/// journal. `drain` removes and returns the retained entries in
/// sequence order.
pub struct Journal<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
}

struct Inner<T> {
    ring: VecDeque<JournalEntry<T>>,
    next_seq: u64,
    overwritten: u64,
}

impl<T> Journal<T> {
    /// A journal retaining at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Journal {
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                next_seq: 0,
                overwritten: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, assigning it the next sequence number (which is
    /// returned). Evicts the oldest retained entry when full.
    pub fn push(&self, item: T) -> u64 {
        let mut g = self.inner.lock().unwrap();
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.ring.len() == self.capacity {
            g.ring.pop_front();
            g.overwritten += 1;
        }
        g.ring.push_back(JournalEntry { seq, item });
        seq
    }

    /// Remove and return all retained entries, oldest first. Sequence
    /// numbers in the result are strictly increasing; a gap between the
    /// last previously drained `seq` and the first returned one means
    /// the ring wrapped in between (see [`overwritten`](Self::overwritten)).
    pub fn drain(&self) -> Vec<JournalEntry<T>> {
        let mut g = self.inner.lock().unwrap();
        g.ring.drain(..).collect()
    }

    /// Total entries evicted by ring wrap-around since creation
    /// (monotone; never reset by [`drain`](Self::drain)).
    pub fn overwritten(&self) -> u64 {
        self.inner.lock().unwrap().overwritten
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether no entries are currently retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever pushed (equals the next sequence number).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_dense_and_survive_drain() {
        let j = Journal::new(8);
        for i in 0..5 {
            assert_eq!(j.push(i), i as u64);
        }
        let first = j.drain();
        assert_eq!(
            first.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        j.push(99);
        let second = j.drain();
        assert_eq!(second[0].seq, 5);
        assert_eq!(j.overwritten(), 0);
    }

    #[test]
    fn wraparound_counts_overwrites_and_keeps_newest() {
        let j = Journal::new(3);
        for i in 0..7u32 {
            j.push(i);
        }
        assert_eq!(j.overwritten(), 4);
        let kept = j.drain();
        assert_eq!(kept.len(), 3);
        assert_eq!(
            kept.iter().map(|e| e.item).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert_eq!(
            kept.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        // Overwritten count is monotone across drains.
        assert_eq!(j.overwritten(), 4);
    }
}

//! Lock-free metric primitives: counters, gauges and the log-bucketed
//! latency histogram.
//!
//! See the crate docs for the hot-path cost model. The histogram's
//! bucket layout is fixed at compile time: [`BUCKETS`] buckets whose
//! upper bounds grow geometrically by ×1.35 from 16 ns, spanning
//! ~16 ns … ~1.9 s, plus one unbounded overflow bucket. The layout is
//! identical in every histogram, which is what makes per-shard
//! instances mergeable by plain bucket-count addition (merging is
//! associative and commutative — it is integer vector addition).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets (the last one is unbounded).
pub const BUCKETS: usize = 64;

/// Number of finite bucket upper bounds (`BUCKETS - 1`; the last
/// bucket catches everything above the top bound).
const FINITE: usize = BUCKETS - 1;

/// The finite bucket upper bounds, in nanoseconds: `BOUNDS[i]` is the
/// largest value bucket `i` holds. Geometric ×1.35 from 16 ns.
const BOUNDS: [u64; FINITE] = build_bounds();

const fn build_bounds() -> [u64; FINITE] {
    let mut b = [0u64; FINITE];
    let mut v: u64 = 16;
    let mut i = 0;
    while i < FINITE {
        b[i] = v;
        // ×1.35, rounding down but always advancing.
        let next = v + v * 7 / 20;
        v = if next > v { next } else { v + 1 };
        i += 1;
    }
    b
}

/// The fixed bucket upper bounds shared by every [`Histogram`]
/// (nanoseconds; the final bucket is unbounded and has no entry here).
pub fn bucket_bounds() -> &'static [u64; FINITE] {
    &BOUNDS
}

/// Bucket index for a sample: the first bucket whose upper bound holds
/// it, or the overflow bucket. Pure arithmetic — a binary search over
/// the compile-time bound table.
#[inline]
fn bucket_index(v: u64) -> usize {
    BOUNDS.partition_point(|&b| b < v)
}

/// A monotone event counter: one relaxed `fetch_add` per increment.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge: one relaxed store per update.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-bucketed latency histogram.
///
/// Recording is **one relaxed atomic add** to the sample's bucket
/// counter — the index is computed from the compile-time bound table,
/// nothing else is written, so concurrent writers from any number of
/// threads never contend beyond cache-line traffic on the same bucket.
/// Derived figures (count, percentiles, max) are computed from a
/// [`snapshot`](Histogram::snapshot) on the read side.
///
/// Resolution follows the ×1.35 bucket ratio: any reported quantile is
/// the *upper bound* of the bucket holding it, so it overestimates by
/// at most 35%. Samples below 16 ns land in the first bucket; samples
/// above the top finite bound (~1.9 s) land in the unbounded overflow
/// bucket and saturate quantile extraction at that top bound.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample (nanoseconds). One relaxed atomic add.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.counts[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`Duration`] sample, saturating at `u64::MAX` ns.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts. Each bucket is read
    /// relaxed, so a snapshot racing concurrent writers is a *plausible*
    /// state (every counted sample was recorded), not a linearizable
    /// cut — fine for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (out, c) in counts.iter_mut().zip(&self.counts) {
            *out = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts }
    }

    /// Total samples recorded so far (sum of the buckets, relaxed).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// An owned copy of a histogram's bucket counts: mergeable, queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`BUCKETS` entries; the last is the
    /// unbounded overflow bucket).
    pub counts: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Merge another snapshot into this one (bucket-count addition —
    /// associative and commutative, so shard merge order never matters).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The reporting value of bucket `i`: its upper bound, with the
    /// unbounded overflow bucket saturating at the top finite bound.
    fn bucket_value(i: usize) -> u64 {
        BOUNDS[i.min(FINITE - 1)]
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the upper bound
    /// of the bucket containing the sample at rank `ceil(q·count)`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(BUCKETS - 1)
    }

    /// Median (see [`quantile`](Self::quantile) for semantics).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Largest recorded sample, as its bucket's upper bound (0 when
    /// empty; saturates at the top finite bound).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(Self::bucket_value)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_roughly_geometric() {
        let b = bucket_bounds();
        assert_eq!(b[0], 16);
        for w in b.windows(2) {
            assert!(w[1] > w[0]);
            // ×1.35 with integer floor: never more than exact, never
            // less than ×1.3 (the floor costs at most one part in v).
            assert!(w[1] <= w[0] + w[0] * 7 / 20);
            assert!(w[1] as f64 >= w[0] as f64 * 1.3, "{} -> {}", w[0], w[1]);
        }
        // The table spans sub-microsecond to over a second.
        assert!(b[FINITE - 1] > 1_000_000_000, "top bound {}", b[FINITE - 1]);
    }

    #[test]
    fn bucket_index_respects_boundaries_exactly() {
        let b = bucket_bounds();
        // A bound value lands in its own bucket; one past it in the next.
        for (i, &bound) in b.iter().enumerate() {
            assert_eq!(bucket_index(bound), i, "at bound {bound}");
            assert_eq!(bucket_index(bound + 1), i + 1, "past bound {bound}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }
}

//! Metrics export surface: a self-describing [`MetricsSnapshot`] that
//! renders to Prometheus text exposition format and round-trips
//! through `cer_common::wire`, plus a hand-rolled
//! [`validate_prometheus_text`] checker used by CI to keep the
//! exporter honest.

use crate::hist::{bucket_bounds, HistogramSnapshot, BUCKETS};
use cer_common::wire::{Wire, WireError, WireReader, WireWriter};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// The value of one exported metric.
// Unboxed histogram variant: snapshots are built on demand (cold
// path), and most metrics in a snapshot are histograms anyway — the
// size skew buys zero-allocation construction.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Last-observed level.
    Gauge(u64),
    /// Latency distribution (bucket counts; nanosecond bounds).
    Histogram(HistogramSnapshot),
}

/// One exported metric: a name, help text, optional labels and a value.
/// Several metrics may share a name with different label sets (e.g. a
/// per-shard breakdown); the renderer groups them under one
/// `# HELP`/`# TYPE` header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metric {
    /// Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Label pairs attached to every sample of this metric.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time bundle of every exported metric. Built by the
/// runtime on demand; renders to Prometheus text and encodes to the
/// checkpoint wire format for network shipping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The metrics, in export order. Same-name metrics should be
    /// adjacent (the Prometheus format requires one uninterrupted group
    /// per name).
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a counter metric.
    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, String)], v: u64) {
        self.push(name, help, labels, MetricValue::Counter(v));
    }

    /// Append a gauge metric.
    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, String)], v: u64) {
        self.push(name, help, labels, MetricValue::Gauge(v));
    }

    /// Append a histogram metric.
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, String)],
        v: HistogramSnapshot,
    ) {
        self.push(name, help, labels, MetricValue::Histogram(v));
    }

    fn push(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: MetricValue) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            value,
        });
    }

    /// Find a metric by name and exact label set (mostly for tests).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Render the snapshot in Prometheus text exposition format.
    ///
    /// Counters and gauges render as single samples. Histograms render
    /// as cumulative `_bucket{le="…"}` series (nanosecond bounds) ending
    /// at `le="+Inf"`, plus `_count` and an *approximate* `_sum` (each
    /// sample contributes its bucket's upper bound — the write path
    /// keeps no exact sum, see the crate cost model).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut seen_header: HashSet<&str> = HashSet::new();
        for m in &self.metrics {
            if seen_header.insert(m.name.as_str()) {
                let kind = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
                let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            }
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, render_labels(&m.labels, None), v);
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    let mut approx_sum = 0u128;
                    let bounds = bucket_bounds();
                    for (i, &c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = if i < bounds.len() {
                            approx_sum += c as u128 * bounds[i] as u128;
                            bounds[i].to_string()
                        } else {
                            approx_sum += c as u128 * bounds[bounds.len() - 1] as u128;
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.name,
                            render_labels(&m.labels, Some(&le)),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        render_labels(&m.labels, None),
                        approx_sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        render_labels(&m.labels, None),
                        cum
                    );
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

// ---------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------

impl Wire for HistogramSnapshot {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        // Fixed-size array: no length prefix needed, the bucket count is
        // part of the format.
        for &c in &self.counts {
            w.put_u64(c);
        }
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut counts = [0u64; BUCKETS];
        for c in counts.iter_mut() {
            *c = r.get_u64()?;
        }
        Ok(HistogramSnapshot { counts })
    }
}

impl Wire for MetricValue {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            MetricValue::Counter(v) => {
                w.put_u8(0);
                w.put_u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.put_u8(1);
                w.put_u64(*v);
            }
            MetricValue::Histogram(h) => {
                w.put_u8(2);
                h.encode(w)?;
            }
        }
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(MetricValue::Counter(r.get_u64()?)),
            1 => Ok(MetricValue::Gauge(r.get_u64()?)),
            2 => Ok(MetricValue::Histogram(HistogramSnapshot::decode(r)?)),
            _ => Err(WireError::Corrupt("metric value tag")),
        }
    }
}

impl Wire for Metric {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.name.encode(w)?;
        self.help.encode(w)?;
        self.labels.encode(w)?;
        self.value.encode(w)
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Metric {
            name: String::decode(r)?,
            help: String::decode(r)?,
            labels: Vec::decode(r)?,
            value: MetricValue::decode(r)?,
        })
    }
}

impl Wire for MetricsSnapshot {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.metrics.encode(w)
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MetricsSnapshot {
            metrics: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------
// Format checker
// ---------------------------------------------------------------------

/// Validate a Prometheus text exposition payload. Returns `Err` with a
/// line-numbered message on the first violation.
///
/// Checks, per the exposition format spec (the subset our exporter and
/// any scraper cares about):
/// * every line is a `# HELP`/`# TYPE` comment, a sample, or blank;
/// * metric and label names are well-formed, label values are quoted;
/// * sample values parse as numbers (`+Inf`/`-Inf`/`NaN` allowed);
/// * at most one `TYPE` per metric name, appearing before its samples;
/// * all samples of one name form a single uninterrupted group;
/// * for `histogram` types: only `_bucket`/`_sum`/`_count` suffixed
///   samples, `_bucket` carries an `le` label, each label set ends with
///   an `le="+Inf"` bucket whose cumulative value is non-decreasing in
///   bucket order and equals that label set's `_count`.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // name -> finished flag (a name group ends when a different name's
    // sample appears; reopening it is a violation).
    let mut open: Option<String> = None;
    let mut finished: HashSet<String> = HashSet::new();
    // (histogram base name, non-le labels) -> (last cumulative, last le, saw +Inf)
    #[derive(Default)]
    struct BucketState {
        last_cum: u64,
        last_le: f64,
        saw_inf: bool,
        inf_value: u64,
    }
    let mut buckets: HashMap<(String, String), BucketState> = HashMap::new();
    let mut counts: HashMap<(String, String), u64> = HashMap::new();

    for (idx, line) in text.lines().enumerate() {
        let ln = idx + 1;
        let err = |msg: String| Err(format!("line {ln}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let payload = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return err(format!("HELP for invalid metric name {name:?}"));
                    }
                }
                "TYPE" => {
                    if !valid_metric_name(name) {
                        return err(format!("TYPE for invalid metric name {name:?}"));
                    }
                    if !matches!(
                        payload,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return err(format!("unknown TYPE {payload:?}"));
                    }
                    if types
                        .insert(name.to_string(), payload.to_string())
                        .is_some()
                    {
                        return err(format!("duplicate TYPE for {name}"));
                    }
                    if finished.contains(name) {
                        return err(format!("TYPE for {name} after its samples"));
                    }
                }
                _ => return err(format!("unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: comment must start with '# '"));
        }

        let (name, labels, value) = parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        // Resolve the base name for typed families.
        let base = histogram_base(&name, &types);
        let group_name = base.clone().unwrap_or_else(|| name.clone());
        match &open {
            Some(cur) if *cur == group_name => {}
            _ => {
                if let Some(prev) = open.take() {
                    finished.insert(prev);
                }
                if finished.contains(&group_name) {
                    return err(format!("samples for {group_name} are not contiguous"));
                }
                open = Some(group_name.clone());
            }
        }
        if let Some(t) = types.get(&group_name) {
            if t == "histogram" {
                let Some(base) = base else {
                    return err(format!(
                        "histogram {group_name} sample {name} lacks _bucket/_sum/_count suffix"
                    ));
                };
                let non_le: Vec<&(String, String)> =
                    labels.iter().filter(|(k, _)| k != "le").collect();
                let key = (
                    base.clone(),
                    non_le
                        .iter()
                        .map(|(k, v)| format!("{k}={v},"))
                        .collect::<String>(),
                );
                if name.ends_with("_bucket") {
                    let Some((_, le)) = labels.iter().find(|(k, _)| k == "le") else {
                        return err(format!("{name} missing le label"));
                    };
                    let le_val = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse::<f64>()
                            .map_err(|_| format!("line {ln}: bad le value {le:?}"))?
                    };
                    let cum = value as u64;
                    let st = buckets.entry(key).or_default();
                    if st.saw_inf {
                        return err(format!("{base}: bucket after le=\"+Inf\""));
                    }
                    if st.last_cum > 0 || st.last_le != 0.0 {
                        if le_val <= st.last_le {
                            return err(format!("{base}: le not increasing"));
                        }
                        if cum < st.last_cum {
                            return err(format!("{base}: bucket counts not cumulative"));
                        }
                    }
                    st.last_cum = cum;
                    st.last_le = le_val;
                    if le_val.is_infinite() {
                        st.saw_inf = true;
                        st.inf_value = cum;
                    }
                } else if name.ends_with("_count") {
                    if !labels.iter().all(|(k, _)| k != "le") {
                        return err(format!("{name} must not carry le"));
                    }
                    counts.insert(key, value as u64);
                }
                continue;
            }
        }
        let _ = value;
    }

    // Every histogram label set must close with +Inf and agree with _count.
    for ((base, labels), st) in &buckets {
        if !st.saw_inf {
            return Err(format!(
                "histogram {base}{{{labels}}}: no le=\"+Inf\" bucket"
            ));
        }
        match counts.get(&(base.clone(), labels.clone())) {
            None => {
                return Err(format!(
                    "histogram {base}{{{labels}}}: missing _count sample"
                ));
            }
            Some(&c) if c != st.inf_value => {
                return Err(format!(
                    "histogram {base}{{{labels}}}: _count {} != +Inf bucket {}",
                    c, st.inf_value
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// If `name` is a suffixed sample of a declared histogram, return the
/// base name.
fn histogram_base(name: &str, types: &HashMap<String, String>) -> Option<String> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_string());
            }
        }
    }
    None
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

type ParsedSample = (String, Vec<(String, String)>, f64);

/// Parse one sample line into (name, labels, value).
fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label brace".to_string())?;
            if close < brace {
                return Err("mismatched braces".into());
            }
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => (line.split_whitespace().next().unwrap_or(""), None),
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let (labels, value_part) = match rest {
        Some((label_str, tail)) => (parse_labels(label_str)?, tail.trim()),
        None => (Vec::new(), line[name_part.len()..].trim()),
    };
    if value_part.is_empty() {
        return Err("missing sample value".into());
    }
    let mut fields = value_part.split_whitespace();
    let value_str = fields.next().unwrap();
    // An optional timestamp may follow; anything after that is junk.
    let _timestamp = fields.next();
    if fields.next().is_some() {
        return Err("trailing garbage after value/timestamp".into());
    }
    let value = match value_str {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {s:?}"))?,
    };
    Ok((name_part.to_string(), labels, value))
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        // Skip separators / whitespace.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            name.push(c);
            chars.next();
        }
        if !valid_label_name(name.trim()) {
            return Err(format!("invalid label name {:?}", name.trim()));
        }
        if chars.next() != Some('=') {
            return Err("label missing '='".into());
        }
        if chars.next() != Some('"') {
            return Err("label value not quoted".into());
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated label value".into()),
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
            }
        }
        out.push((name.trim().to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let h = Histogram::new();
        for v in [10, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        let mut s = MetricsSnapshot::new();
        s.push_counter("cer_tuples_total", "Tuples ingested", &[], 12345);
        s.push_gauge(
            "cer_queue_depth",
            "Current queue depth",
            &[("shard", "0".to_string())],
            7,
        );
        s.push_gauge(
            "cer_queue_depth",
            "Current queue depth",
            &[("shard", "1".to_string())],
            9,
        );
        s.push_histogram(
            "cer_e2e_latency_nanos",
            "Ingest to delivery",
            &[],
            h.snapshot(),
        );
        s
    }

    #[test]
    fn rendered_text_passes_the_checker() {
        let text = sample_snapshot().to_prometheus_text();
        validate_prometheus_text(&text).unwrap();
        assert!(text.contains("# TYPE cer_e2e_latency_nanos histogram"));
        assert!(text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("cer_e2e_latency_nanos_count 5"));
        // One header per name even with two labelled samples.
        assert_eq!(text.matches("# TYPE cer_queue_depth gauge").count(), 1);
    }

    #[test]
    fn checker_rejects_malformed_payloads() {
        for bad in [
            "cer_x{le=\"10\" 5\n",                              // unclosed brace
            "# TYPE cer_x histogram\ncer_x_bucket 5\n",          // bucket without le
            "# TYPE cer_x wat\n",                                // unknown type
            "9cer_x 5\n",                                        // bad name
            "cer_x five\n",                                      // bad value
            "# TYPE cer_x histogram\ncer_x_bucket{le=\"+Inf\"} 5\ncer_x_count 4\n", // count mismatch
            "# TYPE cer_x histogram\ncer_x_bucket{le=\"10\"} 5\ncer_x_bucket{le=\"20\"} 3\ncer_x_bucket{le=\"+Inf\"} 5\ncer_x_count 5\n", // not cumulative
            "cer_a 1\ncer_b 2\ncer_a 3\n",                       // non-contiguous group
        ] {
            assert!(
                validate_prometheus_text(bad).is_err(),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn wire_roundtrip_preserves_snapshot() {
        let s = sample_snapshot();
        let mut w = WireWriter::new();
        s.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = MetricsSnapshot::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, s);
    }
}

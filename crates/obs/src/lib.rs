//! # cer-obs — observability primitives for the streaming runtime
//!
//! The workspace builds offline, so this crate hand-rolls (no external
//! deps, same spirit as the `shims/`) the three things a production
//! stream processor needs to watch itself:
//!
//! * **lock-free metric primitives** — [`Counter`], [`Gauge`] and the
//!   log-bucketed latency [`Histogram`]: 64 fixed power-of-~1.35
//!   buckets, mergeable across shards, with `p50/p90/p99/max`
//!   extraction from a [`HistogramSnapshot`];
//! * a bounded ring-buffer **event [`Journal`]** for structured,
//!   sequence-stamped pipeline events (overwrites are counted, never
//!   silently lost);
//! * an **export surface** — [`MetricsSnapshot`] renders to Prometheus
//!   text exposition format ([`MetricsSnapshot::to_prometheus_text`])
//!   and round-trips through `cer_common::wire`; a hand-rolled
//!   [`validate_prometheus_text`] checker keeps the exporter honest in
//!   CI.
//!
//! # Hot-path cost model
//!
//! Recording a histogram sample is **one relaxed atomic add** to the
//! sample's bucket counter: the bucket index is pure arithmetic (a
//! branchless binary search over a compile-time bound table), no locks,
//! no allocation, no other shared writes. [`Counter::add`] is likewise
//! a single relaxed `fetch_add`. Everything else — percentile
//! extraction, merging shard histograms, rendering — happens on the
//! *read* side, off the hot path. Derived figures (count, max) come
//! from the buckets at read time, so the write side never maintains
//! them.
//!
//! Instrumented pipelines that cannot afford even a timestamp per
//! sample on some path (e.g. an end-to-end latency measured per
//! delivered match) should sample: record every Nth observation and
//! document the knob — the histograms are insensitive to uniform
//! sampling because every percentile is a ratio of bucket counts.
//! (`cer-core`'s runtime exposes exactly such a knob for its
//! ingest→delivery histogram.)
//!
//! [`Journal::push`] takes a short mutex — pipeline *events*
//! (backpressure parks, drops, query churn) are orders of magnitude
//! rarer than samples, so a lock there costs nothing measurable while
//! keeping entries strictly sequenced.

mod export;
mod hist;
mod journal;

pub use export::{validate_prometheus_text, Metric, MetricValue, MetricsSnapshot};
pub use hist::{bucket_bounds, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use journal::{Journal, JournalEntry};

//! q-trees and compact q-trees (Theorem 4.1's backbone, after
//! Berkholz–Keppeler–Schweikardt).
//!
//! A q-tree for a connected HCQ `Q` is a labeled tree with one inner node
//! per variable and one leaf per atom *identifier*, such that the inner
//! nodes on the path from the root to leaf `i` are exactly the variables
//! of atom `i`. A q-tree exists iff `Q` is hierarchical and connected
//! (Theorem B.1); [`QTree::build`] is therefore also a constructive
//! hierarchy test.
//!
//! Disconnected HCQs are handled as in the paper's "general case": a
//! virtual root variable `x∗` conceptually added to every atom
//! ([`QTree::build_rooted`]), later erased from all predicates by the
//! compiler (it contributes no join keys).
//!
//! The *compact* q-tree ([`QTree::compact`]) splices out inner variable
//! nodes with a single child; the compiled PCEA's states are exactly the
//! compact tree's nodes, which is what makes the no-self-join automaton
//! quadratic.

use crate::query::{ConjunctiveQuery, VarId};
use cer_common::hash::{FxHashMap, FxHashSet};
use std::fmt;

/// Label of a q-tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeLabel {
    /// An inner node carrying a query variable.
    Var(VarId),
    /// A leaf carrying an atom identifier.
    Atom(usize),
    /// The virtual root `x∗` used for disconnected queries.
    VirtualRoot,
}

/// A q-tree node.
#[derive(Clone, Debug)]
pub struct QNode {
    /// The node's label.
    pub label: NodeLabel,
    /// Parent index (`None` at the root).
    pub parent: Option<usize>,
    /// Children indices.
    pub children: Vec<usize>,
}

/// Errors raised while building a q-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QTreeError {
    /// No q-tree exists: the query is not hierarchical (or the atom group
    /// passed to the builder is not connected).
    NotHierarchical,
    /// The query must be connected for [`QTree::build`]; use
    /// [`QTree::build_rooted`].
    Disconnected,
}

impl fmt::Display for QTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QTreeError::NotHierarchical => write!(f, "query has no q-tree (not hierarchical)"),
            QTreeError::Disconnected => write!(f, "query is disconnected; use build_rooted"),
        }
    }
}

impl std::error::Error for QTreeError {}

/// A (possibly compact, possibly virtually-rooted) q-tree.
#[derive(Clone, Debug)]
pub struct QTree {
    nodes: Vec<QNode>,
    root: usize,
    /// `leaf_of_atom[i]` is the node index of atom `i`'s leaf.
    leaf_of_atom: Vec<usize>,
}

impl QTree {
    /// Build the canonical q-tree of a connected HCQ.
    ///
    /// Fails with [`QTreeError::Disconnected`] on disconnected input and
    /// [`QTreeError::NotHierarchical`] when no q-tree exists.
    pub fn build(q: &ConjunctiveQuery) -> Result<QTree, QTreeError> {
        if !q.is_connected() {
            return Err(QTreeError::Disconnected);
        }
        let mut tree = QTree {
            nodes: Vec::new(),
            root: 0,
            leaf_of_atom: vec![usize::MAX; q.num_atoms()],
        };
        let all: Vec<usize> = (0..q.num_atoms()).collect();
        let root = tree.grow(q, &all, &FxHashSet::default(), None)?;
        tree.root = root;
        Ok(tree)
    }

    /// Build a q-tree for an arbitrary (possibly disconnected) HCQ: a
    /// single component yields its plain q-tree; multiple components hang
    /// from a [`NodeLabel::VirtualRoot`] node (the fresh variable `x∗` of
    /// the paper's general case).
    pub fn build_rooted(q: &ConjunctiveQuery) -> Result<QTree, QTreeError> {
        let components = q.connected_components();
        if components.len() == 1 {
            return Self::build(q);
        }
        let mut tree = QTree {
            nodes: Vec::new(),
            root: 0,
            leaf_of_atom: vec![usize::MAX; q.num_atoms()],
        };
        let root = tree.push(NodeLabel::VirtualRoot, None);
        for comp in &components {
            let child = tree.grow(q, comp, &FxHashSet::default(), Some(root))?;
            tree.nodes[root].children.push(child);
        }
        tree.root = root;
        Ok(tree)
    }

    fn push(&mut self, label: NodeLabel, parent: Option<usize>) -> usize {
        self.nodes.push(QNode {
            label,
            parent,
            children: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Grow the subtree for a variable-connected atom group whose common
    /// handled prefix is `handled`. Returns the subtree root (not yet
    /// registered in the parent's child list).
    fn grow(
        &mut self,
        q: &ConjunctiveQuery,
        group: &[usize],
        handled: &FxHashSet<VarId>,
        parent: Option<usize>,
    ) -> Result<usize, QTreeError> {
        // V_all: variables occurring in every atom of the group, fresh.
        let mut v_all: Vec<VarId> = q
            .atom(group[0])
            .variables()
            .into_iter()
            .filter(|v| !handled.contains(v))
            .filter(|v| group[1..].iter().all(|&i| q.atom(i).contains_var(*v)))
            .collect();
        v_all.sort();
        if v_all.is_empty() {
            // Only a single fully-handled atom can terminate here.
            return match group {
                &[atom] => {
                    let leaf = self.push(NodeLabel::Atom(atom), parent);
                    self.leaf_of_atom[atom] = leaf;
                    Ok(leaf)
                }
                _ => Err(QTreeError::NotHierarchical),
            };
        }
        // Chain the common variables into a path v1 → … → vk. The caller
        // links `v1` into `parent`'s child list; inner path links are made
        // here.
        let mut top = usize::MAX;
        let mut last = parent;
        for &v in &v_all {
            let node = self.push(NodeLabel::Var(v), last);
            if top == usize::MAX {
                top = node;
            } else {
                let prev = last.expect("previous path node");
                self.nodes[prev].children.push(node);
            }
            last = Some(node);
        }
        let vk = last.expect("non-empty path");
        let mut handled2 = handled.clone();
        handled2.extend(v_all.iter().copied());
        // Atoms fully covered by the path become leaves under vk; the
        // rest split into components connected via the remaining vars.
        let mut remaining: Vec<usize> = Vec::new();
        for &i in group {
            let fresh: Vec<VarId> = q
                .atom(i)
                .variables()
                .into_iter()
                .filter(|v| !handled2.contains(v))
                .collect();
            if fresh.is_empty() {
                let leaf = self.push(NodeLabel::Atom(i), Some(vk));
                self.nodes[vk].children.push(leaf);
                self.leaf_of_atom[i] = leaf;
            } else {
                remaining.push(i);
            }
        }
        for comp in components_among(q, &remaining, &handled2) {
            let child = self.grow(q, &comp, &handled2, Some(vk))?;
            self.nodes[vk].children.push(child);
        }
        Ok(top)
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, i: usize) -> &QNode {
        &self.nodes[i]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (never the case after `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate `(index, node)` pairs, skipping nodes spliced out by
    /// [`QTree::compact`].
    pub fn iter(&self) -> impl Iterator<Item = (usize, &QNode)> {
        let live = self.live_set();
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(i, _)| live.contains(i))
    }

    fn live_set(&self) -> FxHashSet<usize> {
        let mut live = FxHashSet::default();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            live.insert(n);
            stack.extend(self.nodes[n].children.iter().copied());
        }
        live
    }

    /// Leaf node index for atom `i`.
    pub fn leaf_of_atom(&self, i: usize) -> usize {
        self.leaf_of_atom[i]
    }

    /// Whether node `n` is a leaf (atom) node.
    pub fn is_leaf(&self, n: usize) -> bool {
        matches!(self.nodes[n].label, NodeLabel::Atom(_))
    }

    /// Node indices on the path from the root to `n`, inclusive.
    pub fn path_from_root(&self, n: usize) -> Vec<usize> {
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Atom identifiers at or below node `n`, ascending.
    pub fn atoms_below(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            match self.nodes[m].label {
                NodeLabel::Atom(i) => out.push(i),
                _ => stack.extend(self.nodes[m].children.iter().copied()),
            }
        }
        out.sort_unstable();
        out
    }

    /// The inner node carrying variable `v`, if present.
    pub fn var_node(&self, v: VarId) -> Option<usize> {
        let live = self.live_set();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| live.contains(i))
            .find(|(_, n)| n.label == NodeLabel::Var(v))
            .map(|(i, _)| i)
    }

    /// The compact q-tree: splice out inner variable nodes with a single
    /// child. When the single child is itself an inner node the child is
    /// absorbed (the parent keeps its label, as in Figure 4's `τc_Q2`);
    /// when it is a leaf the variable node is removed and the leaf takes
    /// its place.
    pub fn compact(&self) -> QTree {
        let mut t = self.clone();
        loop {
            let live = t.live_set();
            let candidate = live.iter().copied().find(|&n| {
                matches!(t.nodes[n].label, NodeLabel::Var(_)) && t.nodes[n].children.len() == 1
            });
            let Some(n) = candidate else { break };
            let child = t.nodes[n].children[0];
            if t.is_leaf(child) {
                // Remove the variable node; the leaf takes its place.
                match t.nodes[n].parent {
                    Some(p) => {
                        let slot = t.nodes[p]
                            .children
                            .iter()
                            .position(|&c| c == n)
                            .expect("child link");
                        t.nodes[p].children[slot] = child;
                        t.nodes[child].parent = Some(p);
                    }
                    None => {
                        t.nodes[child].parent = None;
                        t.root = child;
                    }
                }
            } else {
                // Absorb the child: n inherits the grandchildren.
                let grandchildren = std::mem::take(&mut t.nodes[child].children);
                for &g in &grandchildren {
                    t.nodes[g].parent = Some(n);
                }
                t.nodes[n].children = grandchildren;
            }
        }
        t
    }

    /// Validate the *full* q-tree conditions against `q`: a unique inner
    /// node per variable, a unique leaf per atom identifier, and the path
    /// to each leaf carrying exactly the atom's variables.
    pub fn validate_full(&self, q: &ConjunctiveQuery) -> Result<(), String> {
        let mut var_nodes: FxHashMap<VarId, usize> = FxHashMap::default();
        let mut atom_leaves: FxHashMap<usize, usize> = FxHashMap::default();
        for (i, n) in self.iter() {
            match n.label {
                NodeLabel::Var(v) => {
                    if var_nodes.insert(v, i).is_some() {
                        return Err(format!("variable {v:?} labels two inner nodes"));
                    }
                    if n.children.is_empty() {
                        return Err(format!("variable node {v:?} is a leaf"));
                    }
                }
                NodeLabel::Atom(a) => {
                    if atom_leaves.insert(a, i).is_some() {
                        return Err(format!("atom {a} labels two leaves"));
                    }
                    if !n.children.is_empty() {
                        return Err(format!("atom node {a} is not a leaf"));
                    }
                }
                NodeLabel::VirtualRoot => {}
            }
        }
        for v in q.variables() {
            if !q.atoms_containing(v).is_empty() && !var_nodes.contains_key(&v) {
                return Err(format!("variable {v:?} missing from the tree"));
            }
        }
        for a in 0..q.num_atoms() {
            let Some(&leaf) = atom_leaves.get(&a) else {
                return Err(format!("atom {a} missing from the tree"));
            };
            let mut path_vars: Vec<VarId> = self
                .path_from_root(leaf)
                .iter()
                .filter_map(|&n| match self.nodes[n].label {
                    NodeLabel::Var(v) => Some(v),
                    _ => None,
                })
                .collect();
            path_vars.sort();
            let mut atom_vars = q.atom(a).variables();
            atom_vars.sort();
            if path_vars != atom_vars {
                return Err(format!(
                    "path to atom {a} carries {path_vars:?}, expected {atom_vars:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Partition `atoms` into groups connected via variables outside
/// `handled`.
fn components_among(
    q: &ConjunctiveQuery,
    atoms: &[usize],
    handled: &FxHashSet<VarId>,
) -> Vec<Vec<usize>> {
    let mut parent: FxHashMap<usize, usize> = atoms.iter().map(|&i| (i, i)).collect();
    fn find(parent: &mut FxHashMap<usize, usize>, i: usize) -> usize {
        let p = parent[&i];
        if p == i {
            return i;
        }
        let root = find(parent, p);
        parent.insert(i, root);
        root
    }
    for v in q.variables() {
        if handled.contains(&v) {
            continue;
        }
        let members: Vec<usize> = atoms
            .iter()
            .copied()
            .filter(|&i| q.atom(i).contains_var(v))
            .collect();
        for w in members.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent.insert(a, b);
            }
        }
    }
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for &i in atoms {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cer_common::Schema;

    fn q(text: &str) -> ConjunctiveQuery {
        let mut schema = Schema::new();
        parse_query(&mut schema, text).unwrap()
    }

    #[test]
    fn q0_tree_matches_figure_2() {
        // Root x with children {leaf T, y}; y with children {leaf S, leaf R}.
        let query = q("Q0(x, y) <- T(x), S(x, y), R(x, y)");
        let tree = QTree::build(&query).unwrap();
        tree.validate_full(&query).unwrap();
        let root = tree.root();
        assert_eq!(tree.node(root).label, NodeLabel::Var(VarId(0)));
        assert_eq!(tree.node(root).children.len(), 2);
        // Leaf of T(x) hangs directly from x.
        assert_eq!(tree.node(tree.leaf_of_atom(0)).parent, Some(root));
        // Leaves of S and R hang from y.
        let y = tree.var_node(VarId(1)).unwrap();
        assert_eq!(tree.node(tree.leaf_of_atom(1)).parent, Some(y));
        assert_eq!(tree.node(tree.leaf_of_atom(2)).parent, Some(y));
        assert_eq!(tree.node(y).parent, Some(root));
    }

    #[test]
    fn q1_tree_matches_figure_3() {
        // Q1(x,y,z,v,w) ← R(x,y,z), S(x,y,v), T(x,w), U(x,y).
        let query = q("Q(x, y, z, v, w) <- R(x, y, z), S(x, y, v), T(x, w), U(x, y)");
        let tree = QTree::build(&query).unwrap();
        tree.validate_full(&query).unwrap();
        // 5 variables + 4 atoms = 9 nodes.
        assert_eq!(tree.iter().count(), 9);
        // Figure 4 compact: x → {y → {U, R, S}, T}: 6 live nodes.
        let compact = tree.compact();
        assert_eq!(compact.iter().count(), 6);
        let root = compact.root();
        assert_eq!(compact.node(root).label, NodeLabel::Var(VarId(0)));
        let y = compact.var_node(VarId(1)).unwrap();
        assert_eq!(compact.node(y).children.len(), 3);
        // T's leaf (atom 2) hangs from x; z, v, w are gone.
        assert_eq!(compact.node(compact.leaf_of_atom(2)).parent, Some(root));
        assert!(compact.var_node(VarId(2)).is_none());
        assert!(compact.var_node(VarId(3)).is_none());
        assert!(compact.var_node(VarId(4)).is_none());
    }

    #[test]
    fn q2_selfjoin_tree_matches_figure_3_and_4() {
        // Q2(x,y,z,v) ← R(x,y,z), R(x,y,v), U(x,y).
        let query = q("Q(x, y, z, v) <- R(x, y, z), R(x, y, v), U(x, y)");
        let tree = QTree::build(&query).unwrap();
        tree.validate_full(&query).unwrap();
        let compact = tree.compact();
        // Figure 4: a single variable root with three leaves.
        assert_eq!(compact.iter().count(), 4);
        let root = compact.root();
        assert!(matches!(compact.node(root).label, NodeLabel::Var(_)));
        assert_eq!(compact.node(root).children.len(), 3);
        for a in 0..3 {
            assert_eq!(compact.node(compact.leaf_of_atom(a)).parent, Some(root));
        }
    }

    #[test]
    fn non_hierarchical_has_no_tree() {
        let query = q("Q(x, y) <- R(x), S(x, y), T(y)");
        assert_eq!(
            QTree::build(&query).unwrap_err(),
            QTreeError::NotHierarchical
        );
        // Result PartialEq via derive on QTreeError only; compare variant.
    }

    #[test]
    fn disconnected_needs_virtual_root() {
        let query = q("Q(x, y) <- T(x), U(y)");
        assert_eq!(QTree::build(&query).unwrap_err(), QTreeError::Disconnected);
        let tree = QTree::build_rooted(&query).unwrap();
        assert_eq!(tree.node(tree.root()).label, NodeLabel::VirtualRoot);
        assert_eq!(tree.node(tree.root()).children.len(), 2);
    }

    #[test]
    fn single_atom_tree_compacts_to_leaf() {
        let query = q("Q(x) <- T(x)");
        let tree = QTree::build(&query).unwrap();
        tree.validate_full(&query).unwrap();
        let compact = tree.compact();
        assert!(compact.is_leaf(compact.root()));
    }

    #[test]
    fn atoms_below_and_paths() {
        let query = q("Q0(x, y) <- T(x), S(x, y), R(x, y)");
        let tree = QTree::build(&query).unwrap();
        assert_eq!(tree.atoms_below(tree.root()), vec![0, 1, 2]);
        let y = tree.var_node(VarId(1)).unwrap();
        assert_eq!(tree.atoms_below(y), vec![1, 2]);
        let leaf_r = tree.leaf_of_atom(2);
        let path = tree.path_from_root(leaf_r);
        assert_eq!(path.len(), 3); // x, y, leaf
        assert_eq!(path[0], tree.root());
    }

    #[test]
    fn star_query_tree_shape() {
        let query = q("Q(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)");
        let tree = QTree::build(&query).unwrap();
        tree.validate_full(&query).unwrap();
        let compact = tree.compact();
        // Compact: x → {A0, y1 → A1?...}: y1 has single child A1 → leaf
        // splices up: x → {A0, A1, A2}? No: y1's removal replaces it by
        // the leaf under x.
        let root = compact.root();
        assert_eq!(compact.node(root).children.len(), 3);
        assert!(compact.var_node(VarId(1)).is_none());
        assert!(compact.var_node(VarId(2)).is_none());
    }

    #[test]
    fn validate_rejects_foreign_tree() {
        let q0 = q("Q0(x, y) <- T(x), S(x, y), R(x, y)");
        let other = q("Q(x, y) <- T(x), S(x, y)");
        let tree = QTree::build(&other).unwrap();
        assert!(tree.validate_full(&q0).is_err());
    }

    #[test]
    fn repeated_atom_gets_two_leaves() {
        let query = q("Q(x) <- T(x), T(x)");
        let tree = QTree::build(&query).unwrap();
        tree.validate_full(&query).unwrap();
        assert_ne!(tree.leaf_of_atom(0), tree.leaf_of_atom(1));
    }
}

//! Relational databases with duplicates: bags of tuples (Section 4).
//!
//! A database `D` is a bag of `Tuples[σ]`; the paper's stream-to-database
//! bridge `D_n[S] = {{t_0, …, t_n}}` makes stream positions the tuple
//! identifiers, which is what lets CQ outputs (t-homomorphisms) be read as
//! CER valuations.

use crate::bag::Bag;
use cer_common::hash::FxHashMap;
use cer_common::{RelationId, Tuple};

/// A relational database with duplicates over a schema.
///
/// Identifiers are dense indices; when built from a stream prefix they
/// coincide with stream positions.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tuples: Bag<Tuple>,
    /// `by_relation[r]` lists the identifiers of `r`-tuples, ascending.
    by_relation: FxHashMap<RelationId, Vec<usize>>,
}

impl Database {
    /// The empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's `D_n[S]`: the first `n+1` tuples of a stream, with
    /// stream positions as identifiers. Pass the whole prefix
    /// `&stream[..=n]`.
    pub fn from_prefix(prefix: &[Tuple]) -> Self {
        let mut db = Database::new();
        for t in prefix {
            db.insert(t.clone());
        }
        db
    }

    /// Insert a tuple, returning its identifier.
    pub fn insert(&mut self, t: Tuple) -> usize {
        let rel = t.relation();
        let id = self.tuples.push(t);
        self.by_relation.entry(rel).or_default().push(id);
        id
    }

    /// Number of tuples (identifiers).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple with identifier `i`.
    pub fn get(&self, i: usize) -> &Tuple {
        self.tuples.get(i)
    }

    /// The underlying bag.
    pub fn bag(&self) -> &Bag<Tuple> {
        &self.tuples
    }

    /// Identifiers of the sub-bag `R^D` (ascending).
    pub fn relation_ids(&self, r: RelationId) -> &[usize] {
        self.by_relation.get(&r).map_or(&[], Vec::as_slice)
    }

    /// The sub-bag `R^D` as a bag of tuples.
    pub fn relation_bag(&self, r: RelationId) -> Bag<Tuple> {
        self.relation_ids(r)
            .iter()
            .map(|&i| self.get(i).clone())
            .collect()
    }

    /// `mult_D(t)`.
    pub fn multiplicity(&self, t: &Tuple) -> usize {
        self.relation_ids(t.relation())
            .iter()
            .filter(|&&i| self.get(i) == t)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::gen::sigma0_prefix;
    use cer_common::tuple::tup;
    use cer_common::Schema;

    #[test]
    fn d0_from_paper() {
        // D0 = D5[S0] = {{S(2,11), T(2), R(1,10), S(2,11), T(1), R(2,11)}}.
        let (_, r, s, t) = Schema::sigma0();
        let prefix = sigma0_prefix(r, s, t);
        let d0 = Database::from_prefix(&prefix[..=5]);
        assert_eq!(d0.len(), 6);
        // T^{D0} = {{T(2), T(1)}}, S^{D0} = {{S(2,11), S(2,11)}}.
        assert_eq!(d0.relation_ids(t), &[1, 4]);
        assert_eq!(d0.relation_ids(s), &[0, 3]);
        assert_eq!(d0.multiplicity(&tup(s, [2i64, 11])), 2);
        assert_eq!(d0.multiplicity(&tup(t, [2i64])), 1);
        assert_eq!(d0.multiplicity(&tup(r, [9i64, 9])), 0);
    }

    #[test]
    fn identifiers_are_stream_positions() {
        let (_, r, s, t) = Schema::sigma0();
        let prefix = sigma0_prefix(r, s, t);
        let db = Database::from_prefix(&prefix);
        for (i, tuple) in prefix.iter().enumerate() {
            assert_eq!(db.get(i), tuple);
        }
    }

    #[test]
    fn relation_bag_projects_sub_bag() {
        let (_, r, s, t) = Schema::sigma0();
        let prefix = sigma0_prefix(r, s, t);
        let db = Database::from_prefix(&prefix[..=5]);
        let sb = db.relation_bag(s);
        assert_eq!(sb.len(), 2);
        assert!(sb.bag_eq(&crate::bag::Bag::from_items(vec![
            tup(s, [2i64, 11]),
            tup(s, [2i64, 11]),
        ])));
        let _ = (r, t);
    }

    #[test]
    fn empty_relation_has_no_ids() {
        let (_, r, _, _) = Schema::sigma0();
        let db = Database::new();
        assert!(db.is_empty());
        assert!(db.relation_ids(r).is_empty());
    }
}

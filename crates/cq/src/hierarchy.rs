//! The hierarchy test for conjunctive queries (Section 4).
//!
//! `Q` is hierarchical iff it is full and for every pair of variables
//! `x, y`, the atom sets `atoms(x)` and `atoms(y)` are nested or
//! disjoint. HCQ is exactly the class of full CQs with constant-update,
//! constant-delay dynamic evaluation (Berkholz–Keppeler–Schweikardt),
//! and — by Theorems 4.1/4.2 — exactly the acyclic CQs expressible as
//! PCEA.

use crate::query::{ConjunctiveQuery, VarId};

/// Why a query fails to be hierarchical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyViolation {
    /// The query is not full (a body variable is missing from the head).
    NotFull,
    /// A crossing pair: `atoms(x)` and `atoms(y)` overlap without
    /// nesting.
    CrossingPair {
        /// First variable.
        x: VarId,
        /// Second variable.
        y: VarId,
    },
}

/// Check the hierarchy property, reporting the first violation.
pub fn check_hierarchical(q: &ConjunctiveQuery) -> Result<(), HierarchyViolation> {
    if !q.is_full() {
        return Err(HierarchyViolation::NotFull);
    }
    let atom_sets: Vec<Vec<usize>> = q.variables().map(|v| q.atoms_containing(v)).collect();
    for (i, ax) in atom_sets.iter().enumerate() {
        for (j, ay) in atom_sets.iter().enumerate().skip(i + 1) {
            if !nested_or_disjoint(ax, ay) {
                return Err(HierarchyViolation::CrossingPair {
                    x: VarId(i as u32),
                    y: VarId(j as u32),
                });
            }
        }
    }
    Ok(())
}

/// Whether the query is a hierarchical conjunctive query.
pub fn is_hierarchical(q: &ConjunctiveQuery) -> bool {
    check_hierarchical(q).is_ok()
}

/// Sorted-set nesting-or-disjointness test.
fn nested_or_disjoint(a: &[usize], b: &[usize]) -> bool {
    let inter = intersection_size(a, b);
    inter == 0 || inter == a.len() || inter == b.len()
}

fn intersection_size(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cer_common::Schema;

    fn q(text: &str) -> ConjunctiveQuery {
        let mut schema = Schema::new();
        parse_query(&mut schema, text).unwrap()
    }

    #[test]
    fn paper_q0_is_hierarchical() {
        assert!(is_hierarchical(&q("Q0(x, y) <- T(x), S(x, y), R(x, y)")));
    }

    #[test]
    fn paper_q1_is_not_hierarchical() {
        // Q1(x,y) ← T(x), R(x,y), S(2,y), T(x): atoms(x) = {0,1,3},
        // atoms(y) = {1,2} — overlapping, not nested.
        let query = q("Q1(x, y) <- T(x), R(x, y), S(2, y), T(x)");
        let err = check_hierarchical(&query).unwrap_err();
        assert!(matches!(err, HierarchyViolation::CrossingPair { .. }));
    }

    #[test]
    fn non_full_is_rejected() {
        let query = q("Q(x) <- T(x), S(x, y)");
        assert_eq!(check_hierarchical(&query), Err(HierarchyViolation::NotFull));
    }

    #[test]
    fn star_queries_are_hierarchical() {
        assert!(is_hierarchical(&q(
            "Q(x, y1, y2, y3) <- A0(x), A1(x, y1), A2(x, y2), A3(x, y3)"
        )));
    }

    #[test]
    fn matrix_query_is_not_hierarchical() {
        // The canonical non-hierarchical query R(x), S(x,y), T(y).
        assert!(!is_hierarchical(&q("Q(x, y) <- R(x), S(x, y), T(y)")));
    }

    #[test]
    fn big_hierarchical_query_from_figure_3() {
        // Q1(x,y,z,v,w) ← R(x,y,z), S(x,y,v), T(x,w), U(x,y).
        assert!(is_hierarchical(&q(
            "Q(x, y, z, v, w) <- R(x, y, z), S(x, y, v), T(x, w), U(x, y)"
        )));
    }

    #[test]
    fn self_join_query_from_figure_3() {
        // Q2(x,y,z,v) ← R(x,y,z), R(x,y,v), U(x,y).
        assert!(is_hierarchical(&q(
            "Q(x, y, z, v) <- R(x, y, z), R(x, y, v), U(x, y)"
        )));
    }

    #[test]
    fn disconnected_hierarchical() {
        assert!(is_hierarchical(&q("Q(x, y) <- T(x), U(y)")));
    }

    #[test]
    fn single_atom_is_hierarchical() {
        assert!(is_hierarchical(&q("Q(x, y) <- S(x, y)")));
        assert!(is_hierarchical(&q("Q() <- PING()")));
    }
}

//! Conjunctive-query syntax (Section 4).
//!
//! A CQ `Q(x̄) ← R0(x̄0), …, R_{m−1}(x̄_{m−1})` is a head variable list
//! plus a *bag* of atoms: the paper treats `Q` itself as a bag, with atom
//! positions as identifiers, so that self-joins (repeated atoms) keep
//! their identity. Atom identifiers double as the output labels `Ω = I(Q)`
//! of the compiled PCEA.

use cer_common::{RelationId, Schema, Value};
use std::fmt;

/// A query variable, interned per query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An argument of an atom: a variable or a data-value constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A query variable.
    Var(VarId),
    /// A constant from `D`.
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

/// An atom `R(x̄)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation name.
    pub relation: RelationId,
    /// The argument terms.
    pub args: Box<[Term]>,
}

impl Atom {
    /// Distinct variables of the atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in self.args.iter() {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// First position at which `v` occurs, if any.
    pub fn position_of(&self, v: VarId) -> Option<usize> {
        self.args.iter().position(|t| t.as_var() == Some(v))
    }

    /// Whether `v` occurs in the atom.
    pub fn contains_var(&self, v: VarId) -> bool {
        self.position_of(v).is_some()
    }
}

/// Errors raised while building or validating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An atom's argument count disagrees with the schema arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A head variable does not occur in the body.
    UnboundHeadVariable {
        /// Variable name.
        variable: String,
    },
    /// The query body is empty.
    EmptyBody,
    /// Parse error with a message.
    Parse {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "atom {relation} has {got} arguments but arity {expected}"
            ),
            QueryError::UnboundHeadVariable { variable } => {
                write!(f, "head variable {variable} does not occur in the body")
            }
            QueryError::EmptyBody => write!(f, "query body is empty"),
            QueryError::Parse { message } => write!(f, "parse error: {message}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query: head variables plus a bag of atoms.
///
/// Use [`parse_query`](crate::parser::parse_query) or
/// [`QueryBuilder`](crate::parser::QueryBuilder) to construct one.
#[derive(Clone, Debug)]
pub struct ConjunctiveQuery {
    name: String,
    head: Vec<VarId>,
    atoms: Vec<Atom>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Construct directly; validates arity against the schema and that
    /// the body is non-empty.
    pub fn new(
        schema: &Schema,
        name: impl Into<String>,
        head: Vec<VarId>,
        atoms: Vec<Atom>,
        var_names: Vec<String>,
    ) -> Result<Self, QueryError> {
        if atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        for a in &atoms {
            let expected = schema.arity(a.relation);
            if a.args.len() != expected {
                return Err(QueryError::ArityMismatch {
                    relation: schema.name(a.relation).to_string(),
                    expected,
                    got: a.args.len(),
                });
            }
        }
        let q = ConjunctiveQuery {
            name: name.into(),
            head,
            atoms,
            var_names,
        };
        for &h in &q.head {
            if !q.atoms.iter().any(|a| a.contains_var(h)) {
                return Err(QueryError::UnboundHeadVariable {
                    variable: q.var_name(h).to_string(),
                });
            }
        }
        Ok(q)
    }

    /// The query name (head relation symbol).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Head variables `x̄`.
    pub fn head(&self) -> &[VarId] {
        &self.head
    }

    /// The atoms, identifier order (`I(Q)` = indices).
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The atom with identifier `i`.
    pub fn atom(&self, i: usize) -> &Atom {
        &self.atoms[i]
    }

    /// Number of atom occurrences `|I(Q)|`.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of interned variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// All variables, in intern order.
    pub fn variables(&self) -> impl Iterator<Item = VarId> {
        (0..self.var_names.len() as u32).map(VarId)
    }

    /// Human-readable variable name.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// `atoms(x)`: identifiers of atoms containing `x` (ascending). As a
    /// sub-bag of `Q` this is determined by the identifier set.
    pub fn atoms_containing(&self, v: VarId) -> Vec<usize> {
        (0..self.atoms.len())
            .filter(|&i| self.atoms[i].contains_var(v))
            .collect()
    }

    /// Whether the query is *full*: every body variable occurs in the
    /// head.
    pub fn is_full(&self) -> bool {
        self.variables()
            .filter(|v| self.atoms.iter().any(|a| a.contains_var(*v)))
            .all(|v| self.head.contains(&v))
    }

    /// Whether two atoms share a relation name (self-join).
    pub fn has_self_joins(&self) -> bool {
        for (i, a) in self.atoms.iter().enumerate() {
            if self.atoms[i + 1..].iter().any(|b| b.relation == a.relation) {
                return true;
            }
        }
        false
    }

    /// Connected components of the body under shared variables, each a
    /// sorted list of atom identifiers. Atoms without variables form
    /// singleton components.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.atoms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for v in self.variables() {
            let members = self.atoms_containing(v);
            for w in members.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut root_index: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            let r = find(&mut parent, i);
            match root_index[r] {
                Some(g) => groups[g].push(i),
                None => {
                    root_index[r] = Some(groups.len());
                    groups.push(vec![i]);
                }
            }
        }
        groups
    }

    /// Whether the body is connected (single component).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() == 1
    }

    /// Render the query with schema relation names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        DisplayQuery { q: self, schema }
    }
}

struct DisplayQuery<'a> {
    q: &'a ConjunctiveQuery,
    schema: &'a Schema,
}

impl fmt::Display for DisplayQuery<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.q.name)?;
        for (i, v) in self.q.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.q.var_name(*v))?;
        }
        write!(f, ") <- ")?;
        for (i, a) in self.q.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.schema.name(a.relation))?;
            for (k, t) in a.args.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                match t {
                    Term::Var(v) => write!(f, "{}", self.q.var_name(*v))?,
                    Term::Const(c) => write!(f, "{c}")?,
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn q0() -> (Schema, ConjunctiveQuery) {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
        (schema, q)
    }

    #[test]
    fn q0_structure() {
        let (schema, q) = q0();
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.num_vars(), 2);
        assert!(q.is_full());
        assert!(!q.has_self_joins());
        assert!(q.is_connected());
        assert_eq!(
            q.display(&schema).to_string(),
            "Q0(x, y) <- T(x), S(x, y), R(x, y)"
        );
    }

    #[test]
    fn atoms_containing_matches_paper() {
        let (_, q) = q0();
        let x = VarId(0);
        let y = VarId(1);
        assert_eq!(q.atoms_containing(x), vec![0, 1, 2]);
        assert_eq!(q.atoms_containing(y), vec![1, 2]);
    }

    #[test]
    fn q1_has_self_joins_and_constants() {
        // Q1(x,y) ← T(x), R(x,y), S(2,y), T(x): bag of atoms with a
        // repeated T(x).
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q1(x, y) <- T(x), R(x, y), S(2, y), T(x)").unwrap();
        assert_eq!(q.num_atoms(), 4);
        assert!(q.has_self_joins());
        assert_eq!(q.atom(0), q.atom(3), "repeated atom keeps both ids");
        assert!(matches!(q.atom(2).args[0], Term::Const(Value::Int(2))));
    }

    #[test]
    fn non_full_detected() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- S(x, y)").unwrap();
        assert!(!q.is_full());
    }

    #[test]
    fn disconnected_components() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x, y) <- T(x), U(y)").unwrap();
        assert!(!q.is_connected());
        assert_eq!(q.connected_components(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn constant_only_atom_is_singleton_component() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- T(x), U(5)").unwrap();
        assert_eq!(q.connected_components().len(), 2);
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let mut schema = Schema::new();
        let err = parse_query(&mut schema, "Q(z) <- T(x)").unwrap_err();
        assert!(matches!(err, QueryError::UnboundHeadVariable { .. }));
    }

    #[test]
    fn empty_body_rejected() {
        let mut schema = Schema::new();
        let err = parse_query(&mut schema, "Q() <- ").unwrap_err();
        assert!(matches!(
            err,
            QueryError::EmptyBody | QueryError::Parse { .. }
        ));
    }

    #[test]
    fn variable_helpers() {
        let (_, q) = q0();
        assert_eq!(q.var_name(VarId(0)), "x");
        assert_eq!(q.atom(1).variables(), vec![VarId(0), VarId(1)]);
        assert_eq!(q.atom(1).position_of(VarId(1)), Some(1));
        assert_eq!(q.atom(0).position_of(VarId(1)), None);
    }
}

//! Acyclicity via GYO reduction, and join trees (Theorem 4.2 context).
//!
//! A CQ is *acyclic* iff it has a join tree: a tree over its distinct
//! atoms where, for every variable, the atoms containing it form a
//! connected subtree. The classical GYO (Graham–Yu–Özsoyoğlu) ear-removal
//! procedure decides this and produces a join tree as a witness.
//!
//! Theorem 4.2 concerns acyclic-but-not-hierarchical CQs (they are not
//! expressible as PCEA); this module supplies the acyclicity side of that
//! classification, which the compiler uses for precise error reporting.

use crate::query::{ConjunctiveQuery, VarId};
use cer_common::hash::FxHashSet;

/// A join tree over the query's *distinct* atoms (`U(Q)`), indexed by a
/// representative atom identifier per distinct atom.
#[derive(Clone, Debug)]
pub struct JoinTree {
    /// Representative atom ids, one per distinct atom.
    pub atoms: Vec<usize>,
    /// `parent[k]` is the index (into `atoms`) of the parent of `atoms[k]`,
    /// or `None` at the root.
    pub parent: Vec<Option<usize>>,
}

impl JoinTree {
    /// Validate the join-tree property against the query: for every
    /// variable, the nodes containing it form a connected subtree.
    pub fn validate(&self, q: &ConjunctiveQuery) -> Result<(), String> {
        for v in q.variables() {
            let members: Vec<usize> = (0..self.atoms.len())
                .filter(|&k| q.atom(self.atoms[k]).contains_var(v))
                .collect();
            if members.len() <= 1 {
                continue;
            }
            // Walk up from each member; the subtree is connected iff every
            // member except one has a parent path to another member
            // through member nodes only... equivalently: the member set
            // minus (members whose parent is a member) has size 1.
            let member_set: FxHashSet<usize> = members.iter().copied().collect();
            let roots = members
                .iter()
                .filter(|&&k| self.parent[k].is_none_or(|p| !member_set.contains(&p)))
                .count();
            if roots != 1 {
                return Err(format!(
                    "variable {v:?} spans {roots} disconnected subtrees"
                ));
            }
        }
        Ok(())
    }
}

/// Run the GYO reduction. Returns a join tree iff the query is acyclic.
///
/// Works per connected component; components are stitched under the
/// first component's root (a forest is a valid join tree for a
/// disconnected query — cross-component variables do not exist).
pub fn gyo_join_tree(q: &ConjunctiveQuery) -> Option<JoinTree> {
    // Work over distinct atoms: duplicates are trivially ears of their
    // twin, so deduplicate first (keep the first occurrence as
    // representative).
    let mut reps: Vec<usize> = Vec::new();
    for i in 0..q.num_atoms() {
        if !reps.iter().any(|&r| q.atom(r) == q.atom(i)) {
            reps.push(i);
        }
    }
    let n = reps.len();
    let var_sets: Vec<FxHashSet<VarId>> = reps
        .iter()
        .map(|&i| q.atom(i).variables().into_iter().collect())
        .collect();

    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut removed = 0usize;
    // Repeatedly remove ears: an atom e is an ear w.r.t. a witness f ≠ e
    // when every variable of e is exclusive to e (among alive atoms) or
    // occurs in f.
    loop {
        let mut progress = false;
        for e in 0..n {
            if !alive[e] {
                continue;
            }
            let exclusive: FxHashSet<VarId> = var_sets[e]
                .iter()
                .copied()
                .filter(|v| (0..n).all(|o| o == e || !alive[o] || !var_sets[o].contains(v)))
                .collect();
            let shared: Vec<VarId> = var_sets[e]
                .iter()
                .copied()
                .filter(|v| !exclusive.contains(v))
                .collect();
            let witness = (0..n)
                .find(|&f| f != e && alive[f] && shared.iter().all(|v| var_sets[f].contains(v)));
            let alive_count = alive.iter().filter(|&&a| a).count();
            if alive_count == 1 {
                break;
            }
            if let Some(f) = witness {
                alive[e] = false;
                parent[e] = Some(f);
                removed += 1;
                progress = true;
            } else if shared.is_empty() && alive_count > 1 {
                // Disconnected atom: hang it under any other alive atom
                // (a forest edge; no variable constraint crosses it).
                let f = (0..n).find(|&f| f != e && alive[f]).expect("another atom");
                alive[e] = false;
                parent[e] = Some(f);
                removed += 1;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    if removed + 1 < n {
        return None; // Stuck: cyclic.
    }
    Some(JoinTree {
        atoms: reps,
        parent,
    })
}

/// Whether the query is acyclic (has a join tree).
pub fn is_acyclic(q: &ConjunctiveQuery) -> bool {
    gyo_join_tree(q).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::is_hierarchical;
    use crate::parser::parse_query;
    use cer_common::Schema;

    fn q(text: &str) -> ConjunctiveQuery {
        let mut schema = Schema::new();
        parse_query(&mut schema, text).unwrap()
    }

    #[test]
    fn paper_q0_and_q1_are_acyclic() {
        let q0 = q("Q0(x, y) <- T(x), S(x, y), R(x, y)");
        let q1 = q("Q1(x, y) <- T(x), R(x, y), S(2, y), T(x)");
        let t0 = gyo_join_tree(&q0).expect("Q0 acyclic");
        t0.validate(&q0).unwrap();
        let t1 = gyo_join_tree(&q1).expect("Q1 acyclic");
        t1.validate(&q1).unwrap();
        // Q1 is the paper's acyclic-but-not-hierarchical witness.
        assert!(!is_hierarchical(&q1));
    }

    #[test]
    fn triangle_is_cyclic() {
        let tri = q("Q(x, y, z) <- R(x, y), S(y, z), T(z, x)");
        assert!(!is_acyclic(&tri));
    }

    #[test]
    fn path_query_is_acyclic_not_hierarchical() {
        // The 2-atom path R(x,y), S(y,z) is still hierarchical
        // (atoms(x) ⊆ atoms(y) ⊇ atoms(z)); the 3-atom path is the
        // canonical acyclic-but-not-hierarchical example.
        let two = q("Q(x, y, z) <- R(x, y), S(y, z)");
        assert!(is_acyclic(&two) && is_hierarchical(&two));
        let three = q("Q(x, y, z, w) <- R(x, y), S(y, z), T(z, w)");
        assert!(is_acyclic(&three));
        assert!(!is_hierarchical(&three));
    }

    #[test]
    fn hierarchical_implies_acyclic() {
        for text in [
            "Q(x, y) <- T(x), S(x, y), R(x, y)",
            "Q(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)",
            "Q(x, y, z, v, w) <- R(x, y, z), S(x, y, v), T(x, w), U(x, y)",
            "Q(x, y, z, v) <- R(x, y, z), R(x, y, v), U(x, y)",
        ] {
            let query = q(text);
            assert!(is_hierarchical(&query), "{text}");
            assert!(is_acyclic(&query), "{text}");
        }
    }

    #[test]
    fn disconnected_acyclic() {
        let query = q("Q(x, y) <- T(x), U(y)");
        let t = gyo_join_tree(&query).expect("forest is fine");
        t.validate(&query).unwrap();
    }

    #[test]
    fn duplicate_atoms_collapse() {
        let query = q("Q(x) <- T(x), T(x), T(x)");
        let t = gyo_join_tree(&query).unwrap();
        assert_eq!(t.atoms.len(), 1);
    }

    #[test]
    fn single_atom_is_acyclic() {
        assert!(is_acyclic(&q("Q(x, y) <- S(x, y)")));
    }

    #[test]
    fn cyclic_four_cycle() {
        let c4 = q("Q(a, b, c, d) <- R(a, b), S(b, c), T(c, d), U(d, a)");
        assert!(!is_acyclic(&c4));
    }

    #[test]
    fn validate_catches_bad_tree() {
        let query = q("Q(x, y, z) <- R(x, y), S(y, z), T(x, z)");
        // Force a wrong tree: R—S, T hanging off R (variable z spans S
        // and T but they are not adjacent through z-containing nodes).
        let bad = JoinTree {
            atoms: vec![0, 1, 2],
            parent: vec![None, Some(0), Some(0)],
        };
        assert!(bad.validate(&query).is_err());
    }
}

//! The HCQ→PCEA compiler (Theorem 4.1).
//!
//! For a hierarchical conjunctive query `Q`, builds an unambiguous PCEA
//! `P_Q` with `⟦P_Q⟧_n(S)` equal to the new-at-`n` t-homomorphisms of `Q`
//! into `D_n[S]` — using one output label per atom identifier.
//!
//! * **No self-joins** (this module): states are the nodes of the compact
//!   q-tree; the automaton is of *quadratic* size in `|Q|`.
//! * **Self-joins** ([`selfjoin`](crate::selfjoin)): variable states are
//!   annotated with the self-join set that completed them; worst-case
//!   exponential, as the paper proves unavoidable for the model.
//! * **Disconnected queries**: compiled against the virtually-rooted
//!   q-tree; the virtual root variable `x∗` contributes empty join keys
//!   (the paper's "remove `x∗` from the predicates").
//!
//! Non-hierarchical input is rejected with a diagnosis that distinguishes
//! acyclic queries (provably inexpressible, Theorem 4.2) from cyclic
//! ones.

use crate::hierarchy::is_hierarchical;
use crate::jointree::is_acyclic;
use crate::qtree::{NodeLabel, QTree};
use crate::query::{Atom, ConjunctiveQuery, Term, VarId};
use cer_automata::pcea::{Pcea, PceaBuilder, StateId};
use cer_automata::predicate::{
    AtomPattern, EqPredicate, ExtractorEntry, KeyExtractor, PatTerm, UnaryPredicate,
};
use cer_automata::valuation::{Label, LabelSet, MAX_LABELS};
use cer_common::hash::FxHashMap;
use cer_common::Schema;
use std::fmt;

/// Why a query cannot be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The query has projection (is not full); Theorem 4.1 covers full
    /// CQs.
    NotFull,
    /// The query is not hierarchical. When it is acyclic, Theorem 4.2
    /// shows *no* PCEA expresses it; when cyclic, the question is moot
    /// (PCEA only reach acyclic CQs).
    NotHierarchical {
        /// Whether the query is at least acyclic.
        acyclic: bool,
    },
    /// More atoms than output labels (the engine packs `Ω` in 64 bits).
    TooManyAtoms {
        /// Number of atoms in the query.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// The compiled automaton would exceed the transition budget (the
    /// self-join construction is exponential; Theorem 4.1's bound is
    /// tight for the model).
    AutomatonTooLarge {
        /// Transitions the construction would emit (lower bound).
        transitions: usize,
        /// Budget.
        max: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotFull => write!(f, "query is not full (has projection)"),
            CompileError::NotHierarchical { acyclic: true } => write!(
                f,
                "query is acyclic but not hierarchical: no PCEA expresses it (Theorem 4.2)"
            ),
            CompileError::NotHierarchical { acyclic: false } => {
                write!(f, "query is cyclic: PCEA only express hierarchical CQs")
            }
            CompileError::TooManyAtoms { got, max } => {
                write!(f, "query has {got} atoms; at most {max} supported")
            }
            CompileError::AutomatonTooLarge { transitions, max } => write!(
                f,
                "compiled automaton needs ≥{transitions} transitions (budget {max})"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled query: the PCEA plus introspection data.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// The automaton; label `i` marks the position matched by atom `i`.
    pub pcea: Pcea,
    /// Human-readable state names (aligned with state indices).
    pub state_names: Vec<String>,
    /// Whether the exponential self-join construction was used.
    pub used_self_join_construction: bool,
}

/// Compile a hierarchical conjunctive query to an unambiguous PCEA
/// (Theorem 4.1). Dispatches to the self-join construction when needed.
///
/// ```
/// use cer_common::Schema;
/// use cer_cq::{compile::compile_hcq, parser::parse_query};
///
/// let mut schema = Schema::new();
/// let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
/// let compiled = compile_hcq(&schema, &q).unwrap();
/// assert_eq!(compiled.pcea.num_labels(), 3); // one label per atom
/// ```
pub fn compile_hcq(schema: &Schema, q: &ConjunctiveQuery) -> Result<CompiledQuery, CompileError> {
    if !q.is_full() {
        return Err(CompileError::NotFull);
    }
    if !is_hierarchical(q) {
        return Err(CompileError::NotHierarchical {
            acyclic: is_acyclic(q),
        });
    }
    if q.num_atoms() > MAX_LABELS {
        return Err(CompileError::TooManyAtoms {
            got: q.num_atoms(),
            max: MAX_LABELS,
        });
    }
    if q.has_self_joins() {
        crate::selfjoin::compile_selfjoin(schema, q)
    } else {
        compile_no_selfjoin(schema, q)
    }
}

/// The quadratic construction for self-join-free HCQs.
fn compile_no_selfjoin(
    schema: &Schema,
    q: &ConjunctiveQuery,
) -> Result<CompiledQuery, CompileError> {
    let tree = QTree::build_rooted(q)
        .expect("hierarchical queries always have a (rooted) q-tree")
        .compact();

    let mut builder = PceaBuilder::new(q.num_atoms());
    let mut state_of: FxHashMap<usize, StateId> = FxHashMap::default();
    let mut state_names: Vec<String> = Vec::new();
    for (idx, node) in tree.iter() {
        let s = builder.add_state();
        state_of.insert(idx, s);
        state_names.push(match node.label {
            NodeLabel::Var(v) => q.var_name(v).to_string(),
            NodeLabel::Atom(i) => format!("{}#{i}", schema.name(q.atom(i).relation)),
            NodeLabel::VirtualRoot => "x*".to_string(),
        });
    }

    // Initial transitions: (∅, U_{Ri(x̄i)}, ∅, {i}, i).
    for i in 0..q.num_atoms() {
        builder.add_initial_transition(
            atom_unary(q.atom(i)),
            LabelSet::singleton(Label(i as u32)),
            state_of[&tree.leaf_of_atom(i)],
        );
    }

    // Gathering transitions: (C_{x,i}, U_{Ri(x̄i)}, B_{x,i}, {i}, x) for
    // every atom i and every inner node x on its root path.
    for i in 0..q.num_atoms() {
        let leaf = tree.leaf_of_atom(i);
        let path = tree.path_from_root(leaf);
        let inner = &path[..path.len() - 1];
        for (depth, &x) in inner.iter().enumerate() {
            let mut sources: Vec<(StateId, EqPredicate)> = Vec::new();
            for &v in &inner[depth..] {
                let next_on_path = path[inner.iter().position(|&n| n == v).expect("on path") + 1];
                for &c in &tree.node(v).children {
                    if c == next_on_path || c == leaf {
                        continue;
                    }
                    let pred = match tree.node(c).label {
                        NodeLabel::Atom(j) => leaf_predicate(q, j, i),
                        NodeLabel::Var(_) => var_predicate(q, &tree, c, i),
                        NodeLabel::VirtualRoot => unreachable!("root is never a child"),
                    };
                    sources.push((state_of[&c], pred));
                }
            }
            builder.add_transition(
                sources,
                atom_unary(q.atom(i)),
                LabelSet::singleton(Label(i as u32)),
                state_of[&x],
            );
        }
    }

    builder.mark_final(state_of[&tree.root()]);
    Ok(CompiledQuery {
        pcea: builder.build(),
        state_names,
        used_self_join_construction: false,
    })
}

/// `U_{R(x̄)}`: the homomorphism test for one atom, as an
/// [`AtomPattern`].
pub(crate) fn atom_unary(atom: &Atom) -> UnaryPredicate {
    let terms: Vec<PatTerm> = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Var(v) => PatTerm::Var(v.0),
            Term::Const(c) => PatTerm::Const(c.clone()),
        })
        .collect();
    UnaryPredicate::Atom(AtomPattern {
        relation: atom.relation,
        terms: terms.into(),
    })
}

/// Sorted shared variables of two atoms.
pub(crate) fn shared_vars(a: &Atom, b: &Atom) -> Vec<VarId> {
    let mut out: Vec<VarId> = a
        .variables()
        .into_iter()
        .filter(|v| b.contains_var(*v))
        .collect();
    out.sort();
    out
}

/// Key positions of `vars` (sorted order) in an atom, by first
/// occurrence.
pub(crate) fn key_positions(atom: &Atom, vars: &[VarId]) -> Box<[usize]> {
    vars.iter()
        .map(|&v| atom.position_of(v).expect("shared variable occurs"))
        .collect()
}

/// `B_{Rj(x̄j), Ri(x̄i)}`: equality on the shared variables of two atoms.
fn leaf_predicate(q: &ConjunctiveQuery, j: usize, i: usize) -> EqPredicate {
    let (aj, ai) = (q.atom(j), q.atom(i));
    let shared = shared_vars(aj, ai);
    EqPredicate::new(
        KeyExtractor::projection(aj.relation, key_positions(aj, &shared)),
        KeyExtractor::projection(ai.relation, key_positions(ai, &shared)),
    )
}

/// `B_{y, Ri(x̄i)} = ⋃_{j ∈ desc(y)} B_{Rj(x̄j), Ri(x̄i)}`: the stored run
/// at variable state `y` was completed by a tuple of *some* atom below
/// `y`; all of them share the same variables with atom `i` (hierarchy),
/// so one extractor entry per descendant relation suffices.
fn var_predicate(q: &ConjunctiveQuery, tree: &QTree, y_node: usize, i: usize) -> EqPredicate {
    let ai = q.atom(i);
    let below = tree.atoms_below(y_node);
    let shared = shared_vars(q.atom(below[0]), ai);
    debug_assert!(
        below.iter().all(|&j| shared_vars(q.atom(j), ai) == shared),
        "hierarchy guarantees a uniform shared-variable set below a q-tree node"
    );
    let mut left = KeyExtractor::new();
    for &j in &below {
        let aj = q.atom(j);
        left.insert(
            aj.relation,
            ExtractorEntry {
                checks: Box::new([]),
                key: key_positions(aj, &shared),
            },
        );
    }
    EqPredicate::new(
        left,
        KeyExtractor::projection(ai.relation, key_positions(ai, &shared)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom;
    use crate::parser::parse_query;
    use cer_automata::reference::ReferenceEval;
    use cer_common::gen::sigma0_prefix;
    use cer_common::tuple::tup;
    use cer_common::Tuple;

    fn compile(text: &str) -> (Schema, ConjunctiveQuery, CompiledQuery) {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, text).unwrap();
        let c = compile_hcq(&schema, &q).unwrap();
        (schema, q, c)
    }

    /// Differential check: compiled PCEA reference semantics vs the
    /// t-homomorphism oracle, at every position of the stream.
    fn check_equivalence(q: &ConjunctiveQuery, c: &CompiledQuery, stream: &[Tuple]) {
        let eval = ReferenceEval::new(&c.pcea, stream);
        for n in 0..stream.len() {
            let got = eval.outputs_at(n);
            let want = hom::new_outputs_at(q, stream, n);
            assert_eq!(got, want, "outputs disagree at position {n}");
        }
        eval.check_unambiguous().unwrap();
    }

    #[test]
    fn q0_compiles_to_figure_2_shape() {
        let (_, _, c) = compile("Q0(x, y) <- T(x), S(x, y), R(x, y)");
        // States: leaves {0,1,2} + variables {x, y}.
        assert_eq!(c.pcea.num_states(), 5);
        // 3 initial + (T: 1 var) + (S: 2 vars) + (R: 2 vars) = 8.
        assert_eq!(c.pcea.transitions().len(), 8);
        assert!(!c.used_self_join_construction);
        assert_eq!(c.pcea.finals().count(), 1);
    }

    #[test]
    fn q0_equivalent_to_oracle_on_s0() {
        let (schema, q, c) = compile("Q0(x, y) <- T(x), S(x, y), R(x, y)");
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        check_equivalence(&q, &c, &sigma0_prefix(r, s, t));
    }

    #[test]
    fn q0_outputs_both_matches_at_5() {
        let (schema, _, c) = compile("Q0(x, y) <- T(x), S(x, y), R(x, y)");
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        let stream = sigma0_prefix(r, s, t);
        let eval = ReferenceEval::new(&c.pcea, &stream);
        // {T↦1, S↦3, R↦5} and {T↦1, S↦0, R↦5}.
        assert_eq!(eval.outputs_at(5).len(), 2);
    }

    #[test]
    fn star_query_equivalence() {
        let (schema, q, c) = compile("Q(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)");
        let a0 = schema.relation("A0").unwrap();
        let a1 = schema.relation("A1").unwrap();
        let a2 = schema.relation("A2").unwrap();
        let stream = vec![
            tup(a1, [1i64, 7]),
            tup(a0, [1i64]),
            tup(a2, [1i64, 9]),
            tup(a1, [1i64, 8]),
            tup(a2, [2i64, 9]),
            tup(a0, [2i64]),
            tup(a1, [2i64, 7]),
            tup(a2, [2i64, 7]),
        ];
        check_equivalence(&q, &c, &stream);
    }

    #[test]
    fn deep_hierarchy_q1_equivalence() {
        // Figure 3's Q1 (no self-joins, depth-2 tree with satellites).
        let (schema, q, c) =
            compile("Q(x, y, z, v, w) <- R(x, y, z), S(x, y, v), T(x, w), U(x, y)");
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        let u = schema.relation("U").unwrap();
        let stream = vec![
            tup(u, [1i64, 2]),
            tup(r, [1i64, 2, 3]),
            tup(t, [1i64, 5]),
            tup(s, [1i64, 2, 4]),
            tup(r, [1i64, 9, 3]),
            tup(s, [1i64, 2, 6]),
            tup(t, [2i64, 5]),
        ];
        check_equivalence(&q, &c, &stream);
    }

    #[test]
    fn constants_compile_and_filter() {
        let (schema, q, c) = compile("Q(y) <- S(2, y), N(y)");
        let s = schema.relation("S").unwrap();
        let n = schema.relation("N").unwrap();
        let stream = vec![
            tup(s, [2i64, 11]),
            tup(s, [3i64, 11]),
            tup(n, [11i64]),
            tup(n, [12i64]),
        ];
        check_equivalence(&q, &c, &stream);
        let eval = ReferenceEval::new(&c.pcea, &stream);
        assert_eq!(eval.outputs_at(2).len(), 1, "only S(2,11) joins N(11)");
    }

    #[test]
    fn disconnected_query_equivalence() {
        let (schema, q, c) = compile("Q(x, y) <- T(x), U(y)");
        let t = schema.relation("T").unwrap();
        let u = schema.relation("U").unwrap();
        let stream = vec![
            tup(t, [1i64]),
            tup(u, [5i64]),
            tup(t, [2i64]),
            tup(u, [6i64]),
        ];
        check_equivalence(&q, &c, &stream);
        let eval = ReferenceEval::new(&c.pcea, &stream);
        // At position 3 (U(6)): joins with T(1) and T(2): two outputs.
        assert_eq!(eval.outputs_at(3).len(), 2);
    }

    #[test]
    fn single_atom_query() {
        let (schema, q, c) = compile("Q(x, y) <- S(x, y)");
        let s = schema.relation("S").unwrap();
        let stream = vec![tup(s, [1i64, 2]), tup(s, [1i64, 2])];
        check_equivalence(&q, &c, &stream);
        let eval = ReferenceEval::new(&c.pcea, &stream);
        assert_eq!(eval.outputs_at(0).len(), 1);
        assert_eq!(eval.outputs_at(1).len(), 1);
    }

    #[test]
    fn repeated_variable_atom_equivalence() {
        let (schema, q, c) = compile("Q(x) <- S(x, x), T(x)");
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        let stream = vec![
            tup(s, [4i64, 4]),
            tup(s, [4i64, 5]),
            tup(t, [4i64]),
            tup(t, [5i64]),
        ];
        check_equivalence(&q, &c, &stream);
    }

    #[test]
    fn rejects_projection() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- S(x, y)").unwrap();
        assert_eq!(compile_hcq(&schema, &q).unwrap_err(), CompileError::NotFull);
    }

    #[test]
    fn rejects_non_hierarchical_with_diagnosis() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x, y) <- R(x), S(x, y), T(y)").unwrap();
        assert_eq!(
            compile_hcq(&schema, &q).unwrap_err(),
            CompileError::NotHierarchical { acyclic: true }
        );
        let mut schema2 = Schema::new();
        let tri = parse_query(&mut schema2, "Q(x, y, z) <- R(x, y), S(y, z), T(z, x)").unwrap();
        assert_eq!(
            compile_hcq(&schema2, &tri).unwrap_err(),
            CompileError::NotHierarchical { acyclic: false }
        );
    }

    #[test]
    fn quadratic_size_bound_no_self_joins() {
        // Star queries: |P| should grow ~quadratically (k atoms × depth-1
        // tree) — concretely, size ≤ c·|Q|² for the family.
        for k in 1..=8usize {
            let body: Vec<String> = std::iter::once("A0(x)".to_string())
                .chain((1..=k).map(|i| format!("A{i}(x, y{i})")))
                .collect();
            let head: Vec<String> = std::iter::once("x".to_string())
                .chain((1..=k).map(|i| format!("y{i}")))
                .collect();
            let text = format!("Q({}) <- {}", head.join(", "), body.join(", "));
            let mut schema = Schema::new();
            let q = parse_query(&mut schema, &text).unwrap();
            let c = compile_hcq(&schema, &q).unwrap();
            let m = q.num_atoms();
            assert!(
                c.pcea.size() <= 4 * m * m + 8,
                "size {} exceeds quadratic bound for k={k}",
                c.pcea.size()
            );
        }
    }
}

//! A small text parser for conjunctive queries, plus a programmatic
//! builder.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := NAME '(' vars? ')' '<-' atom (',' atom)*
//! atom   := NAME '(' terms? ')'
//! term   := IDENT | INTEGER | '"' chars '"'
//! ```
//!
//! Lower-case identifiers are variables; integers and quoted strings are
//! constants. Relations are registered in (or validated against) the
//! given [`Schema`] as a side effect, with arity inferred from first use.

use crate::query::{Atom, ConjunctiveQuery, QueryError, Term, VarId};
use cer_common::{RelationId, Schema, Value};

/// Parse a conjunctive query, registering relations in `schema`.
///
/// ```
/// use cer_common::Schema;
/// use cer_cq::parser::parse_query;
///
/// let mut schema = Schema::new();
/// let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
/// assert_eq!(q.num_atoms(), 3);
/// assert!(q.is_full());
/// ```
pub fn parse_query(schema: &mut Schema, text: &str) -> Result<ConjunctiveQuery, QueryError> {
    Parser::new(text).query(schema)
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            message: format!("{} (at byte {})", message.into(), self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self.text[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), QueryError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected {token:?}")))
        }
    }

    fn ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        if rest
            .chars()
            .next()
            .is_none_or(|c| c.is_ascii_digit() || !(c == '_' || c.is_alphanumeric()))
        {
            return None;
        }
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if c == '_' || c.is_alphanumeric() {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        let s = &rest[..end];
        self.pos += end;
        Some(s)
    }

    fn integer(&mut self) -> Option<i64> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let negative = rest.starts_with('-');
        let digits_start = usize::from(negative);
        let len = rest[digits_start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .count();
        if len == 0 {
            return None;
        }
        let end = digits_start + len;
        let v: i64 = rest[..end].parse().ok()?;
        self.pos += end;
        Some(v)
    }

    fn quoted(&mut self) -> Result<Option<String>, QueryError> {
        self.skip_ws();
        if !self.text[self.pos..].starts_with('"') {
            return Ok(None);
        }
        let start = self.pos + 1;
        match self.text[start..].find('"') {
            Some(end) => {
                let s = self.text[start..start + end].to_string();
                self.pos = start + end + 1;
                Ok(Some(s))
            }
            None => Err(self.error("unterminated string literal")),
        }
    }

    fn query(&mut self, schema: &mut Schema) -> Result<ConjunctiveQuery, QueryError> {
        let name = self
            .ident()
            .ok_or_else(|| self.error("expected query name"))?
            .to_string();
        self.expect("(")?;
        let mut vars = Vars::default();
        let mut head = Vec::new();
        if !self.eat(")") {
            loop {
                let v = self
                    .ident()
                    .ok_or_else(|| self.error("expected head variable"))?;
                head.push(vars.intern(v));
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        self.expect("<-")?;
        let mut atoms = Vec::new();
        loop {
            self.skip_ws();
            if self.pos == self.text.len() {
                break;
            }
            atoms.push(self.atom(schema, &mut vars)?);
            if !self.eat(",") {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.text.len() {
            return Err(self.error("trailing input"));
        }
        ConjunctiveQuery::new(schema, name, head, atoms, vars.names)
    }

    fn atom(&mut self, schema: &mut Schema, vars: &mut Vars) -> Result<Atom, QueryError> {
        let rel_name = self
            .ident()
            .ok_or_else(|| self.error("expected relation name"))?
            .to_string();
        self.expect("(")?;
        let mut args = Vec::new();
        if !self.eat(")") {
            loop {
                args.push(self.term(vars)?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        let relation = register(schema, &rel_name, args.len())?;
        Ok(Atom {
            relation,
            args: args.into(),
        })
    }

    fn term(&mut self, vars: &mut Vars) -> Result<Term, QueryError> {
        if let Some(s) = self.quoted()? {
            return Ok(Term::Const(Value::from(s)));
        }
        if let Some(i) = self.integer() {
            return Ok(Term::Const(Value::Int(i)));
        }
        match self.ident() {
            Some(v) => Ok(Term::Var(vars.intern(v))),
            None => Err(self.error("expected a term")),
        }
    }
}

fn register(schema: &mut Schema, name: &str, arity: usize) -> Result<RelationId, QueryError> {
    schema.add_relation(name, arity).map_err(|_| {
        let expected = schema
            .relation(name)
            .map(|r| schema.arity(r))
            .unwrap_or(arity);
        QueryError::ArityMismatch {
            relation: name.to_string(),
            expected,
            got: arity,
        }
    })
}

#[derive(Default)]
struct Vars {
    names: Vec<String>,
}

impl Vars {
    fn intern(&mut self, name: &str) -> VarId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return VarId(i as u32);
        }
        self.names.push(name.to_string());
        VarId(self.names.len() as u32 - 1)
    }
}

/// A programmatic alternative to the text parser.
///
/// ```
/// use cer_common::Schema;
/// use cer_cq::parser::QueryBuilder;
///
/// let mut schema = Schema::new();
/// let q = QueryBuilder::new("Spike")
///     .atom("ALERT", |a| a.var("x"))
///     .atom("BUY", |a| a.var("x").var("p"))
///     .head(["x", "p"])
///     .build(&mut schema)
///     .unwrap();
/// assert_eq!(q.num_atoms(), 2);
/// ```
pub struct QueryBuilder {
    name: String,
    head: Vec<String>,
    atoms: Vec<(String, Vec<BuilderTerm>)>,
}

enum BuilderTerm {
    Var(String),
    Const(Value),
}

/// Argument-list builder passed to [`QueryBuilder::atom`].
#[derive(Default)]
pub struct AtomArgs {
    terms: Vec<BuilderTerm>,
}

impl AtomArgs {
    /// Append a variable argument.
    pub fn var(mut self, name: &str) -> Self {
        self.terms.push(BuilderTerm::Var(name.to_string()));
        self
    }

    /// Append a constant argument.
    pub fn constant(mut self, v: impl Into<Value>) -> Self {
        self.terms.push(BuilderTerm::Const(v.into()));
        self
    }
}

impl QueryBuilder {
    /// Start a query with the given head name.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            head: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// Add an atom with arguments built by `f`.
    pub fn atom(mut self, relation: &str, f: impl FnOnce(AtomArgs) -> AtomArgs) -> Self {
        let args = f(AtomArgs::default());
        self.atoms.push((relation.to_string(), args.terms));
        self
    }

    /// Set the head variables. When never called, the head defaults to
    /// all body variables in first-occurrence order (a full query).
    pub fn head<S: Into<String>>(mut self, vars: impl IntoIterator<Item = S>) -> Self {
        self.head = vars.into_iter().map(Into::into).collect();
        self
    }

    /// Finish, registering relations in `schema`.
    pub fn build(self, schema: &mut Schema) -> Result<ConjunctiveQuery, QueryError> {
        let mut vars = Vars::default();
        let mut atoms = Vec::new();
        for (rel_name, terms) in &self.atoms {
            let relation = register(schema, rel_name, terms.len())?;
            let args: Vec<Term> = terms
                .iter()
                .map(|t| match t {
                    BuilderTerm::Var(v) => Term::Var(vars.intern(v)),
                    BuilderTerm::Const(c) => Term::Const(c.clone()),
                })
                .collect();
            atoms.push(Atom {
                relation,
                args: args.into(),
            });
        }
        let head: Vec<VarId> = if self.head.is_empty() {
            (0..vars.names.len() as u32).map(VarId).collect()
        } else {
            self.head.iter().map(|v| vars.intern(v)).collect()
        };
        ConjunctiveQuery::new(schema, self.name, head, atoms, vars.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q0() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
        assert_eq!(q.name(), "Q0");
        assert_eq!(q.head().len(), 2);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(schema.arity(schema.relation("S").unwrap()), 2);
    }

    #[test]
    fn parses_constants() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, r#"Q(y) <- S(2, y), N(-7), W("AAPL")"#).unwrap();
        assert!(matches!(q.atom(0).args[0], Term::Const(Value::Int(2))));
        assert!(matches!(q.atom(1).args[0], Term::Const(Value::Int(-7))));
        assert_eq!(q.atom(2).args[0], Term::Const(Value::from("AAPL")));
    }

    #[test]
    fn rejects_arity_conflicts_across_atoms() {
        let mut schema = Schema::new();
        let err = parse_query(&mut schema, "Q(x) <- T(x), T(x, x)").unwrap_err();
        assert!(matches!(err, QueryError::ArityMismatch { .. }));
    }

    #[test]
    fn validates_against_preexisting_schema() {
        let mut schema = Schema::new();
        schema.add_relation("T", 2).unwrap();
        let err = parse_query(&mut schema, "Q(x) <- T(x)").unwrap_err();
        assert!(matches!(
            err,
            QueryError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn rejects_garbage() {
        let mut schema = Schema::new();
        assert!(parse_query(&mut schema, "").is_err());
        assert!(parse_query(&mut schema, "Q(x)").is_err());
        assert!(parse_query(&mut schema, "Q(x) <- T(x) extra").is_err());
        assert!(parse_query(&mut schema, r#"Q(x) <- T("oops)"#).is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let mut s1 = Schema::new();
        let mut s2 = Schema::new();
        let a = parse_query(&mut s1, "Q(x,y)<-T(x),S(x,y)").unwrap();
        let b = parse_query(&mut s2, "Q( x , y )  <-  T( x ) , S( x , y )").unwrap();
        assert_eq!(a.num_atoms(), b.num_atoms());
        assert_eq!(a.head().len(), b.head().len());
    }

    #[test]
    fn builder_defaults_to_full_head() {
        let mut schema = Schema::new();
        let q = QueryBuilder::new("Q")
            .atom("T", |a| a.var("x"))
            .atom("S", |a| a.var("x").var("y"))
            .build(&mut schema)
            .unwrap();
        assert!(q.is_full());
        assert_eq!(q.head().len(), 2);
    }

    #[test]
    fn builder_constants() {
        let mut schema = Schema::new();
        let q = QueryBuilder::new("Q")
            .atom("S", |a| a.constant(2).var("y"))
            .head(["y"])
            .build(&mut schema)
            .unwrap();
        assert!(matches!(q.atom(0).args[0], Term::Const(Value::Int(2))));
    }

    #[test]
    fn nullary_atoms_parse() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q() <- PING()").unwrap();
        assert_eq!(q.num_atoms(), 1);
        assert_eq!(q.atom(0).args.len(), 0);
    }
}

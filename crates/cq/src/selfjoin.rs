//! The self-join HCQ→PCEA construction (Theorem 4.1, exponential case).
//!
//! With self-joins, a single tuple can simultaneously witness several
//! atom occurrences. The construction annotates each variable state with
//! the *self-join set* `A` (a non-empty set of same-relation atom ids)
//! whose tuple completed it, and fires transitions labeled with all of
//! `A` at once. Join conditions come from the *derived atoms* of Lemmas
//! B.3/B.4: equivalence classes of argument positions under the
//! transitive closure of shared-variable coincidence.
//!
//! The blow-up is inherent: when every atom carries the same relation
//! symbol, the final transition must annotate with an arbitrary subset of
//! atoms. The construction therefore guards against pathological inputs
//! with a transition budget ([`MAX_TRANSITIONS`]).

use crate::compile::{atom_unary, CompileError, CompiledQuery};
use crate::qtree::{NodeLabel, QTree};
use crate::query::{ConjunctiveQuery, Term, VarId};
use cer_automata::pcea::{PceaBuilder, StateId};
use cer_automata::predicate::{
    EqPredicate, ExtractorEntry, KeyExtractor, PosGroup, UnaryPredicate,
};
use cer_automata::valuation::{Label, LabelSet};
use cer_common::hash::FxHashMap;
use cer_common::{Schema, Value};

/// Transition budget for the exponential construction.
pub const MAX_TRANSITIONS: usize = 100_000;

/// A self-join set: a sorted, non-empty set of same-relation atom ids.
pub type SelfJoinSet = Vec<usize>;

/// Enumerate `SJ_Q`: all non-empty same-relation atom-id sets.
pub fn self_join_sets(q: &ConjunctiveQuery) -> Vec<SelfJoinSet> {
    let mut by_rel: FxHashMap<cer_common::RelationId, Vec<usize>> = FxHashMap::default();
    for i in 0..q.num_atoms() {
        by_rel.entry(q.atom(i).relation).or_default().push(i);
    }
    let mut out: Vec<SelfJoinSet> = Vec::new();
    let mut groups: Vec<Vec<usize>> = by_rel.into_values().collect();
    groups.sort();
    for group in groups {
        let k = group.len();
        for mask in 1u32..(1 << k) {
            let set: Vec<usize> = (0..k)
                .filter(|&b| mask & (1 << b) != 0)
                .map(|b| group[b])
                .collect();
            out.push(set);
        }
    }
    out.sort();
    out
}

/// Position equivalence classes of the derived atoms (Lemmas B.3/B.4).
///
/// The universe is `[0, n_left + n_right)`: left-atom positions first,
/// then right-atom positions shifted by `n_left` (use `n_right = 0` for
/// the single-side derived atom `t_A`). Positions sharing a *term* across
/// any pair of atoms on their respective sides are merged; constant terms
/// pin their class.
pub struct PositionClasses {
    /// Class id per universe position.
    class_of: Vec<usize>,
    /// Pinned constant per class, if any.
    constants: Vec<Option<Value>>,
    /// Whether a class accumulated two distinct constants.
    unsat: bool,
    n_left: usize,
}

impl PositionClasses {
    /// Build joint classes for atom-id sets `left` and `right` of `q`
    /// (`right` may be empty for the unary case). All atoms of one side
    /// must share a relation (callers pass self-join sets).
    pub fn build(q: &ConjunctiveQuery, left: &[usize], right: &[usize]) -> Self {
        let n_left = q.atom(left[0]).args.len();
        let n_right = right.first().map_or(0, |&i| q.atom(i).args.len());
        let n = n_left + n_right;
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut Vec<usize>, i: usize) -> usize {
            if uf[i] != i {
                let r = find(uf, uf[i]);
                uf[i] = r;
            }
            uf[i]
        }
        // Merge positions carrying the same variable anywhere.
        let mut var_positions: FxHashMap<VarId, Vec<usize>> = FxHashMap::default();
        let mut constants_at: Vec<Vec<Value>> = vec![Vec::new(); n];
        let record = |atom: &crate::query::Atom,
                      offset: usize,
                      var_positions: &mut FxHashMap<VarId, Vec<usize>>,
                      constants_at: &mut Vec<Vec<Value>>| {
            for (k, t) in atom.args.iter().enumerate() {
                match t {
                    Term::Var(v) => var_positions.entry(*v).or_default().push(offset + k),
                    Term::Const(c) => constants_at[offset + k].push(c.clone()),
                }
            }
        };
        for &i in left {
            record(q.atom(i), 0, &mut var_positions, &mut constants_at);
        }
        for &i in right {
            record(q.atom(i), n_left, &mut var_positions, &mut constants_at);
        }
        for positions in var_positions.values() {
            for w in positions.windows(2) {
                let (a, b) = (find(&mut uf, w[0]), find(&mut uf, w[1]));
                if a != b {
                    uf[a] = b;
                }
            }
        }
        // Dense class ids in position order.
        let mut class_index: FxHashMap<usize, usize> = FxHashMap::default();
        let mut class_of = vec![0usize; n];
        for (p, slot) in class_of.iter_mut().enumerate() {
            let r = find(&mut uf, p);
            let next = class_index.len();
            *slot = *class_index.entry(r).or_insert(next);
        }
        let num_classes = class_index.len();
        let mut constants: Vec<Option<Value>> = vec![None; num_classes];
        let mut unsat = false;
        for p in 0..n {
            for c in &constants_at[p] {
                match &constants[class_of[p]] {
                    None => constants[class_of[p]] = Some(c.clone()),
                    Some(prev) if prev != c => unsat = true,
                    Some(_) => {}
                }
            }
        }
        PositionClasses {
            class_of,
            constants,
            unsat,
            n_left,
        }
    }

    /// Whether the derived atom is unsatisfiable (conflicting constants).
    pub fn unsat(&self) -> bool {
        self.unsat
    }

    /// The consistency groups for one side (`left = true` for positions
    /// `< n_left`): per class, the side's member positions, with the
    /// class constant. Classes needing no check (single member, no
    /// constant) are omitted.
    pub fn side_groups(&self, left: bool) -> Vec<PosGroup> {
        let num_classes = self.constants.len();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
        for (p, &cls) in self.class_of.iter().enumerate() {
            let on_left = p < self.n_left;
            if on_left == left {
                let local = if left { p } else { p - self.n_left };
                members[cls].push(local);
            }
        }
        members
            .into_iter()
            .enumerate()
            .filter(|(cls, m)| !m.is_empty() && (m.len() >= 2 || self.constants[*cls].is_some()))
            .map(|(cls, m)| PosGroup {
                positions: m.into(),
                constant: self.constants[cls].clone(),
            })
            .collect()
    }

    /// Key positions for the equality predicate: one representative
    /// position per *shared*, non-constant class (has members on both
    /// sides). Returns `(left_positions, right_positions)` in a canonical
    /// shared-class order.
    pub fn shared_key_positions(&self) -> (Box<[usize]>, Box<[usize]>) {
        let num_classes = self.constants.len();
        let mut left_rep: Vec<Option<usize>> = vec![None; num_classes];
        let mut right_rep: Vec<Option<usize>> = vec![None; num_classes];
        for (p, &cls) in self.class_of.iter().enumerate() {
            if p < self.n_left {
                left_rep[cls].get_or_insert(p);
            } else {
                right_rep[cls].get_or_insert(p - self.n_left);
            }
        }
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        for cls in 0..num_classes {
            if self.constants[cls].is_some() {
                continue;
            }
            if let (Some(l), Some(r)) = (left_rep[cls], right_rep[cls]) {
                lk.push(l);
                rk.push(r);
            }
        }
        (lk.into(), rk.into())
    }
}

/// `U_A`: the unary predicate of the derived atom `t_A` (Lemma B.3).
/// `None` when unsatisfiable.
pub fn derived_unary(q: &ConjunctiveQuery, a: &[usize]) -> Option<UnaryPredicate> {
    let classes = PositionClasses::build(q, a, &[]);
    if classes.unsat() {
        return None;
    }
    let atom = q.atom(a[0]);
    Some(UnaryPredicate::Groups {
        relation: atom.relation,
        arity: atom.args.len(),
        groups: classes.side_groups(true).into(),
    })
}

/// `B_{A1,A2}`: the equality predicate of the derived atom pair (Lemma
/// B.4); the left side is the earlier tuple (matched `A1`). `None` when
/// unsatisfiable.
pub fn derived_binary(q: &ConjunctiveQuery, a1: &[usize], a2: &[usize]) -> Option<EqPredicate> {
    let classes = PositionClasses::build(q, a1, a2);
    if classes.unsat() {
        return None;
    }
    let (lk, rk) = classes.shared_key_positions();
    let mut left = KeyExtractor::new();
    left.insert(
        q.atom(a1[0]).relation,
        ExtractorEntry {
            checks: classes.side_groups(true).into(),
            key: lk,
        },
    );
    let mut right = KeyExtractor::new();
    right.insert(
        q.atom(a2[0]).relation,
        ExtractorEntry {
            checks: classes.side_groups(false).into(),
            key: rk,
        },
    );
    Some(EqPredicate::new(left, right))
}

/// State key in the self-join automaton: an atom leaf or a variable node
/// annotated with a self-join set.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum SjState {
    Atom(usize),
    /// `(tree node index, index into the SJ_Q list)`.
    VarSj(usize, usize),
}

/// The exponential construction for HCQs with self-joins.
pub(crate) fn compile_selfjoin(
    schema: &Schema,
    q: &ConjunctiveQuery,
) -> Result<CompiledQuery, CompileError> {
    let tree = QTree::build_rooted(q)
        .expect("hierarchical queries always have a (rooted) q-tree")
        .compact();
    let sj = self_join_sets(q);
    // Satisfiable self-join sets with their derived unary predicates.
    let sat: Vec<(usize, UnaryPredicate)> = sj
        .iter()
        .enumerate()
        .filter_map(|(k, a)| derived_unary(q, a).map(|u| (k, u)))
        .collect();

    // Variables of each SJ set intersection, as tree nodes.
    let vars_of = |a: &SelfJoinSet| -> Vec<VarId> {
        q.atom(a[0])
            .variables()
            .into_iter()
            .filter(|v| a[1..].iter().all(|&i| q.atom(i).contains_var(*v)))
            .collect()
    };

    let mut builder = PceaBuilder::new(q.num_atoms());
    let mut state_of: FxHashMap<SjState, StateId> = FxHashMap::default();
    let mut state_names: Vec<String> = Vec::new();
    let intern = |key: SjState,
                  name: String,
                  builder: &mut PceaBuilder,
                  state_of: &mut FxHashMap<SjState, StateId>,
                  state_names: &mut Vec<String>|
     -> StateId {
        *state_of.entry(key).or_insert_with(|| {
            state_names.push(name);
            builder.add_state()
        })
    };

    // Atom states + initial transitions.
    for i in 0..q.num_atoms() {
        let s = intern(
            SjState::Atom(i),
            format!("{}#{i}", schema.name(q.atom(i).relation)),
            &mut builder,
            &mut state_of,
            &mut state_names,
        );
        builder.add_initial_transition(
            atom_unary(q.atom(i)),
            LabelSet::singleton(Label(i as u32)),
            s,
        );
    }

    // Variable states (x, A): x an inner tree node whose variable lies in
    // every atom of A (the virtual root lies in all conceptually).
    let inner_nodes: Vec<usize> = tree
        .iter()
        .filter(|(_, n)| !matches!(n.label, NodeLabel::Atom(_)))
        .map(|(i, _)| i)
        .collect();
    let node_covers = |node: usize, a: &SelfJoinSet| -> bool {
        match tree.node(node).label {
            NodeLabel::VirtualRoot => true,
            NodeLabel::Var(v) => vars_of(a).contains(&v),
            NodeLabel::Atom(_) => false,
        }
    };
    for &(k, _) in &sat {
        for &x in &inner_nodes {
            if node_covers(x, &sj[k]) {
                let name = match tree.node(x).label {
                    NodeLabel::Var(v) => format!("({}, {:?})", q.var_name(v), sj[k]),
                    _ => format!("(x*, {:?})", sj[k]),
                };
                intern(
                    SjState::VarSj(x, k),
                    name,
                    &mut builder,
                    &mut state_of,
                    &mut state_names,
                );
            }
        }
    }

    // Gathering transitions.
    let mut emitted = 0usize;
    for &(k, ref unary) in &sat {
        let a = &sj[k];
        let labels = LabelSet::from_labels(a.iter().map(|&i| Label(i as u32)));
        for &x in &inner_nodes {
            if !node_covers(x, a) {
                continue;
            }
            // Relevant inner nodes: descendants of x (inclusive) whose
            // variable occurs in some atom of A (virtual root counts).
            let in_union = |node: usize| -> bool {
                match tree.node(node).label {
                    NodeLabel::VirtualRoot => true,
                    NodeLabel::Var(v) => a.iter().any(|&i| q.atom(i).contains_var(v)),
                    NodeLabel::Atom(_) => false,
                }
            };
            let mut relevant: Vec<usize> = Vec::new();
            let mut stack = vec![x];
            while let Some(n) = stack.pop() {
                if !tree.is_leaf(n) && in_union(n) {
                    relevant.push(n);
                    stack.extend(tree.node(n).children.iter().copied());
                }
            }
            // C_{x,A}: children of relevant nodes that are neither
            // relevant themselves, nor leaves of A.
            let mut c_atoms: Vec<usize> = Vec::new(); // atom ids
            let mut c_vars: Vec<usize> = Vec::new(); // tree nodes
            for &v in &relevant {
                for &c in &tree.node(v).children {
                    match tree.node(c).label {
                        NodeLabel::Atom(i) if !a.contains(&i) => {
                            c_atoms.push(i);
                        }
                        NodeLabel::Var(_) if !in_union(c) => c_vars.push(c),
                        _ => {}
                    }
                }
            }
            // Fixed atom sources with their pair predicates; infeasible
            // (unsat) sources kill the whole (x, A) family.
            let mut atom_sources: Vec<(StateId, EqPredicate)> = Vec::new();
            let mut feasible = true;
            for &j in &c_atoms {
                match derived_binary(q, &[j], a) {
                    Some(p) => atom_sources.push((state_of[&SjState::Atom(j)], p)),
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            // Per-variable choices: (y, A′) states with a satisfiable
            // pair predicate B_{A′,A}.
            let mut var_choices: Vec<Vec<(StateId, EqPredicate)>> = Vec::new();
            for &y in &c_vars {
                let mut choices = Vec::new();
                for &(k2, _) in &sat {
                    if !node_covers(y, &sj[k2]) {
                        continue;
                    }
                    if let Some(p) = derived_binary(q, &sj[k2], a) {
                        choices.push((state_of[&SjState::VarSj(y, k2)], p));
                    }
                }
                var_choices.push(choices);
            }
            if var_choices.iter().any(Vec::is_empty) {
                continue;
            }
            let combos: usize = var_choices.iter().map(Vec::len).product();
            emitted += combos;
            if emitted > MAX_TRANSITIONS {
                return Err(CompileError::AutomatonTooLarge {
                    transitions: emitted,
                    max: MAX_TRANSITIONS,
                });
            }
            let target = state_of[&SjState::VarSj(x, k)];
            // Enumerate the encodings C ∈ C̄_{x,A} (cross product).
            let mut assignments: Vec<Vec<(StateId, EqPredicate)>> = vec![Vec::new()];
            for choices in &var_choices {
                let mut next = Vec::with_capacity(assignments.len() * choices.len());
                for base in &assignments {
                    for ch in choices {
                        let mut b = base.clone();
                        b.push(ch.clone());
                        next.push(b);
                    }
                }
                assignments = next;
            }
            for var_sources in assignments {
                let mut sources = atom_sources.clone();
                sources.extend(var_sources);
                builder.add_transition(sources, unary.clone(), labels, target);
            }
        }
    }

    // Finals: (root, A) for every satisfiable A. A single-leaf tree
    // (one-atom query) has its atom state final instead — but one-atom
    // queries have no self-joins, so the root here is always inner.
    let root = tree.root();
    for &(k, _) in &sat {
        if node_covers(root, &sj[k]) {
            builder.mark_final(state_of[&SjState::VarSj(root, k)]);
        }
    }

    Ok(CompiledQuery {
        pcea: builder.build(),
        state_names,
        used_self_join_construction: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_hcq;
    use crate::hom;
    use crate::parser::parse_query;
    use cer_automata::reference::ReferenceEval;
    use cer_common::tuple::tup;
    use cer_common::Tuple;

    fn compile(text: &str) -> (Schema, ConjunctiveQuery, CompiledQuery) {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, text).unwrap();
        let c = compile_hcq(&schema, &q).unwrap();
        (schema, q, c)
    }

    fn check_equivalence(q: &ConjunctiveQuery, c: &CompiledQuery, stream: &[Tuple]) {
        let eval = ReferenceEval::new(&c.pcea, stream);
        for n in 0..stream.len() {
            let got = eval.outputs_at(n);
            let want = hom::new_outputs_at(q, stream, n);
            assert_eq!(got, want, "outputs disagree at position {n}");
        }
        eval.check_unambiguous().unwrap();
    }

    #[test]
    fn self_join_sets_enumeration() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x, y) <- R(x, y), R(x, y), U(x)").unwrap();
        let sj = self_join_sets(&q);
        assert_eq!(sj, vec![vec![0], vec![0, 1], vec![1], vec![2]]);
    }

    #[test]
    fn derived_atom_classes_merge_shared_vars() {
        // R(x,y,z), R(x,y,v): joint classes merge positions 0 and 1
        // across sides; z and v stay separate.
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x, y, z, v) <- R(x, y, z), R(x, y, v)").unwrap();
        let b = derived_binary(&q, &[0], &[1]).unwrap();
        let r = schema.relation("R").unwrap();
        assert!(b.satisfied(&tup(r, [1i64, 2, 3]), &tup(r, [1i64, 2, 4])));
        assert!(!b.satisfied(&tup(r, [1i64, 2, 3]), &tup(r, [1i64, 9, 4])));
    }

    #[test]
    fn derived_unary_checks_within_tuple_classes() {
        // A = both atoms at once: z and v both map to position 2, so a
        // single tuple witnesses both atoms unconditionally; x/y classes
        // hold per position.
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x, y) <- R(x, y, x), R(x, y, x)").unwrap();
        let u = derived_unary(&q, &[0, 1]).unwrap();
        let r = schema.relation("R").unwrap();
        assert!(u.matches(&tup(r, [5i64, 2, 5])));
        assert!(!u.matches(&tup(r, [5i64, 2, 6])));
    }

    #[test]
    fn conflicting_constants_unsat() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- T(2, x), T(3, x)").unwrap();
        assert!(derived_unary(&q, &[0, 1]).is_none());
        assert!(derived_unary(&q, &[0]).is_some());
    }

    #[test]
    fn double_atom_query_equivalence() {
        // Q(x) ← T(x), T(x): both same-tuple and distinct-tuple matches.
        let (schema, q, c) = compile("Q(x) <- T(x), T(x)");
        assert!(c.used_self_join_construction);
        let t = schema.relation("T").unwrap();
        let stream = vec![
            tup(t, [1i64]),
            tup(t, [1i64]),
            tup(t, [2i64]),
            tup(t, [1i64]),
        ];
        check_equivalence(&q, &c, &stream);
        // At position 1: the pair (0,1)+(1,1)? — new t-homs using pos 1:
        // {0↦0,1↦1}, {0↦1,1↦0}, {0↦1,1↦1}: 3 outputs.
        let eval = ReferenceEval::new(&c.pcea, &stream);
        assert_eq!(eval.outputs_at(1).len(), 3);
        assert_eq!(eval.outputs_at(0).len(), 1);
    }

    #[test]
    fn figure_3_q2_equivalence() {
        // Q2(x,y,z,v) ← R(x,y,z), R(x,y,v), U(x,y).
        let (schema, q, c) = compile("Q(x, y, z, v) <- R(x, y, z), R(x, y, v), U(x, y)");
        let r = schema.relation("R").unwrap();
        let u = schema.relation("U").unwrap();
        let stream = vec![
            tup(r, [1i64, 2, 3]),
            tup(u, [1i64, 2]),
            tup(r, [1i64, 2, 4]),
            tup(r, [1i64, 5, 4]),
            tup(u, [1i64, 5]),
            tup(r, [1i64, 2, 3]),
        ];
        check_equivalence(&q, &c, &stream);
    }

    #[test]
    fn self_join_with_satellite_variable_states() {
        // Deeper tree: T(x) above, two S-copies below — exercises
        // variable states (y, A′) as transition sources.
        let (schema, q, c) = compile("Q(x, y) <- T(x), S(x, y), S(x, y)");
        let t = schema.relation("T").unwrap();
        let s = schema.relation("S").unwrap();
        let stream = vec![
            tup(s, [1i64, 7]),
            tup(t, [1i64]),
            tup(s, [1i64, 7]),
            tup(t, [2i64]),
            tup(s, [2i64, 9]),
        ];
        check_equivalence(&q, &c, &stream);
    }

    #[test]
    fn paper_q1_style_constants_in_self_join() {
        // Hierarchical variant with constants and a repeated atom:
        // Q(x) ← T(x), T(x), W(2, x).
        let (schema, q, c) = compile("Q(x) <- T(x), T(x), W(2, x)");
        let t = schema.relation("T").unwrap();
        let w = schema.relation("W").unwrap();
        let stream = vec![
            tup(t, [5i64]),
            tup(w, [2i64, 5]),
            tup(t, [5i64]),
            tup(w, [3i64, 5]),
        ];
        check_equivalence(&q, &c, &stream);
    }

    #[test]
    fn triple_self_join_equivalence() {
        let (schema, q, c) = compile("Q(x) <- T(x), T(x), T(x)");
        let t = schema.relation("T").unwrap();
        let stream = vec![tup(t, [1i64]), tup(t, [1i64]), tup(t, [1i64])];
        check_equivalence(&q, &c, &stream);
        // New t-homs at position 2: all η over {0,1,2}³ using 2 at least
        // once: 27 − 8 = 19.
        let eval = ReferenceEval::new(&c.pcea, &stream);
        assert_eq!(eval.outputs_at(2).len(), 19);
    }

    #[test]
    fn exponential_size_growth() {
        // m identical atoms: the construction must annotate with subsets,
        // so size grows exponentially in m (Theorem 4.1's lower bound for
        // the model).
        let mut sizes = Vec::new();
        for m in 1..=5usize {
            let atoms = vec!["T(x)"; m].join(", ");
            let text = format!("Q(x) <- {atoms}");
            let mut schema = Schema::new();
            let q = parse_query(&mut schema, &text).unwrap();
            let c = compile_hcq(&schema, &q).unwrap();
            sizes.push(c.pcea.size());
        }
        assert!(
            sizes.windows(2).all(|w| w[1] > w[0]),
            "sizes must grow: {sizes:?}"
        );
        // Ratio test: at least geometric growth by ×1.5 at the tail.
        let tail = sizes[4] as f64 / sizes[3] as f64;
        assert!(tail > 1.5, "expected exponential growth, got {sizes:?}");
    }

    #[test]
    fn disconnected_self_join() {
        let (schema, q, c) = compile("Q(x, y) <- T(x), T(x), U(y)");
        let t = schema.relation("T").unwrap();
        let u = schema.relation("U").unwrap();
        let stream = vec![tup(t, [1i64]), tup(u, [9i64]), tup(t, [1i64])];
        check_equivalence(&q, &c, &stream);
    }
}

//! Bags with identity (Section 4 "Bags").
//!
//! The paper represents a bag as a surjective function `B : I → U` from a
//! finite identifier set onto the underlying set, so that each occurrence
//! of an element keeps its own identity. We use the canonical identifier
//! set `I = {0, …, n−1}` (positions in a vector), which the paper itself
//! adopts for stream prefixes: `I(D_n[S])` *is* the set of stream
//! positions. Bag equality is multiplicity equality, insensitive to the
//! identifier renaming.

use cer_common::hash::FxHashMap;
use std::hash::Hash;

/// A bag `B : I → U` with `I = {0, …, len−1}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bag<T> {
    items: Vec<T>,
}

impl<T> Default for Bag<T> {
    fn default() -> Self {
        Bag { items: Vec::new() }
    }
}

impl<T> Bag<T> {
    /// The empty bag.
    pub fn new() -> Self {
        Bag { items: Vec::new() }
    }

    /// Build from the standard notation `{{a0, …, a_{n−1}}}`.
    pub fn from_items(items: impl IntoIterator<Item = T>) -> Self {
        Bag {
            items: items.into_iter().collect(),
        }
    }

    /// `B(i)`: the element with identifier `i`.
    pub fn get(&self, i: usize) -> &T {
        &self.items[i]
    }

    /// `|I(B)|`: number of identifiers.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether this is the empty bag `∅`.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The identifier set `I(B) = {0, …, n−1}`.
    pub fn ids(&self) -> impl Iterator<Item = usize> {
        0..self.items.len()
    }

    /// Iterate `(identifier, element)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.items.iter().enumerate()
    }

    /// Append an element, returning its fresh identifier.
    pub fn push(&mut self, item: T) -> usize {
        self.items.push(item);
        self.items.len() - 1
    }

    /// The elements in identifier order.
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

impl<T: Eq + Hash> Bag<T> {
    /// `a ∈ B`: membership in the underlying set.
    pub fn contains(&self, a: &T) -> bool {
        self.items.contains(a)
    }

    /// `mult_B(a)`: multiplicity of an element.
    pub fn multiplicity(&self, a: &T) -> usize {
        self.items.iter().filter(|x| *x == a).count()
    }

    /// The underlying set `U(B)` (insertion order, deduplicated).
    pub fn underlying_set(&self) -> Vec<&T> {
        let mut seen: FxHashMap<&T, ()> = FxHashMap::default();
        let mut out = Vec::new();
        for x in &self.items {
            if seen.insert(x, ()).is_none() {
                out.push(x);
            }
        }
        out
    }

    /// Bag containment `self ⊆ other`: every multiplicity bounded.
    pub fn sub_bag(&self, other: &Bag<T>) -> bool {
        let mut counts: FxHashMap<&T, isize> = FxHashMap::default();
        for x in &other.items {
            *counts.entry(x).or_insert(0) += 1;
        }
        for x in &self.items {
            let c = counts.entry(x).or_insert(0);
            *c -= 1;
            if *c < 0 {
                return false;
            }
        }
        true
    }

    /// Bag equality up to identifier renaming: `self ⊆ other ∧ other ⊆
    /// self`. (Derived `==` is stricter: same identifier assignment.)
    pub fn bag_eq(&self, other: &Bag<T>) -> bool {
        self.items.len() == other.items.len() && self.sub_bag(other)
    }
}

impl<T> FromIterator<T> for Bag<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Bag::from_items(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_representation() {
        // The paper's B0 = {0 ↦ a, 1 ↦ a, 2 ↦ b}.
        let b = Bag::from_items(["a", "a", "b"]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), &"a");
        assert_eq!(b.get(1), &"a");
        assert_eq!(b.get(2), &"b");
        assert_eq!(b.underlying_set(), vec![&"a", &"b"]);
    }

    #[test]
    fn multiplicity_and_membership() {
        let b = Bag::from_items([1, 1, 2]);
        assert_eq!(b.multiplicity(&1), 2);
        assert_eq!(b.multiplicity(&2), 1);
        assert_eq!(b.multiplicity(&3), 0);
        assert!(b.contains(&2));
        assert!(!b.contains(&3));
    }

    #[test]
    fn containment_is_multiplicity_bounded() {
        let small = Bag::from_items([1, 2]);
        let big = Bag::from_items([2, 1, 1]);
        assert!(small.sub_bag(&big));
        assert!(!big.sub_bag(&small));
        let twice = Bag::from_items([2, 2]);
        assert!(!twice.sub_bag(&big));
    }

    #[test]
    fn bag_equality_ignores_identifier_order() {
        let a = Bag::from_items([1, 2, 2]);
        let b = Bag::from_items([2, 1, 2]);
        assert!(a.bag_eq(&b));
        assert_ne!(a, b, "derived Eq keeps identifier assignment");
        let c = Bag::from_items([1, 2]);
        assert!(!a.bag_eq(&c));
    }

    #[test]
    fn empty_bag() {
        let e: Bag<u32> = Bag::new();
        assert!(e.is_empty());
        assert!(e.sub_bag(&Bag::from_items([1])));
        assert!(e.bag_eq(&Bag::new()));
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut b = Bag::new();
        assert_eq!(b.push("x"), 0);
        assert_eq!(b.push("x"), 1);
        assert_eq!(b.ids().collect::<Vec<_>>(), vec![0, 1]);
    }
}

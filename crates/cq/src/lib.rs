//! # cer-cq — conjunctive queries under bag semantics, and the HCQ→PCEA
//! compiler
//!
//! Implements Section 4 of *Complex event recognition meets hierarchical
//! conjunctive queries* (Pinto & Riveros, PODS 2024):
//!
//! * [`bag`] — bags with identity (elements keep their own identifiers);
//! * [`database`] — relational databases with duplicates; the
//!   stream-prefix bridge `D_n[S]`;
//! * [`query`] / [`parser`] — CQ syntax, a text parser and a builder;
//! * [`hom`] — homomorphisms, t-homomorphisms, the paper's bag semantics
//!   and its equivalence with Chaudhuri–Vardi multiplicities (App. B);
//! * [`hierarchy`] — the hierarchy test;
//! * [`qtree`] — q-trees and compact q-trees (Figures 2–4);
//! * [`jointree`] — GYO acyclicity and join trees (Theorem 4.2 context);
//! * [`compile`] / [`selfjoin`] — the HCQ→PCEA compiler of Theorem 4.1:
//!   quadratic without self-joins, exponential with them.

pub mod bag;
pub mod compile;
pub mod database;
pub mod hierarchy;
pub mod hom;
pub mod jointree;
pub mod parser;
pub mod qtree;
pub mod query;
pub mod selfjoin;

pub use bag::Bag;
pub use compile::{compile_hcq, CompileError, CompiledQuery};
pub use database::Database;
pub use hierarchy::is_hierarchical;
pub use jointree::is_acyclic;
pub use parser::{parse_query, QueryBuilder};
pub use qtree::QTree;
pub use query::{Atom, ConjunctiveQuery, QueryError, Term, VarId};

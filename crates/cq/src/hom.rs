//! Homomorphisms, t-homomorphisms and CQ bag semantics (Section 4).
//!
//! The paper refines the classic Chaudhuri–Vardi bag semantics with
//! *tuple-homomorphisms*: functions `η : I(Q) → I(D)` from atom
//! identifiers to tuple identifiers witnessed by an ordinary homomorphism
//! `h_η`. Outputs are then in one-to-one correspondence with
//! t-homomorphisms, which is exactly what lets a CQ output be read as a
//! CER valuation (`ν(i) = {η(i)}` with `Ω = I(Q)`).
//!
//! This module enumerates both notions by backtracking (the test oracle
//! against which the HCQ→PCEA compiler and the streaming engine are
//! verified) and cross-checks the t-homomorphism semantics against the
//! multiplicity formula of Chaudhuri & Vardi (Appendix B).

use crate::database::Database;
use crate::query::{ConjunctiveQuery, Term, VarId};
use cer_automata::valuation::{Label, LabelSet, Valuation};
use cer_common::hash::FxHashMap;
use cer_common::{Tuple, Value};

/// A homomorphism restricted to the query's variables.
pub type Assignment = FxHashMap<VarId, Value>;

/// A t-homomorphism `η : I(Q) → I(D)`: `eta[i]` is the tuple identifier
/// the atom with identifier `i` maps to.
pub type THom = Vec<usize>;

/// Enumerate all t-homomorphisms from `q` to `db` by backtracking over
/// atoms, most-constrained-first by relation population.
pub fn t_homomorphisms(q: &ConjunctiveQuery, db: &Database) -> Vec<THom> {
    // Order atoms: ascending candidate count, to fail fast.
    let mut order: Vec<usize> = (0..q.num_atoms()).collect();
    order.sort_by_key(|&i| db.relation_ids(q.atom(i).relation).len());
    let mut out = Vec::new();
    let mut eta = vec![usize::MAX; q.num_atoms()];
    let mut assignment: Vec<Option<Value>> = vec![None; q.num_vars()];
    search(q, db, &order, 0, &mut eta, &mut assignment, &mut out);
    out
}

fn search(
    q: &ConjunctiveQuery,
    db: &Database,
    order: &[usize],
    depth: usize,
    eta: &mut THom,
    assignment: &mut Vec<Option<Value>>,
    out: &mut Vec<THom>,
) {
    if depth == order.len() {
        out.push(eta.clone());
        return;
    }
    let atom_id = order[depth];
    let atom = q.atom(atom_id);
    for &tid in db.relation_ids(atom.relation) {
        let tuple = db.get(tid);
        // Try to unify the atom with the tuple under the current partial
        // assignment, recording which variables we newly bound.
        let mut bound: Vec<VarId> = Vec::new();
        if unify(atom, tuple, assignment, &mut bound) {
            eta[atom_id] = tid;
            search(q, db, order, depth + 1, eta, assignment, out);
            eta[atom_id] = usize::MAX;
        }
        for v in bound {
            assignment[v.index()] = None;
        }
    }
}

fn unify(
    atom: &crate::query::Atom,
    tuple: &Tuple,
    assignment: &mut [Option<Value>],
    bound: &mut Vec<VarId>,
) -> bool {
    if atom.args.len() != tuple.arity() {
        return false;
    }
    for (k, term) in atom.args.iter().enumerate() {
        let actual = tuple.get(k);
        match term {
            Term::Const(c) => {
                if actual != c {
                    return false;
                }
            }
            Term::Var(v) => match &assignment[v.index()] {
                Some(val) => {
                    if val != actual {
                        return false;
                    }
                }
                None => {
                    assignment[v.index()] = Some(actual.clone());
                    bound.push(*v);
                }
            },
        }
    }
    true
}

/// The homomorphism `h_η` associated with a t-homomorphism, restricted to
/// variables.
pub fn assignment_of(q: &ConjunctiveQuery, db: &Database, eta: &[usize]) -> Assignment {
    let mut h = Assignment::default();
    for (i, &tid) in eta.iter().enumerate() {
        let atom = q.atom(i);
        let tuple = db.get(tid);
        for (k, term) in atom.args.iter().enumerate() {
            if let Term::Var(v) = term {
                h.entry(*v).or_insert_with(|| tuple.get(k).clone());
            }
        }
    }
    h
}

/// Enumerate `Hom(Q, D)`: distinct homomorphisms (as variable
/// assignments).
pub fn homomorphisms(q: &ConjunctiveQuery, db: &Database) -> Vec<Assignment> {
    let mut out: Vec<Assignment> = Vec::new();
    for eta in t_homomorphisms(q, db) {
        let h = assignment_of(q, db, &eta);
        if !out.contains(&h) {
            out.push(h);
        }
    }
    out
}

/// `mult_{Q,D}(h)`: the Chaudhuri–Vardi multiplicity of a homomorphism —
/// the product over atoms of the multiplicity of the atom's image.
pub fn cv_multiplicity(q: &ConjunctiveQuery, db: &Database, h: &Assignment) -> usize {
    let mut m = 1usize;
    for atom in q.atoms() {
        let image: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => h[v].clone(),
            })
            .collect();
        let tuple = Tuple::new(atom.relation, image);
        m *= db.multiplicity(&tuple);
    }
    m
}

/// `⌈⌈Q⌋⌋(D)` as a map from head-value rows to multiplicities, computed
/// via the Chaudhuri–Vardi formula. Used to cross-check the
/// t-homomorphism semantics (Appendix B equivalence).
pub fn cv_bag_semantics(q: &ConjunctiveQuery, db: &Database) -> FxHashMap<Vec<Value>, usize> {
    let mut out: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    for h in homomorphisms(q, db) {
        let row: Vec<Value> = q.head().iter().map(|v| h[v].clone()).collect();
        *out.entry(row).or_insert(0) += cv_multiplicity(q, db, &h);
    }
    out
}

/// `⟦Q⟧(D)` as a map from head rows to multiplicities, computed by
/// counting t-homomorphisms (the paper's semantics).
pub fn thom_bag_semantics(q: &ConjunctiveQuery, db: &Database) -> FxHashMap<Vec<Value>, usize> {
    let mut out: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    for eta in t_homomorphisms(q, db) {
        let h = assignment_of(q, db, &eta);
        let row: Vec<Value> = q.head().iter().map(|v| h[v].clone()).collect();
        *out.entry(row).or_insert(0) += 1;
    }
    out
}

/// Interpret a t-homomorphism as the valuation `η̂` with `Ω = I(Q)`:
/// `η̂(i) = {η(i)}`.
pub fn thom_to_valuation(q: &ConjunctiveQuery, eta: &[usize]) -> Valuation {
    let mut v = Valuation::empty(q.num_atoms());
    for (i, &tid) in eta.iter().enumerate() {
        v.insert(LabelSet::singleton(Label(i as u32)), tid as u64);
    }
    v
}

/// The CQ-over-streams semantics `⟦Q⟧_n(S)`: all t-homomorphisms into
/// `D_n[S]`, as valuations (duplicate-free, sorted).
pub fn outputs_upto(q: &ConjunctiveQuery, prefix: &[Tuple]) -> Vec<Valuation> {
    let db = Database::from_prefix(prefix);
    let mut vs: Vec<Valuation> = t_homomorphisms(q, &db)
        .iter()
        .map(|eta| thom_to_valuation(q, eta))
        .collect();
    vs.sort();
    vs.dedup();
    vs
}

/// The *new* outputs at position `n`: t-homomorphisms into `D_n[S]` whose
/// latest tuple is exactly `t_n`.
///
/// The PCEA side fires an accepting run when its root reads position `n`,
/// i.e. when the match *completes* at `n`; this is the matching notion on
/// the CQ side, and `⟦Q⟧_n(S) = ⋃_{m ≤ n} new_outputs_at(m)`.
pub fn new_outputs_at(q: &ConjunctiveQuery, prefix: &[Tuple], n: usize) -> Vec<Valuation> {
    let db = Database::from_prefix(&prefix[..=n]);
    let mut vs: Vec<Valuation> = t_homomorphisms(q, &db)
        .iter()
        .filter(|eta| eta.contains(&n))
        .map(|eta| thom_to_valuation(q, eta))
        .collect();
    vs.sort();
    vs.dedup();
    vs
}

/// Windowed new outputs at `n`: span `n − min(ν) ≤ w`.
pub fn windowed_new_outputs_at(
    q: &ConjunctiveQuery,
    prefix: &[Tuple],
    n: usize,
    w: u64,
) -> Vec<Valuation> {
    new_outputs_at(q, prefix, n)
        .into_iter()
        .filter(|v| {
            v.min_pos()
                .is_none_or(|m| (n as u64).saturating_sub(m) <= w)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    fn setup() -> (Schema, ConjunctiveQuery, Vec<Tuple>) {
        let (mut schema, r, s, t) = {
            let (schema, r, s, t) = Schema::sigma0();
            (schema, r, s, t)
        };
        let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
        (schema, q, sigma0_prefix(r, s, t))
    }

    #[test]
    fn paper_t_homomorphisms_eta0_eta1() {
        // η0 = {0↦1, 1↦3, 2↦5} and η1 = {0↦1, 1↦0, 2↦5} from Q0 to D0.
        let (_, q, prefix) = setup();
        let db = Database::from_prefix(&prefix[..=5]);
        let mut etas = t_homomorphisms(&q, &db);
        etas.sort();
        assert_eq!(etas, vec![vec![1, 0, 5], vec![1, 3, 5]]);
    }

    #[test]
    fn hom_vs_thom_multiplicities_agree() {
        // Appendix B: ⟦Q⟧(D) = ⌈⌈Q⌋⌋(D).
        let (_, q, prefix) = setup();
        for n in 0..prefix.len() {
            let db = Database::from_prefix(&prefix[..=n]);
            assert_eq!(
                thom_bag_semantics(&q, &db),
                cv_bag_semantics(&q, &db),
                "disagree at prefix length {}",
                n + 1
            );
        }
    }

    #[test]
    fn self_join_multiplicities() {
        // Q(x) ← T(x), T(x) over a database with T(1) twice: 4 t-homs
        // (2 choices per atom), CV multiplicity 2·2 = 4.
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- T(x), T(x)").unwrap();
        let t = schema.relation("T").unwrap();
        let db = Database::from_prefix(&[
            cer_common::tuple::tup(t, [1i64]),
            cer_common::tuple::tup(t, [1i64]),
        ]);
        assert_eq!(t_homomorphisms(&q, &db).len(), 4);
        let cv = cv_bag_semantics(&q, &db);
        assert_eq!(cv.get(&vec![Value::Int(1)]), Some(&4));
        assert_eq!(thom_bag_semantics(&q, &db), cv);
    }

    #[test]
    fn new_outputs_partition_accumulated_outputs() {
        let (_, q, prefix) = setup();
        let mut accumulated: Vec<Valuation> = Vec::new();
        for n in 0..prefix.len() {
            accumulated.extend(new_outputs_at(&q, &prefix, n));
        }
        accumulated.sort();
        accumulated.dedup();
        assert_eq!(accumulated, outputs_upto(&q, &prefix));
    }

    #[test]
    fn new_outputs_fire_at_completion_position() {
        let (_, q, prefix) = setup();
        // On S0, Q0 completes at position 5 (R(2,11)) with two matches.
        for n in 0..prefix.len() {
            let got = new_outputs_at(&q, &prefix, n).len();
            let want = if n == 5 { 2 } else { 0 };
            assert_eq!(got, want, "at position {n}");
        }
    }

    #[test]
    fn windowed_outputs_filter_span() {
        let (_, q, prefix) = setup();
        assert_eq!(windowed_new_outputs_at(&q, &prefix, 5, 5).len(), 2);
        assert_eq!(windowed_new_outputs_at(&q, &prefix, 5, 4).len(), 1);
        assert_eq!(windowed_new_outputs_at(&q, &prefix, 5, 2).len(), 0);
    }

    #[test]
    fn constants_restrict_matches() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(y) <- S(2, y)").unwrap();
        let s = schema.relation("S").unwrap();
        let db = Database::from_prefix(&[
            cer_common::tuple::tup(s, [2i64, 11]),
            cer_common::tuple::tup(s, [3i64, 11]),
        ]);
        let etas = t_homomorphisms(&q, &db);
        assert_eq!(etas, vec![vec![0]]);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- S(x, x)").unwrap();
        let s = schema.relation("S").unwrap();
        let db = Database::from_prefix(&[
            cer_common::tuple::tup(s, [4i64, 4]),
            cer_common::tuple::tup(s, [4i64, 5]),
        ]);
        assert_eq!(t_homomorphisms(&q, &db), vec![vec![0]]);
    }

    #[test]
    fn valuation_translation_uses_atom_ids_as_labels() {
        let (_, q, prefix) = setup();
        let db = Database::from_prefix(&prefix[..=5]);
        let eta = vec![1usize, 3, 5];
        assert!(t_homomorphisms(&q, &db).contains(&eta));
        let v = thom_to_valuation(&q, &eta);
        assert_eq!(v.get(Label(0)), &[1]);
        assert_eq!(v.get(Label(1)), &[3]);
        assert_eq!(v.get(Label(2)), &[5]);
    }

    #[test]
    fn projection_queries_aggregate_multiplicities() {
        // Non-full query Q(x) ← S(x, y): two y-values for x=1 give the
        // head row (1) multiplicity 2 under both semantics.
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- S(x, y)").unwrap();
        let s = schema.relation("S").unwrap();
        let db = Database::from_prefix(&[
            cer_common::tuple::tup(s, [1i64, 10]),
            cer_common::tuple::tup(s, [1i64, 11]),
            cer_common::tuple::tup(s, [2i64, 10]),
        ]);
        let bag = thom_bag_semantics(&q, &db);
        assert_eq!(bag.get(&vec![Value::Int(1)]), Some(&2));
        assert_eq!(bag.get(&vec![Value::Int(2)]), Some(&1));
        assert_eq!(bag, cv_bag_semantics(&q, &db));
    }

    #[test]
    fn empty_database_has_no_homs() {
        let (_, q, _) = setup();
        let db = Database::new();
        assert!(t_homomorphisms(&q, &db).is_empty());
        assert!(homomorphisms(&q, &db).is_empty());
    }
}

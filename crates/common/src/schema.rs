//! Relational schemas: the pair `(T, arity)` of the paper.
//!
//! Relation names are interned to dense integer ids (`RelationId`) so that
//! the hot path of the streaming engine never hashes strings: a tuple
//! carries its `RelationId`, and predicates compare ids.

use crate::error::{CommonError, Result};
use std::collections::HashMap;
use std::fmt;

/// A dense identifier for a relation name in a [`Schema`].
///
/// Ids are assigned in registration order starting at 0, which lets
/// automata index per-relation tables by `RelationId` directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u32);

impl RelationId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

/// A relational schema `σ = (T, arity)`.
///
/// ```
/// use cer_common::Schema;
/// let mut sigma = Schema::new();
/// let r = sigma.add_relation("R", 2).unwrap();
/// assert_eq!(sigma.arity(r), 2);
/// assert_eq!(sigma.name(r), "R");
/// assert_eq!(sigma.relation("R"), Some(r));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Schema {
    names: Vec<Box<str>>,
    arities: Vec<usize>,
    by_name: HashMap<Box<str>, RelationId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a relation name with its arity, returning its id.
    ///
    /// Registering the same name with the same arity is idempotent;
    /// conflicting arities are an error.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelationId> {
        if let Some(&id) = self.by_name.get(name) {
            if self.arities[id.index()] == arity {
                return Ok(id);
            }
            return Err(CommonError::DuplicateRelation {
                name: name.to_string(),
            });
        }
        let id = RelationId(self.names.len() as u32);
        self.names.push(name.into());
        self.arities.push(arity);
        self.by_name.insert(name.into(), id);
        Ok(id)
    }

    /// Look up a relation id by name.
    pub fn relation(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Look up a relation id by name, erroring when absent.
    pub fn require(&self, name: &str) -> Result<RelationId> {
        self.relation(name)
            .ok_or_else(|| CommonError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// The arity of a relation.
    #[inline]
    pub fn arity(&self, id: RelationId) -> usize {
        self.arities[id.index()]
    }

    /// The human-readable name of a relation.
    #[inline]
    pub fn name(&self, id: RelationId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all relation ids in registration order.
    pub fn relations(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.names.len() as u32).map(RelationId)
    }

    /// Build the paper's running-example schema σ0 with `R/2, S/2, T/1`.
    ///
    /// Returned ids are in the order `(R, S, T)`.
    pub fn sigma0() -> (Schema, RelationId, RelationId, RelationId) {
        let mut s = Schema::new();
        let r = s.add_relation("R", 2).expect("fresh schema");
        let t_s = s.add_relation("S", 2).expect("fresh schema");
        let t = s.add_relation("T", 1).expect("fresh schema");
        (s, r, t_s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_dense_ids() {
        let mut s = Schema::new();
        let a = s.add_relation("A", 1).unwrap();
        let b = s.add_relation("B", 3).unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity(b), 3);
        assert_eq!(s.name(a), "A");
    }

    #[test]
    fn idempotent_reregistration() {
        let mut s = Schema::new();
        let a1 = s.add_relation("A", 2).unwrap();
        let a2 = s.add_relation("A", 2).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_arity_is_an_error() {
        let mut s = Schema::new();
        s.add_relation("A", 2).unwrap();
        let err = s.add_relation("A", 3).unwrap_err();
        assert!(matches!(err, CommonError::DuplicateRelation { .. }));
    }

    #[test]
    fn unknown_relation_lookup() {
        let s = Schema::new();
        assert_eq!(s.relation("Z"), None);
        assert!(s.require("Z").is_err());
    }

    #[test]
    fn sigma0_matches_paper() {
        let (s, r, ss, t) = Schema::sigma0();
        assert_eq!(s.arity(r), 2);
        assert_eq!(s.arity(ss), 2);
        assert_eq!(s.arity(t), 1);
        assert_eq!(s.name(r), "R");
        assert_eq!(s.name(ss), "S");
        assert_eq!(s.name(t), "T");
    }

    #[test]
    fn relations_iterates_in_order() {
        let mut s = Schema::new();
        s.add_relation("A", 1).unwrap();
        s.add_relation("B", 1).unwrap();
        let ids: Vec<_> = s.relations().collect();
        assert_eq!(ids, vec![RelationId(0), RelationId(1)]);
    }
}

//! A fast, deterministic hasher for the engine's look-up tables.
//!
//! The paper's RAM model assumes constant-time dictionary operations. The
//! std `SipHash` is HashDoS-resistant but slow for the short keys the
//! engine hashes millions of times per second; this module implements the
//! well-known FxHash mixing function (as used in rustc) in-repo so we avoid
//! an extra dependency while keeping the hot path cheap and deterministic
//! across runs (important for reproducible benchmarks).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style 64-bit hasher: one multiply + rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        let bh = FxBuildHasher::default();

        bh.hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&"a"), hash_one(&"b"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, u64::from(i) * 7), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500, 3500)), Some(&500));
    }

    #[test]
    fn byte_tail_handling() {
        // Lengths not divisible by 8 exercise the remainder path.
        assert_ne!(hash_one(&[1u8, 2, 3]), hash_one(&[1u8, 2, 4]));
        assert_ne!(hash_one(&vec![0u8; 7]), hash_one(&vec![0u8; 8]));
    }
}

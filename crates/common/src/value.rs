//! Data values: the set `D` of the paper.
//!
//! The paper fixes an abstract domain `D` of data values and measures the
//! size of a tuple as the sum of the sizes of its values. We instantiate `D`
//! with a small algebraic type covering the domains that CER systems
//! actually stream (integers, symbols/strings, booleans, fixed-point
//! prices). Equality joins (`Beq`) need `Eq + Hash`, so floating point is
//! represented as a total-ordered fixed-point wrapper.

use std::fmt;

/// A single data value from the domain `D`.
///
/// `Value` is `Eq + Ord + Hash` so that it can serve directly as (part of)
/// an equality-join key in the streaming engine's look-up table `H`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit integer (the paper's examples use `D = N`).
    Int(i64),
    /// An interned or owned symbolic value (e.g. a stock ticker).
    Str(Box<str>),
    /// A boolean flag.
    Bool(bool),
    /// A fixed-point decimal with 4 fractional digits (e.g. a price).
    ///
    /// Stored as `round(x * 10_000)`, which keeps `Eq`/`Hash` total and
    /// well-defined — a requirement for equality predicates in `Beq`.
    Fixed(i64),
}

impl Value {
    /// Construct a fixed-point value from a float, rounding to 4 decimals.
    pub fn fixed(x: f64) -> Self {
        Value::Fixed((x * 10_000.0).round() as i64)
    }

    /// Convert a fixed-point value back to a float (lossy for the others).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Fixed(i) => Some(*i as f64 / 10_000.0),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The size `|a|` of the value under the paper's size measure.
    ///
    /// The RAM model charges linear time in the size of a tuple for unary
    /// predicates and key extraction; scalar values have unit size and
    /// strings are charged one unit per 8 bytes (one machine word).
    pub fn size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::Fixed(_) => 1,
            Value::Str(s) => 1 + s.len() / 8,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Fixed(i) => write!(f, "{}", *i as f64 / 10_000.0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.into())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into_boxed_str())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_roundtrip_and_equality() {
        let a = Value::from(42);
        let b = Value::Int(42);
        assert_eq!(a, b);
        assert_eq!(a.as_int(), Some(42));
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn fixed_point_is_total_and_stable() {
        let a = Value::fixed(10.5);
        let b = Value::fixed(10.5);
        let c = Value::fixed(10.5001);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_f64(), Some(10.5));
        assert!(a < c);
    }

    #[test]
    fn sizes_follow_word_measure() {
        assert_eq!(Value::Int(7).size(), 1);
        assert_eq!(Value::Bool(true).size(), 1);
        assert_eq!(Value::from("AAPL").size(), 1);
        let long = "x".repeat(64);
        assert_eq!(Value::from(long).size(), 9);
    }

    #[test]
    fn distinct_variants_never_equal() {
        assert_ne!(Value::Int(1), Value::Fixed(1));
        assert_ne!(Value::Int(0), Value::Bool(false));
        assert_ne!(Value::from("1"), Value::Int(1));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("a").to_string(), "\"a\"");
        assert_eq!(Value::fixed(2.25).to_string(), "2.25");
    }
}

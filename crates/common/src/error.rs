//! Error types shared across the workspace's data-model layer.

use std::fmt;

/// Errors raised while building schemas or tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommonError {
    /// A relation name was registered twice with conflicting arities.
    DuplicateRelation { name: String },
    /// A tuple was built with the wrong number of values for its relation.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// A relation name was referenced but never registered in the schema.
    UnknownRelation { name: String },
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::DuplicateRelation { name } => {
                write!(f, "relation {name:?} is already declared in the schema")
            }
            CommonError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "tuple for relation {relation:?} has {got} values but arity is {expected}"
            ),
            CommonError::UnknownRelation { name } => {
                write!(f, "relation {name:?} is not declared in the schema")
            }
        }
    }
}

impl std::error::Error for CommonError {}

/// Convenience alias used across the data-model layer.
pub type Result<T> = std::result::Result<T, CommonError>;

//! Streams: unbounded sequences of tuples, consumed via `yield[S]`.
//!
//! The paper models a stream `S = t0 t1 t2 …` as an infinite sequence and
//! assumes a method `yield[S]` whose i-th call retrieves `t_i`. The
//! [`Stream`] trait is exactly that interface; finite test streams simply
//! stop yielding.

use crate::tuple::Tuple;

/// An (possibly unbounded) source of tuples.
///
/// `next_tuple` plays the role of the paper's `yield[S]`: the i-th call
/// returns `t_i`. Finite streams return `None` once exhausted; the
/// evaluation loop then terminates.
pub trait Stream {
    /// Retrieve the next tuple, or `None` if the stream is exhausted.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

/// Blanket adapter so any `Iterator<Item = Tuple>` is a [`Stream`].
impl<I: Iterator<Item = Tuple>> Stream for I {
    fn next_tuple(&mut self) -> Option<Tuple> {
        self.next()
    }
}

/// A finite in-memory stream backed by a `Vec<Tuple>`.
#[derive(Clone, Debug)]
pub struct VecStream {
    tuples: Vec<Tuple>,
    pos: usize,
}

impl VecStream {
    /// Wrap a vector of tuples as a stream.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        VecStream { tuples, pos: 0 }
    }

    /// Number of tuples remaining.
    pub fn remaining(&self) -> usize {
        self.tuples.len() - self.pos
    }

    /// The full backing slice (including already-consumed tuples).
    pub fn as_slice(&self) -> &[Tuple] {
        &self.tuples
    }
}

impl Stream for VecStream {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let t = self.tuples.get(self.pos)?.clone();
        self.pos += 1;
        Some(t)
    }
}

/// A borrowed finite stream over a slice of tuples.
#[derive(Clone, Debug)]
pub struct SliceStream<'a> {
    tuples: &'a [Tuple],
    pos: usize,
}

impl<'a> SliceStream<'a> {
    /// Wrap a slice of tuples as a stream.
    pub fn new(tuples: &'a [Tuple]) -> Self {
        SliceStream { tuples, pos: 0 }
    }
}

impl Stream for SliceStream<'_> {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let t = self.tuples.get(self.pos)?.clone();
        self.pos += 1;
        Some(t)
    }
}

/// Extension helpers over any [`Stream`].
pub trait StreamExt: Stream + Sized {
    /// Collect up to `n` tuples into a vector (fewer if exhausted).
    fn take_tuples(&mut self, n: usize) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_tuple() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }
}

impl<S: Stream> StreamExt for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::tup;

    #[test]
    fn vec_stream_yields_in_order() {
        let (_, r, _, _) = Schema::sigma0();
        let ts = vec![tup(r, [1i64, 2]), tup(r, [3i64, 4])];
        let mut s = VecStream::new(ts.clone());
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_tuple(), Some(ts[0].clone()));
        assert_eq!(s.next_tuple(), Some(ts[1].clone()));
        assert_eq!(s.next_tuple(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn slice_stream_does_not_consume_backing() {
        let (_, r, _, _) = Schema::sigma0();
        let ts = vec![tup(r, [1i64, 2])];
        let mut s = SliceStream::new(&ts);
        assert!(s.next_tuple().is_some());
        assert!(s.next_tuple().is_none());
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn iterators_are_streams() {
        let (_, r, _, _) = Schema::sigma0();
        let ts = vec![tup(r, [1i64, 2]), tup(r, [3i64, 4]), tup(r, [5i64, 6])];
        let mut it = ts.clone().into_iter();
        let got = it.take_tuples(10);
        assert_eq!(got, ts);
    }

    #[test]
    fn take_tuples_respects_limit() {
        let (_, r, _, _) = Schema::sigma0();
        let ts: Vec<_> = (0..10).map(|i| tup(r, [i as i64, i as i64])).collect();
        let mut s = VecStream::new(ts);
        assert_eq!(s.take_tuples(3).len(), 3);
        assert_eq!(s.remaining(), 7);
    }
}

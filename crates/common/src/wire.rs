//! A tiny self-describing binary wire format for checkpoints.
//!
//! The workspace builds offline (no serde), so the checkpoint subsystem
//! (`cer-core`'s `checkpoint` module) hand-rolls its snapshot
//! encoding on top of this module: a [`WireWriter`]/[`WireReader`] pair
//! over little-endian fixed-width scalars plus length-prefixed
//! sequences, and a [`Wire`] trait implemented by every type that
//! participates in a snapshot. Encoding is fallible because some
//! runtime values cannot round-trip (e.g. user-supplied closure
//! predicates); decoding is fallible because snapshot bytes come from
//! disk or the network and must never panic the process.
//!
//! The format carries no type tags beyond what each `Wire`
//! implementation writes itself — compatibility across releases is
//! handled one level up by the snapshot header's version field, not per
//! field here.

use crate::value::Value;
use crate::RelationId;
use std::fmt;

/// Why an encode or decode failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The value contains state that cannot be serialized (e.g. a
    /// `UnaryPredicate::Custom` closure). The payload names it.
    Unsupported(&'static str),
    /// The reader ran out of bytes mid-value.
    Truncated,
    /// A tag or length field held a value the decoder does not know.
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Unsupported(what) => {
                write!(f, "cannot serialize {what}")
            }
            WireError::Truncated => write!(f, "snapshot bytes truncated"),
            WireError::Corrupt(what) => write!(f, "snapshot bytes corrupt: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink for encoding.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (for nesting blobs).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (portable across word sizes).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write raw bytes with a length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Write a string with a length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor over snapshot bytes for decoding. Every read is
/// bounds-checked; malformed input yields [`WireError`], never a panic.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length written by [`WireWriter::put_len`], sanity-bounded
    /// by the remaining input so a corrupt length cannot trigger a huge
    /// allocation.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        if v > self.buf.len() as u64 * 64 + (1 << 20) {
            return Err(WireError::Corrupt("implausible length"));
        }
        Ok(v as usize)
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u64()?;
        usize::try_from(n)
            .ok()
            .and_then(|n| self.take(n).ok())
            .ok_or(WireError::Truncated)
    }

    /// Read a length-prefixed string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("non-UTF-8 string"))
    }
}

/// Types that can round-trip through the checkpoint wire format.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `w`.
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError>;
    /// Decode one value from the reader's current position.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl Wire for u8 {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u8(*self);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u8()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u32(*self);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64(*self);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_i64(*self);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_i64()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_len(*self);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Corrupt("usize overflow"))
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u8(u8::from(*self));
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool tag")),
        }
    }
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_str(self);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.get_str()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_len(self.len());
        for item in self {
            item.encode(w)?;
        }
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Box<[T]> {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_len(self.len());
        for item in self.iter() {
            item.encode(w)?;
        }
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Vec::<T>::decode(r)?.into_boxed_slice())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w)?;
            }
        }
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Corrupt("option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.0.encode(w)?;
        self.1.encode(w)
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.0.encode(w)?;
        self.1.encode(w)?;
        self.2.encode(w)
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Wire for RelationId {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u32(self.0);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RelationId(r.get_u32()?))
    }
}

impl Wire for Value {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            Value::Int(i) => {
                w.put_u8(0);
                w.put_i64(*i);
            }
            Value::Str(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
            Value::Bool(b) => {
                w.put_u8(2);
                w.put_u8(u8::from(*b));
            }
            Value::Fixed(i) => {
                w.put_u8(3);
                w.put_i64(*i);
            }
        }
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Value::Int(r.get_i64()?)),
            1 => Ok(Value::Str(r.get_str()?.into_boxed_str())),
            2 => match r.get_u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(WireError::Corrupt("bool value tag")),
            },
            3 => Ok(Value::Fixed(r.get_i64()?)),
            _ => Err(WireError::Corrupt("value tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = WireWriter::new();
        v.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(&T::decode(&mut r).unwrap(), v);
        assert!(r.is_exhausted(), "no trailing bytes");
    }

    #[test]
    fn scalars_and_containers_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&usize::MAX);
        roundtrip(&true);
        roundtrip(&String::from("héllo"));
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<u32>::new());
        roundtrip(&Some(7u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&(3u32, String::from("x")));
        roundtrip(&(1u64, 2u32, false));
        roundtrip(&Box::<[u64]>::from(vec![9, 8]));
    }

    #[test]
    fn values_and_relation_ids_roundtrip() {
        roundtrip(&RelationId(42));
        roundtrip(&Value::Int(-5));
        roundtrip(&Value::Str("AAPL".into()));
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::fixed(10.5));
        roundtrip(&vec![Value::Int(1), Value::Str("a".into())]);
    }

    #[test]
    fn truncated_and_corrupt_inputs_error_cleanly() {
        let mut w = WireWriter::new();
        Value::Str("hello".into()).encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(Value::decode(&mut r).is_err(), "cut at {cut}");
        }
        // Unknown tag.
        let mut r = WireReader::new(&[9u8]);
        assert_eq!(Value::decode(&mut r), Err(WireError::Corrupt("value tag")));
        // Implausible vec length must not allocate petabytes.
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(Vec::<u64>::decode(&mut r).is_err());
    }
}

//! CRC-32 (IEEE 802.3) — the frame checksum for on-disk formats.
//!
//! The durability layer frames every WAL record and checkpoint file
//! with a CRC over its payload so a torn write or bit rot is detected
//! as corruption rather than decoded as garbage. Table-driven,
//! byte-at-a-time — fast enough that framing cost is dominated by the
//! `write(2)` it protects.

/// 256-entry lookup table for the reflected IEEE polynomial `0xEDB88320`.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state. `Crc32::new().update(a).update(b).finish()`
/// equals `crc32(a ++ b)` — the streaming checkpoint writer feeds it
/// one blob at a time.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut s = self.state;
        for &b in bytes {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
        self
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"position-stamped write-ahead log";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]).update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"frame payload".to_vec();
        let clean = crc32(&data);
        data[4] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}

//! Tuples `R(a0, …, a_{k-1})` over a schema.

use crate::schema::{RelationId, Schema};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An `R`-tuple of a schema: a relation id plus its data values.
///
/// Values are stored behind an `Arc<[Value]>` so that cloning a tuple while
/// it flows through automata, indexes and baselines is O(1) — the streaming
/// engine clones the current tuple into at most one place per transition.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    relation: RelationId,
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from a relation id and values.
    ///
    /// This does not validate arity against a schema; use
    /// [`Tuple::checked`] when the schema is at hand.
    pub fn new(relation: RelationId, values: Vec<Value>) -> Self {
        Tuple {
            relation,
            values: values.into(),
        }
    }

    /// Build a tuple, validating its arity against the schema.
    pub fn checked(
        schema: &Schema,
        relation: RelationId,
        values: Vec<Value>,
    ) -> crate::Result<Self> {
        let expected = schema.arity(relation);
        if values.len() != expected {
            return Err(crate::CommonError::ArityMismatch {
                relation: schema.name(relation).to_string(),
                expected,
                got: values.len(),
            });
        }
        Ok(Self::new(relation, values))
    }

    /// The tuple's relation id.
    #[inline]
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The tuple's values `ā`.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// The tuple's arity `k`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The paper's size measure `|R(ā)| = Σ |ā[i]|`.
    pub fn size(&self) -> usize {
        self.values.iter().map(Value::size).sum()
    }

    /// Render the tuple with its relation name from the schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        DisplayTuple {
            tuple: self,
            schema,
        }
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(", self.relation)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

struct DisplayTuple<'a> {
    tuple: &'a Tuple,
    schema: &'a Schema,
}

impl fmt::Display for DisplayTuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name(self.tuple.relation))?;
        for (i, v) in self.tuple.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience constructor: `tup(rel, [1, 2])`.
pub fn tup<V: Into<Value>>(relation: RelationId, values: impl IntoIterator<Item = V>) -> Tuple {
    Tuple::new(relation, values.into_iter().map(Into::into).collect())
}

impl crate::wire::Wire for Tuple {
    fn encode(&self, w: &mut crate::wire::WireWriter) -> Result<(), crate::wire::WireError> {
        self.relation.encode(w)?;
        w.put_len(self.values.len());
        for v in self.values.iter() {
            v.encode(w)?;
        }
        Ok(())
    }
    fn decode(r: &mut crate::wire::WireReader<'_>) -> Result<Self, crate::wire::WireError> {
        let relation = RelationId::decode(r)?;
        let n = r.get_len()?;
        let mut values = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            values.push(Value::decode(r)?);
        }
        Ok(Tuple::new(relation, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma0() -> (Schema, RelationId, RelationId, RelationId) {
        Schema::sigma0()
    }

    #[test]
    fn construction_and_access() {
        let (_, r, _, _) = sigma0();
        let t = Tuple::new(r, vec![Value::Int(2), Value::Int(11)]);
        assert_eq!(t.relation(), r);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(1), &Value::Int(11));
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn checked_rejects_bad_arity() {
        let (s, r, _, _) = sigma0();
        let err = Tuple::checked(&s, r, vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, crate::CommonError::ArityMismatch { .. }));
        assert!(Tuple::checked(&s, r, vec![Value::Int(1), Value::Int(2)]).is_ok());
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let (_, r, _, _) = sigma0();
        let t = tup(r, [1i64, 2]);
        let u = t.clone();
        assert_eq!(t, u);
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn display_uses_schema_names() {
        let (s, _, _, t_rel) = sigma0();
        let t = tup(t_rel, [2i64]);
        assert_eq!(t.display(&s).to_string(), "T(2)");
    }

    #[test]
    fn equality_distinguishes_relations() {
        let (_, r, s_rel, _) = sigma0();
        let a = tup(r, [1i64, 2]);
        let b = tup(s_rel, [1i64, 2]);
        assert_ne!(a, b);
    }

    #[test]
    fn wire_roundtrip_and_truncation() {
        use crate::wire::{Wire, WireReader, WireWriter};
        let (_, r, _, _) = sigma0();
        let t = Tuple::new(r, vec![Value::Int(-3), Value::Str("x".into())]);
        let mut w = WireWriter::new();
        t.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut rd = WireReader::new(&bytes);
        assert_eq!(Tuple::decode(&mut rd).unwrap(), t);
        assert!(rd.is_exhausted());
        for cut in 0..bytes.len() {
            let mut rd = WireReader::new(&bytes[..cut]);
            assert!(Tuple::decode(&mut rd).is_err(), "cut {cut}");
        }
    }
}

//! Synthetic workload generators.
//!
//! The paper is a pure-algorithms paper evaluated on abstract streams; this
//! module provides the concrete stream families used throughout the
//! examples, integration tests and benchmark harness:
//!
//! * [`sigma0_prefix`] — the exact 8-tuple prefix `S0` from Section 2;
//! * [`Sigma0Gen`] — an unbounded extension of `S0` with controllable join
//!   selectivity, for the Q0 workload (experiments E1/E5/E6);
//! * [`StarGen`] — streams for star HCQs `Q(x,y1..yk) ← A0(x), Ai(x,yi)`,
//!   the canonical hierarchical family (experiment E3);
//! * [`ChainGen`] — streams for chain (sequencing) queries matched by CCEA
//!   (experiment E7);
//! * [`StockGen`] / [`SensorGen`] — the domain-flavoured workloads that the
//!   paper's introduction motivates (stock correlation, sensor fusion),
//!   used by the runnable examples.
//!
//! All generators implement [`Stream`] and are
//! deterministic given a seed, so experiments are reproducible.

use crate::schema::{RelationId, Schema};
use crate::stream::Stream;
use crate::tuple::Tuple;
use crate::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's running example stream `S0` (positions 0..=7):
/// `S(2,11) T(2) R(1,10) S(2,11) T(1) R(2,11) S(4,13) T(1)`.
pub fn sigma0_prefix(r: RelationId, s: RelationId, t: RelationId) -> Vec<Tuple> {
    let i = |x: i64| Value::Int(x);
    vec![
        Tuple::new(s, vec![i(2), i(11)]),
        Tuple::new(t, vec![i(2)]),
        Tuple::new(r, vec![i(1), i(10)]),
        Tuple::new(s, vec![i(2), i(11)]),
        Tuple::new(t, vec![i(1)]),
        Tuple::new(r, vec![i(2), i(11)]),
        Tuple::new(s, vec![i(4), i(13)]),
        Tuple::new(t, vec![i(1)]),
    ]
}

/// Unbounded random stream over the σ0 schema for the query
/// `Q0(x,y) ← T(x), S(x,y), R(x,y)`.
///
/// Each emitted tuple draws `x` from `0..x_domain` and `y` from
/// `0..y_domain`; smaller domains mean more joins (higher selectivity).
#[derive(Clone, Debug)]
pub struct Sigma0Gen {
    r: RelationId,
    s: RelationId,
    t: RelationId,
    /// Domain size for the `x` attribute.
    pub x_domain: i64,
    /// Domain size for the `y` attribute.
    pub y_domain: i64,
    rng: SmallRng,
}

impl Sigma0Gen {
    /// Create a generator over the given σ0 relation ids.
    pub fn new(r: RelationId, s: RelationId, t: RelationId, seed: u64) -> Self {
        Sigma0Gen {
            r,
            s,
            t,
            x_domain: 16,
            y_domain: 16,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Set domain sizes (selectivity knobs).
    pub fn with_domains(mut self, x_domain: i64, y_domain: i64) -> Self {
        assert!(x_domain > 0 && y_domain > 0, "domains must be non-empty");
        self.x_domain = x_domain;
        self.y_domain = y_domain;
        self
    }
}

impl Stream for Sigma0Gen {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let x = Value::Int(self.rng.gen_range(0..self.x_domain));
        let y = Value::Int(self.rng.gen_range(0..self.y_domain));
        let t = match self.rng.gen_range(0..3u8) {
            0 => Tuple::new(self.t, vec![x]),
            1 => Tuple::new(self.s, vec![x, y]),
            _ => Tuple::new(self.r, vec![x, y]),
        };
        Some(t)
    }
}

/// Stream generator for star queries
/// `Q(x, y1, …, yk) ← A0(x), A1(x,y1), …, Ak(x,yk)`.
///
/// Star queries are the canonical hierarchical family: every satellite
/// variable `yi` occurs in exactly one atom and the centre `x` in all.
#[derive(Clone, Debug)]
pub struct StarGen {
    /// `A0` (the unary centre relation) followed by the k satellites.
    pub relations: Vec<RelationId>,
    /// Domain for the shared centre attribute `x`.
    pub x_domain: i64,
    /// Domain for satellite attributes `yi`.
    pub y_domain: i64,
    rng: SmallRng,
}

impl StarGen {
    /// Build the star schema `A0/1, A1/2, …, Ak/2` and its generator.
    pub fn build(schema: &mut Schema, k: usize, seed: u64) -> crate::Result<Self> {
        let mut relations = Vec::with_capacity(k + 1);
        relations.push(schema.add_relation("A0", 1)?);
        for i in 1..=k {
            relations.push(schema.add_relation(&format!("A{i}"), 2)?);
        }
        Ok(StarGen {
            relations,
            x_domain: 16,
            y_domain: 16,
            rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// Set domain sizes (selectivity knobs).
    pub fn with_domains(mut self, x_domain: i64, y_domain: i64) -> Self {
        assert!(x_domain > 0 && y_domain > 0, "domains must be non-empty");
        self.x_domain = x_domain;
        self.y_domain = y_domain;
        self
    }
}

impl Stream for StarGen {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let which = self.rng.gen_range(0..self.relations.len());
        let x = Value::Int(self.rng.gen_range(0..self.x_domain));
        let t = if which == 0 {
            Tuple::new(self.relations[0], vec![x])
        } else {
            let y = Value::Int(self.rng.gen_range(0..self.y_domain));
            Tuple::new(self.relations[which], vec![x, y])
        };
        Some(t)
    }
}

/// Stream generator for chain (sequencing) workloads matched by CCEA:
/// relations `B0(x), B1(x,x'), …` emitted uniformly with shared key domain.
#[derive(Clone, Debug)]
pub struct ChainGen {
    /// The chain relations `B0/2, …, B_{k-1}/2`.
    pub relations: Vec<RelationId>,
    /// Shared key domain.
    pub domain: i64,
    rng: SmallRng,
}

impl ChainGen {
    /// Build the chain schema `B0/2 … B_{k-1}/2` and its generator.
    pub fn build(schema: &mut Schema, k: usize, seed: u64) -> crate::Result<Self> {
        let mut relations = Vec::with_capacity(k);
        for i in 0..k {
            relations.push(schema.add_relation(&format!("B{i}"), 2)?);
        }
        Ok(ChainGen {
            relations,
            domain: 16,
            rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// Set the key domain (selectivity knob).
    pub fn with_domain(mut self, domain: i64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        self.domain = domain;
        self
    }
}

impl Stream for ChainGen {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let which = self.rng.gen_range(0..self.relations.len());
        let a = Value::Int(self.rng.gen_range(0..self.domain));
        let b = Value::Int(self.rng.gen_range(0..self.domain));
        Some(Tuple::new(self.relations[which], vec![a, b]))
    }
}

/// Stock-market workload: `BUY(ticker, price)`, `SELL(ticker, price)`,
/// `ALERT(ticker)` events over a set of tickers with a random-walk price.
///
/// The motivating query is the HCQ
/// `Spike(x,p,q) ← ALERT(x), BUY(x,p), SELL(x,q)`:
/// "an alerted ticker with both a buy and a sell in the window".
#[derive(Clone, Debug)]
pub struct StockGen {
    /// Relation ids `(BUY, SELL, ALERT)`.
    pub buy: RelationId,
    /// SELL relation id.
    pub sell: RelationId,
    /// ALERT relation id.
    pub alert: RelationId,
    tickers: Vec<&'static str>,
    prices: Vec<f64>,
    /// Probability (per mille) of an ALERT event.
    pub alert_per_mille: u32,
    rng: SmallRng,
}

/// Ticker universe for [`StockGen`].
pub const TICKERS: [&str; 8] = [
    "AAPL", "MSFT", "GOOG", "AMZN", "TSLA", "META", "NVDA", "INTC",
];

impl StockGen {
    /// Build the stock schema `BUY/2, SELL/2, ALERT/1` and its generator.
    pub fn build(schema: &mut Schema, seed: u64) -> crate::Result<Self> {
        Ok(StockGen {
            buy: schema.add_relation("BUY", 2)?,
            sell: schema.add_relation("SELL", 2)?,
            alert: schema.add_relation("ALERT", 1)?,
            tickers: TICKERS.to_vec(),
            prices: vec![100.0; TICKERS.len()],
            alert_per_mille: 50,
            rng: SmallRng::seed_from_u64(seed),
        })
    }
}

impl Stream for StockGen {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let i = self.rng.gen_range(0..self.tickers.len());
        let ticker = Value::from(self.tickers[i]);
        // Random-walk price, clamped away from zero.
        self.prices[i] = (self.prices[i] + self.rng.gen_range(-1.0..1.0)).max(1.0);
        let price = Value::fixed(self.prices[i]);
        let roll = self.rng.gen_range(0..1000u32);
        let t = if roll < self.alert_per_mille {
            Tuple::new(self.alert, vec![ticker])
        } else if roll % 2 == 0 {
            Tuple::new(self.buy, vec![ticker, price])
        } else {
            Tuple::new(self.sell, vec![ticker, price])
        };
        Some(t)
    }
}

/// Sensor-network workload: `TEMP(node, c)`, `SMOKE(node, ppm)`,
/// `ALARM(node)` for the fire-detection HCQ
/// `Fire(n,c,p) ← ALARM(n), TEMP(n,c), SMOKE(n,p)`.
#[derive(Clone, Debug)]
pub struct SensorGen {
    /// TEMP relation id.
    pub temp: RelationId,
    /// SMOKE relation id.
    pub smoke: RelationId,
    /// ALARM relation id.
    pub alarm: RelationId,
    /// Number of sensor nodes.
    pub nodes: i64,
    /// Probability (per mille) of an ALARM event.
    pub alarm_per_mille: u32,
    rng: SmallRng,
}

impl SensorGen {
    /// Build the sensor schema `TEMP/2, SMOKE/2, ALARM/1` and its generator.
    pub fn build(schema: &mut Schema, nodes: i64, seed: u64) -> crate::Result<Self> {
        assert!(nodes > 0, "need at least one sensor node");
        Ok(SensorGen {
            temp: schema.add_relation("TEMP", 2)?,
            smoke: schema.add_relation("SMOKE", 2)?,
            alarm: schema.add_relation("ALARM", 1)?,
            nodes,
            alarm_per_mille: 20,
            rng: SmallRng::seed_from_u64(seed),
        })
    }
}

impl Stream for SensorGen {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let node = Value::Int(self.rng.gen_range(0..self.nodes));
        let roll = self.rng.gen_range(0..1000u32);
        let t = if roll < self.alarm_per_mille {
            Tuple::new(self.alarm, vec![node])
        } else if roll % 2 == 0 {
            let c = Value::Int(self.rng.gen_range(15..90));
            Tuple::new(self.temp, vec![node, c])
        } else {
            let ppm = Value::Int(self.rng.gen_range(0..500));
            Tuple::new(self.smoke, vec![node, ppm])
        };
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamExt;

    #[test]
    fn sigma0_prefix_matches_paper() {
        let (schema, r, s, t) = Schema::sigma0();
        let pre = sigma0_prefix(r, s, t);
        assert_eq!(pre.len(), 8);
        assert_eq!(pre[1].display(&schema).to_string(), "T(2)");
        assert_eq!(pre[5].display(&schema).to_string(), "R(2, 11)");
        assert_eq!(pre[3], pre[0], "S(2,11) repeats at positions 0 and 3");
    }

    #[test]
    fn sigma0_gen_is_deterministic() {
        let (_, r, s, t) = Schema::sigma0();
        let a = Sigma0Gen::new(r, s, t, 7).take_tuples(100);
        let b = Sigma0Gen::new(r, s, t, 7).take_tuples(100);
        assert_eq!(a, b);
        let c = Sigma0Gen::new(r, s, t, 8).take_tuples(100);
        assert_ne!(a, c);
    }

    #[test]
    fn star_gen_emits_all_relations() {
        let mut schema = Schema::new();
        let mut g = StarGen::build(&mut schema, 3, 1).unwrap();
        let ts = g.take_tuples(500);
        for rel in &g.relations {
            assert!(
                ts.iter().any(|t| t.relation() == *rel),
                "relation {rel:?} never emitted"
            );
        }
        // A0 tuples are unary, satellites binary.
        for t in &ts {
            let expected = if t.relation() == g.relations[0] { 1 } else { 2 };
            assert_eq!(t.arity(), expected);
        }
    }

    #[test]
    fn chain_gen_respects_domain() {
        let mut schema = Schema::new();
        let mut g = ChainGen::build(&mut schema, 2, 3).unwrap().with_domain(4);
        for t in g.take_tuples(200) {
            for v in t.values() {
                let x = v.as_int().unwrap();
                assert!((0..4).contains(&x));
            }
        }
    }

    #[test]
    fn stock_gen_produces_alerts_and_trades() {
        let mut schema = Schema::new();
        let mut g = StockGen::build(&mut schema, 11).unwrap();
        let ts = g.take_tuples(2000);
        assert!(ts.iter().any(|t| t.relation() == g.alert));
        assert!(ts.iter().any(|t| t.relation() == g.buy));
        assert!(ts.iter().any(|t| t.relation() == g.sell));
    }

    #[test]
    fn sensor_gen_values_in_range() {
        let mut schema = Schema::new();
        let mut g = SensorGen::build(&mut schema, 5, 13).unwrap();
        for t in g.take_tuples(500) {
            let node = t.get(0).as_int().unwrap();
            assert!((0..5).contains(&node));
        }
    }
}

//! # cer-common — data model for complex event recognition
//!
//! This crate provides the substrate shared by every other crate in the
//! workspace: the set of data values `D`, relational schemas, tuples, and
//! (unbounded) streams of tuples, exactly as defined in Section 2 of
//! *Complex event recognition meets hierarchical conjunctive queries*
//! (Pinto & Riveros, PODS 2024).
//!
//! It also ships the synthetic workload generators used by the examples,
//! tests and benchmark harness (`gen` module): the paper evaluates a pure
//! algorithm, so streams are synthesized with controllable selectivity and
//! skew rather than replayed from proprietary traces.
//!
//! ## Quick tour
//!
//! ```
//! use cer_common::{Schema, Tuple, Value};
//!
//! // The running-example schema σ0 of the paper: R/2, S/2, T/1.
//! let mut schema = Schema::new();
//! let r = schema.add_relation("R", 2).unwrap();
//! let t = schema.add_relation("T", 1).unwrap();
//! let tup = Tuple::new(r, vec![Value::Int(2), Value::Int(11)]);
//! assert_eq!(schema.arity(r), 2);
//! assert_eq!(tup.arity(), 2);
//! assert_ne!(r, t);
//! ```

pub mod crc;
pub mod error;
pub mod gen;
pub mod hash;
pub mod schema;
pub mod stream;
pub mod tuple;
pub mod value;
pub mod wire;

pub use error::{CommonError, Result};
pub use schema::{RelationId, Schema};
pub use stream::{SliceStream, Stream, StreamExt, VecStream};
pub use tuple::Tuple;
pub use value::Value;

//! Runtime shard scaling: multi-query throughput (tuples/sec) versus
//! shard count, versus the status-quo loop of independent per-query
//! evaluators, plus key-partitioned scaling of one hot query, plus the
//! batch-size sweep showing the vectorized fire-stage win.
//!
//! Emits `BENCH_JSON` lines (see the criterion shim) with
//! `elems_per_sec` as the tuples/sec figure. The CI bench-regression
//! gate (`cer-bench`'s `bench_gate` binary) compares these against the
//! committed `BENCH_runtime_scaling.json` baseline at the repo root.

use cer_bench::{multi_query_workload, near_duplicate_workload};
use cer_core::runtime::{Partition, QuerySpec, Runtime};
use cer_core::window::WindowPolicy;
use cer_core::StreamingEvaluator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const QUERIES: usize = 8;
const EVENTS: usize = 20_000;
const WINDOW: u64 = 64;

fn bench_multi_query_shards(c: &mut Criterion) {
    let wl = multi_query_workload(QUERIES, EVENTS, 4, 4, 42);
    let mut group = c.benchmark_group("runtime_scaling_multi_query");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for shards in [1usize, 2, 4, 8] {
        // The runtime persists across iterations (steady state); each
        // iteration pushes the whole stream as one batch.
        let mut rt = Runtime::new(shards);
        for (j, pcea) in wl.pceas.iter().enumerate() {
            rt.register(QuerySpec::new(
                format!("q{j}"),
                pcea.clone(),
                WindowPolicy::Count(WINDOW),
            ))
            .expect("register");
        }
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| rt.push_batch(&wl.stream).len());
        });
    }
    // Status quo: a single-threaded loop over independent evaluators,
    // every query scanning every tuple.
    let mut evals: Vec<StreamingEvaluator> = wl
        .pceas
        .iter()
        .map(|p| StreamingEvaluator::new(p.clone(), WINDOW))
        .collect();
    group.bench_function("per_query_evaluators", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &wl.stream {
                for e in &mut evals {
                    n += e.push_count(t);
                }
            }
            n
        });
    });
    group.finish();
}

fn bench_keyed_hot_query(c: &mut Criterion) {
    // One hot query, key-partitioned across shards: scaling within a
    // single query rather than across queries.
    let wl = multi_query_workload(1, EVENTS, 256, 4, 7);
    let pcea = &wl.pceas[0];
    assert!(pcea.supports_key_partition(0));
    let mut group = c.benchmark_group("runtime_scaling_keyed_hot_query");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for shards in [1usize, 2, 4, 8] {
        let mut rt = Runtime::new(shards);
        rt.register(
            QuerySpec::new("hot", pcea.clone(), WindowPolicy::Count(WINDOW))
                .with_partition(Partition::ByKey { pos: 0 }),
        )
        .expect("register");
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| rt.push_batch(&wl.stream).len());
        });
    }
    group.finish();
}

fn bench_batch_size_sweep(c: &mut Criterion) {
    // How many tuples per slice before the batch path pays off? Two
    // views of the same standard workload:
    //
    // * `push_batch/N` — the full runtime path (sequencer + shard
    //   queues + fence) fed in chunks of N: at N=1 every tuple pays the
    //   whole pipeline round-trip, larger N amortizes it and lets the
    //   workers evaluate coalesced slices through the vectorized fire
    //   stage;
    // * `evaluator_slice/N` — a single `StreamingEvaluator` driven
    //   through `push_slice_count` in chunks of N: the pure
    //   vectorization trajectory (prefilter bitmask, hoisted N_p
    //   bookkeeping, amortized GC) with no pipeline overhead at all.
    let wl = multi_query_workload(QUERIES, EVENTS, 4, 4, 42);
    let mut group = c.benchmark_group("runtime_scaling_batch_size");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for batch in [1usize, 16, 256, 4096] {
        let mut rt = Runtime::new(4);
        for (j, pcea) in wl.pceas.iter().enumerate() {
            rt.register(QuerySpec::new(
                format!("q{j}"),
                pcea.clone(),
                WindowPolicy::Count(WINDOW),
            ))
            .expect("register");
        }
        group.bench_with_input(BenchmarkId::new("push_batch", batch), &batch, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                for chunk in wl.stream.chunks(batch) {
                    n += rt.push_batch(chunk).len();
                }
                n
            });
        });
    }
    let single = multi_query_workload(1, EVENTS, 4, 4, 42);
    for batch in [1usize, 16, 256, 4096] {
        let mut eval = StreamingEvaluator::new(single.pceas[0].clone(), WINDOW);
        group.bench_with_input(
            BenchmarkId::new("evaluator_slice", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    let mut n = 0usize;
                    for chunk in single.stream.chunks(batch) {
                        n += eval.push_slice_count(chunk);
                    }
                    n
                });
            },
        );
    }
    group.finish();
}

fn bench_query_count_scaling(c: &mut Criterion) {
    // Sublinear scaling in the *query count*: 4 skeleton families of
    // near-duplicate queries (S-branch thresholds cycling through a
    // tiny domain, so most variants are exact duplicates). The shared
    // predicate cache evaluates each distinct unary predicate once per
    // tuple per batch and the skeleton groups select once per family,
    // so per-query marginal cost collapses to residual firing work.
    // One shard isolates the effect from thread-level parallelism.
    //
    // The CI gate (`SUBLINEAR_FAMILIES` in bench_gate) requires the
    // largest member to beat the linear extrapolation of the 1-query
    // member by at least 3x *within this same run*.
    const SCALE_EVENTS: usize = 8_000;
    const SKELETONS: usize = 4;
    let mut group = c.benchmark_group("runtime_scaling_query_count");
    group.throughput(Throughput::Elements(SCALE_EVENTS as u64));
    for queries in [1usize, 16, 128, 1024] {
        let skeletons = SKELETONS.min(queries);
        let variants = queries / skeletons;
        let wl = near_duplicate_workload(skeletons, variants, SCALE_EVENTS, 4, 4, 42);
        let mut rt = Runtime::new(1);
        for (j, pcea) in wl.pceas.iter().enumerate() {
            rt.register(QuerySpec::new(
                format!("q{j}"),
                pcea.clone(),
                WindowPolicy::Count(WINDOW),
            ))
            .expect("register");
        }
        group.bench_with_input(BenchmarkId::new("queries", queries), &queries, |b, _| {
            b.iter(|| rt.push_batch(&wl.stream).len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_multi_query_shards,
    bench_keyed_hot_query,
    bench_batch_size_sweep,
    bench_query_count_scaling
);
criterion_main!(benches);

//! E1 — update time vs window size (Theorem 5.1).
//!
//! The per-tuple update cost of the streaming engine should grow at most
//! logarithmically in the window size `w`: the only `w`-dependent work is
//! the leftist-heap meld (Proposition 5.3).

use cer_bench::star_workload;
use cer_core::StreamingEvaluator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_update_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_update_time");
    group.sample_size(10);
    let events = 30_000usize;
    for exp in [8u32, 12, 16, 20] {
        let w = 1u64 << exp;
        let wl = star_workload(3, events, 4, 4, 11);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let mut engine = StreamingEvaluator::new(wl.pcea.clone(), w);
                for t in &wl.stream {
                    engine.push(t);
                }
                engine.stats().extends
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_time);
criterion_main!(benches);

//! A1/A2 — ablations of the engine's design choices (DESIGN.md §3).
//!
//! * **A1 — GC cadence**: the copying collector trades churn for peak
//!   memory; outputs never change (asserted in tests). Sweeping the
//!   interval shows the steady-state cost of compaction.
//! * **A2 — enumeration materialization**: counting outputs via the
//!   zero-allocation visitor vs cloning every valuation; the delta is
//!   the price of materialization, not of the enumeration walk.

use cer_bench::sigma0_workload;
use cer_core::StreamingEvaluator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_gc_cadence(c: &mut Criterion) {
    let events = 20_000usize;
    let w = 256u64;
    let wl = sigma0_workload(events, 4, 4, 77);
    let mut group = c.benchmark_group("a1_gc_cadence");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events as u64));
    for (name, every) in [
        ("every_w_over_4", w / 4),
        ("every_w", w),
        ("every_4w", 4 * w),
        ("never", u64::MAX),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &every, |b, &every| {
            b.iter(|| {
                let mut e = StreamingEvaluator::new(wl.pcea.clone(), w);
                e.set_gc_every(every);
                for t in &wl.stream {
                    e.push(t);
                }
                e.stats().arena_nodes
            });
        });
    }
    group.finish();
}

fn bench_enumeration_materialization(c: &mut Criterion) {
    let events = 10_000usize;
    let w = 128u64;
    let wl = sigma0_workload(events, 3, 3, 88);
    let mut group = c.benchmark_group("a2_enumeration_materialization");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events as u64));
    group.bench_function("count_only", |b| {
        b.iter(|| {
            let mut e = StreamingEvaluator::new(wl.pcea.clone(), w);
            wl.stream.iter().map(|t| e.push_count(t)).sum::<usize>()
        });
    });
    group.bench_function("collect_clones", |b| {
        b.iter(|| {
            let mut e = StreamingEvaluator::new(wl.pcea.clone(), w);
            wl.stream
                .iter()
                .map(|t| e.push_collect(t).len())
                .sum::<usize>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gc_cadence, bench_enumeration_materialization);
criterion_main!(benches);

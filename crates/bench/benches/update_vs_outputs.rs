//! E6 — update time vs accumulated outputs (Theorem 5.1).
//!
//! "The update time does not depend on the number of outputs seen so
//! far": pushing one more tuple into an engine that has already produced
//! millions of outputs costs the same as into a fresh one.

use cer_bench::sigma0_workload;
use cer_core::StreamingEvaluator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_update_vs_outputs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_update_vs_outputs");
    group.sample_size(20);
    for primed in [0usize, 10_000, 50_000] {
        let wl = sigma0_workload(primed + 2_000, 2, 2, 33);
        let mut engine = StreamingEvaluator::new(wl.pcea.clone(), 512);
        for t in &wl.stream[..primed] {
            engine.push(t);
        }
        let tail = &wl.stream[primed..];
        group.bench_with_input(BenchmarkId::from_parameter(primed), &primed, |b, _| {
            // Measure pushing the 2k-tuple tail into a clone of the
            // primed engine (update phase only).
            b.iter(|| {
                let mut e = engine.clone();
                for t in tail {
                    e.push(t);
                }
                e.stats().extends
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_vs_outputs);
criterion_main!(benches);

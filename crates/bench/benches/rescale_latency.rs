//! Live-resharding cost: how long `Runtime::rescale` takes, fence to
//! resume, versus the shard counts involved and the amount of live
//! window state that must move.
//!
//! Each iteration toggles a loaded runtime between two layouts, so
//! every measurement is one complete move: zero-width fence through
//! the striped sequencer, in-memory extract from every old worker,
//! merge + key-slice redistribution, install under the second block.
//! The call's wall time is also the upper bound on how long a producer
//! can be parked by the move (producers only wait on the sequencer
//! lock and the new queues, both released before `rescale` returns).
//!
//! Emits `BENCH_JSON` lines with `elems_per_sec` = events of
//! accumulated window state moved per second, so the bench gate's
//! within-run shape ratios (`shards/4` vs `shards/1`, `events/32000`
//! vs `events/2000`) watch the state-movement hot path the same way
//! the checkpoint benches watch the serializer.

use cer_bench::multi_query_workload;
use cer_core::runtime::{Partition, QuerySpec, Runtime};
use cer_core::window::WindowPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const QUERIES: usize = 4;

/// A runtime with accumulated window state: half the queries pinned,
/// half key-partitioned, so every shard hosts state and every move
/// exercises both placement rules.
fn loaded_runtime(wl: &cer_bench::MultiQueryWorkload, shards: usize, window: u64) -> Runtime {
    let mut rt = Runtime::new(shards);
    for (j, pcea) in wl.pceas.iter().enumerate() {
        let spec = QuerySpec::new(format!("q{j}"), pcea.clone(), WindowPolicy::Count(window));
        let spec = if j % 2 == 0 && pcea.supports_key_partition(0) {
            spec.with_partition(Partition::ByKey { pos: 0 })
        } else {
            spec
        };
        rt.register(spec).expect("register");
    }
    rt.push_batch(&wl.stream);
    rt
}

fn bench_rescale(c: &mut Criterion) {
    let mut group = c.benchmark_group("rescale_latency");

    // Shard-count family: toggle `shards <-> 2*shards` so every
    // iteration both grows and shrinks get sampled evenly.
    const EVENTS: usize = 10_000;
    let wl = multi_query_workload(QUERIES, EVENTS, 4, 4, 42);
    group.throughput(Throughput::Elements(EVENTS as u64));
    for shards in [1usize, 2, 4] {
        let mut rt = loaded_runtime(&wl, shards, 512);
        let mut at_double = false;
        group.bench_with_input(BenchmarkId::new("move/shards", shards), &shards, |b, _| {
            b.iter(|| {
                let to = if at_double { shards } else { shards * 2 };
                at_double = !at_double;
                rt.rescale(to).expect("rescale");
            });
        });
    }

    // State-size family: a fixed 2 <-> 4 toggle while the window —
    // and with it the live state every move must carry — widens. A
    // broader key domain keeps match enumeration (not what this bench
    // measures) from swamping the load phase.
    let wl = multi_query_workload(QUERIES, EVENTS, 16, 16, 42);
    for window in [256u64, 1_024, 4_096] {
        let mut rt = loaded_runtime(&wl, 2, window);
        let mut at_four = false;
        group.throughput(Throughput::Elements(window));
        group.bench_with_input(BenchmarkId::new("move/window", window), &window, |b, _| {
            b.iter(|| {
                let to = if at_four { 2 } else { 4 };
                at_four = !at_four;
                rt.rescale(to).expect("rescale");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rescale);
criterion_main!(benches);

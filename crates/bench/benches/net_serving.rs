//! End-to-end serving throughput over real TCP sockets: tuples/sec
//! from client ingest through the sharded runtime to pushed match
//! frames, versus concurrent-connection count (1/2/4 connections, each
//! with its own standing query and subscription on a loopback server).
//!
//! The measured loop covers the full serving path — frame encode,
//! socket write, server decode, schema validation, async ingest,
//! evaluation, subscription publish, frame push, client decode —
//! fenced by a drain and by counting the expected matches back on
//! every connection.
//!
//! Emits `BENCH_JSON` lines (see the criterion shim) with
//! `elems_per_sec` as the tuples/sec figure, like `runtime_scaling.rs`.

use cer_common::tuple::tup;
use cer_core::config::RuntimeConfig;
use cer_core::ingest::BackpressurePolicy;
use cer_core::window::WindowPolicy;
use cer_serve::{Client, Frontend, ServeConfig, Server};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

const EVENTS: usize = 9_000;
const BATCH: usize = 256;
const SHARDS: usize = 2;
// All connections share one global position stream, so a triple's
// T..R span includes every other connection's interleaved tuples —
// the window must exceed one full iteration's stream (EVENTS
// positions) or slow connections lose matches to expiry, while
// staying small enough that state from past iterations still expires.
const WINDOW: u64 = 32_768;

/// One connection's standing setup: its own relations (so queries stay
/// disjoint on the shared stream), its own query, its own subscription.
struct Conn {
    client: Client,
    t: cer_common::RelationId,
    s: cer_common::RelationId,
    r: cer_common::RelationId,
}

fn connect_all(server: &Server, connections: usize) -> Vec<Conn> {
    (0..connections)
        .map(|i| {
            let mut client = Client::connect(server.local_addr()).expect("connect");
            let t = client.declare_relation(&format!("T{i}"), 1).unwrap();
            let s = client.declare_relation(&format!("S{i}"), 2).unwrap();
            let r = client.declare_relation(&format!("R{i}"), 2).unwrap();
            let (frontend, text) = if i % 2 == 0 {
                (
                    Frontend::Hcq,
                    format!("Q(x, y) <- T{i}(x), S{i}(x, y), R{i}(x, y)"),
                )
            } else {
                (
                    Frontend::Pattern,
                    format!("T{i}(x) && S{i}(x, y) ; R{i}(x, y)"),
                )
            };
            let query = client
                .submit_query(
                    &format!("bench-{i}"),
                    frontend,
                    &text,
                    WindowPolicy::Count(WINDOW),
                    None,
                )
                .unwrap();
            client
                .subscribe(Some(query), 1 << 14, BackpressurePolicy::Block)
                .unwrap();
            Conn { client, t, s, r }
        })
        .collect()
}

/// Ingest `events` tuples as complete T/S/R triples and wait for the
/// `events / 3` matches to come back over the socket. `base` keeps
/// triple keys unique across bench iterations so stale partial runs
/// never join fresh tuples.
fn pump(conn: &mut Conn, events: usize, base: i64) -> usize {
    let expected = events / 3;
    let mut pending = Vec::with_capacity(BATCH);
    let mut pushed = 0usize;
    let mut triple = 0i64;
    while pushed < events {
        pending.clear();
        while pending.len() < BATCH && pushed < events {
            let x = base + triple;
            match pushed % 3 {
                0 => pending.push(tup(conn.t, [x])),
                1 => pending.push(tup(conn.s, [x, x + 1])),
                _ => {
                    pending.push(tup(conn.r, [x, x + 1]));
                    triple += 1;
                }
            }
            pushed += 1;
        }
        conn.client.ingest(pending.clone()).expect("ingest");
    }
    conn.client.drain().expect("drain");
    let mut matches = 0usize;
    while matches < expected {
        match conn
            .client
            .next_event(Duration::from_secs(5))
            .expect("events")
        {
            Some(_) => matches += 1,
            None => break,
        }
    }
    assert_eq!(matches, expected, "every triple completes one match");
    matches
}

fn bench_net_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_serving");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for connections in [1usize, 2, 4] {
        let server = Server::bind("127.0.0.1:0", ServeConfig::from(RuntimeConfig::new(SHARDS)))
            .expect("bind");
        let mut conns = connect_all(&server, connections);
        let per_conn = EVENTS / connections;
        // Disjoint, forever-unique key ranges per connection/iteration.
        let mut iteration = 0i64;
        group.bench_with_input(
            BenchmarkId::new("connections", connections),
            &connections,
            |b, _| {
                b.iter(|| {
                    iteration += 1;
                    let mut total = 0usize;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = conns
                            .iter_mut()
                            .enumerate()
                            .map(|(i, conn)| {
                                let base = iteration * 1_000_000_000 + (i as i64) * 1_000_000;
                                scope.spawn(move || pump(conn, per_conn, base))
                            })
                            .collect();
                        for h in handles {
                            total += h.join().expect("connection thread");
                        }
                    });
                    total
                });
            },
        );
        for conn in &mut conns {
            conn.client.unsubscribe().expect("unsubscribe");
        }
        drop(conns);
        server.stop();
    }
    group.finish();
}

criterion_group!(benches, bench_net_serving);
criterion_main!(benches);

//! Async ingestion throughput: tuples/sec versus producer-thread count
//! (1/2/4 cloned `IngestHandle`s feeding the same runtime), with a
//! `DropNewest` subscriber consuming match events out of band, plus the
//! synchronous `push_batch` loop as the status-quo reference.
//!
//! Emits `BENCH_JSON` lines (see the criterion shim) with
//! `elems_per_sec` as the tuples/sec figure, like `runtime_scaling.rs`.

use cer_bench::multi_query_workload;
use cer_core::config::RuntimeConfig;
use cer_core::ingest::{BackpressurePolicy, IngestConfig, SubscriptionFilter};
use cer_core::runtime::{QuerySpec, Runtime};
use cer_core::window::WindowPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const QUERIES: usize = 4;
const EVENTS: usize = 20_000;
const WINDOW: u64 = 64;
const SHARDS: usize = 4;
const PRODUCER_BATCH: usize = 256;

fn runtime_with_queries(wl: &cer_bench::MultiQueryWorkload) -> Runtime {
    let mut rt = Runtime::new(RuntimeConfig::new(SHARDS).with_ingest(IngestConfig {
        queue_capacity: 1 << 15,
        policy: BackpressurePolicy::Block,
        ..IngestConfig::default()
    }));
    for (j, pcea) in wl.pceas.iter().enumerate() {
        rt.register(QuerySpec::new(
            format!("q{j}"),
            pcea.clone(),
            WindowPolicy::Count(WINDOW),
        ))
        .expect("register");
    }
    rt
}

fn bench_ingest_producers(c: &mut Criterion) {
    let wl = multi_query_workload(QUERIES, EVENTS, 4, 4, 42);
    let mut group = c.benchmark_group("ingest_throughput");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for producers in [1usize, 2, 4] {
        let rt = runtime_with_queries(&wl);
        // Out-of-band consumer: bounded and lossy, so the bench
        // measures the ingest hot path, not event hoarding.
        let sub = rt.subscribe_with(
            SubscriptionFilter::All,
            1 << 14,
            BackpressurePolicy::DropNewest,
        );
        let chunk = EVENTS.div_ceil(producers);
        group.bench_with_input(
            BenchmarkId::new("producers", producers),
            &producers,
            |b, _| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for slice in wl.stream.chunks(chunk) {
                            let handle = rt.ingest_handle();
                            scope.spawn(move || {
                                for batch in slice.chunks(PRODUCER_BATCH) {
                                    handle.push_batch(batch).expect("runtime alive");
                                }
                            });
                        }
                    });
                    rt.drain();
                    sub.drain().len()
                });
            },
        );
    }
    // Status quo: the synchronous push_batch loop on an identical
    // runtime (single caller, collects every event inline).
    let mut rt = runtime_with_queries(&wl);
    group.bench_function("sync_push_batch", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for batch in wl.stream.chunks(PRODUCER_BATCH) {
                n += rt.push_batch(batch).len();
            }
            n
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ingest_producers);
criterion_main!(benches);

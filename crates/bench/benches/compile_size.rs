//! E3 — compilation time and size (Theorem 4.1).
//!
//! Compiling a self-join-free star HCQ is fast and quadratic in size;
//! the self-join construction grows exponentially with the per-relation
//! atom multiplicity.

use cer_bench::{self_join_query_text, star_query_text};
use cer_common::Schema;
use cer_cq::compile::compile_hcq;
use cer_cq::parser::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_compile_star");
    for k in [2usize, 8, 32] {
        let text = star_query_text(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &text, |b, text| {
            b.iter(|| {
                let mut schema = Schema::new();
                let q = parse_query(&mut schema, text).unwrap();
                compile_hcq(&schema, &q).unwrap().pcea.size()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e3_compile_self_join");
    for m in [2usize, 4, 6] {
        let text = self_join_query_text(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &text, |b, text| {
            b.iter(|| {
                let mut schema = Schema::new();
                let q = parse_query(&mut schema, text).unwrap();
                compile_hcq(&schema, &q).unwrap().pcea.size()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);

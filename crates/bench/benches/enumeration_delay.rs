//! E2 — enumeration delay vs result count (Theorem 5.2).
//!
//! Enumerating `m` outputs from one position should take time linear in
//! `m` (output-linear delay): the per-output cost stays flat as `m`
//! grows.

use cer_common::tuple::tup;
use cer_common::Schema;
use cer_core::StreamingEvaluator;
use cer_cq::compile::compile_hcq;
use cer_cq::parser::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn primed_engine(m: usize) -> StreamingEvaluator {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let r = schema.relation("R").unwrap();
    let s = schema.relation("S").unwrap();
    let t = schema.relation("T").unwrap();
    let mut engine = StreamingEvaluator::new(pcea, 1 << 20);
    for _ in 0..m {
        engine.push(&tup(s, [0i64, 7]));
    }
    engine.push(&tup(t, [0i64]));
    engine.push(&tup(r, [0i64, 7]));
    engine
}

fn bench_enumeration_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_enumeration_delay");
    for m in [1usize, 16, 256, 4096] {
        let engine = primed_engine(m);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut count = 0usize;
                engine.for_each_output(|_| count += 1);
                assert_eq!(count, m);
                count
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration_delay);
criterion_main!(benches);

//! E4 — PFA determinization (Proposition 3.2).
//!
//! The subset construction for the parallel-branch PFA family explores
//! ~`2^n` reachable subsets: time (and states) grow exponentially in the
//! number of branches, within the `2^|Q|` bound.

use cer_bench::parallel_branch_pfa;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_determinize(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_determinize");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let p = parallel_branch_pfa(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| p.to_dfa().num_states());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_determinize);
criterion_main!(benches);

//! Durability cost on the ingest hot path, and recovery speed.
//!
//! `wal_ingest/policy/*` measures tuples/sec of the synchronous
//! `push_batch` loop over one runtime per WAL fsync policy:
//!
//! * `0` — no WAL at all (the in-memory baseline everything is
//!   ratioed against),
//! * `1` — `FsyncPolicy::EveryN(256)` (the default group commit),
//! * `2` — `FsyncPolicy::IntervalMs(5)`,
//! * `3` — `FsyncPolicy::Always` (one fsync per appended record).
//!
//! The WAL writes one framed record per *batch*, so the tax is
//! dominated by the serialized payload write plus the policy's fsync
//! cadence. The committed baseline must keep `policy/1` within 0.75×
//! of `policy/0` — the acceptance bar for group-committed durability.
//!
//! `wal_recover/suffix/*` measures tuples/sec of `Runtime::recover`
//! over a data directory whose WAL holds that many tuples past the
//! last checkpoint (none here: pure replay), i.e. crash-restart time
//! as a function of the un-checkpointed suffix.
//!
//! Emits `BENCH_JSON` lines (see the criterion shim) with
//! `elems_per_sec` as the tuples/sec figure, like `ingest_throughput`.

use cer_bench::multi_query_workload;
use cer_core::config::RuntimeConfig;
use cer_core::durability::{DurabilityConfig, FsyncPolicy};
use cer_core::runtime::{QuerySpec, Runtime};
use cer_core::window::WindowPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::path::PathBuf;

const QUERIES: usize = 4;
const EVENTS: usize = 4_096;
const WINDOW: u64 = 64;
const SHARDS: usize = 4;
const BATCH: usize = 128;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cer-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn register_queries(rt: &mut Runtime, wl: &cer_bench::MultiQueryWorkload) {
    for (j, pcea) in wl.pceas.iter().enumerate() {
        rt.register(QuerySpec::new(
            format!("q{j}"),
            pcea.clone(),
            WindowPolicy::Count(WINDOW),
        ))
        .expect("register");
    }
}

fn bench_wal_ingest(c: &mut Criterion) {
    let wl = multi_query_workload(QUERIES, EVENTS, 4, 4, 42);
    let mut group = c.benchmark_group("wal_ingest");
    group.throughput(Throughput::Elements(EVENTS as u64));
    let policies: [(usize, Option<FsyncPolicy>); 4] = [
        (0, None),
        (1, Some(FsyncPolicy::EveryN(256))),
        (2, Some(FsyncPolicy::IntervalMs(5))),
        (3, Some(FsyncPolicy::Always)),
    ];
    for (idx, fsync) in policies {
        let dir = scratch(&format!("ingest-{idx}"));
        let mut rt = match fsync {
            None => Runtime::new(SHARDS),
            Some(fsync) => Runtime::open_durable(
                &dir,
                RuntimeConfig::new(SHARDS).with_durability(DurabilityConfig {
                    fsync,
                    ..DurabilityConfig::default()
                }),
            )
            .expect("open_durable"),
        };
        register_queries(&mut rt, &wl);
        group.bench_with_input(BenchmarkId::new("policy", idx), &idx, |b, _| {
            b.iter(|| {
                let mut n = 0usize;
                for batch in wl.stream.chunks(BATCH) {
                    n += rt.push_batch(batch).len();
                }
                n
            });
        });
        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_wal_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recover");
    for suffix in [2_000usize, 8_000, 32_000] {
        let wl = multi_query_workload(QUERIES, suffix, 4, 4, 42);
        let dir = scratch(&format!("recover-{suffix}"));
        let config = RuntimeConfig::new(SHARDS).with_durability(DurabilityConfig {
            fsync: FsyncPolicy::EveryN(256),
            segment_bytes: 1 << 20,
            ..DurabilityConfig::default()
        });
        let mut rt = Runtime::open_durable(&dir, config).expect("open_durable");
        register_queries(&mut rt, &wl);
        for batch in wl.stream.chunks(BATCH) {
            rt.push_batch(batch);
        }
        drop(rt); // the crash; the whole suffix lives in the WAL
        group.throughput(Throughput::Elements(suffix as u64));
        group.bench_with_input(BenchmarkId::new("suffix", suffix), &suffix, |b, _| {
            b.iter(|| {
                let rt = Runtime::recover(&dir, config).expect("recover");
                assert_eq!(rt.next_position(), suffix as u64);
                rt
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_wal_ingest, bench_wal_recover);
criterion_main!(benches);

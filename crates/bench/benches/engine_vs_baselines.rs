//! E5/E7 — the streaming engine vs the baselines.
//!
//! E5: on the Q0 workload, the engine's factorized maintenance beats
//! per-tuple re-evaluation (and explicit-run maintenance) increasingly as
//! match density grows. E7: on pure chain queries, the general PCEA
//! engine tracks the chain-specialized CCEA engine within a constant
//! factor.

use cer_baselines::{CceaStreamEvaluator, NaiveRunsEvaluator, RecomputeEvaluator};
use cer_bench::{chain_workload, sigma0_workload};
use cer_core::StreamingEvaluator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_e5(c: &mut Criterion) {
    let events = 3_000usize;
    let w = 128u64;
    for dom in [16i64, 4] {
        let wl = sigma0_workload(events, dom, dom, 21);
        let mut group = c.benchmark_group(format!("e5_selectivity_dom{dom}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_function("engine", |b| {
            b.iter(|| {
                let mut e = StreamingEvaluator::new(wl.pcea.clone(), w);
                wl.stream.iter().map(|t| e.push_count(t)).sum::<usize>()
            });
        });
        group.bench_function("recompute", |b| {
            b.iter(|| {
                let mut e = RecomputeEvaluator::new(wl.query.clone(), w);
                wl.stream.iter().map(|t| e.push_count(t)).sum::<usize>()
            });
        });
        group.bench_function("naive_runs", |b| {
            b.iter(|| {
                let mut e = NaiveRunsEvaluator::new(wl.pcea.clone(), w);
                wl.stream.iter().map(|t| e.push_count(t)).sum::<usize>()
            });
        });
        group.finish();
    }
}

fn bench_e7(c: &mut Criterion) {
    let events = 20_000usize;
    let w = 64u64;
    for k in [3usize, 5] {
        let wl = chain_workload(k, events, 8, 55);
        let mut group = c.benchmark_group(format!("e7_chain_k{k}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::new("pcea_engine", k), &wl, |b, wl| {
            b.iter(|| {
                let mut e = StreamingEvaluator::new(wl.pcea.clone(), w);
                wl.stream.iter().map(|t| e.push_count(t)).sum::<usize>()
            });
        });
        group.bench_with_input(BenchmarkId::new("ccea_specialist", k), &wl, |b, wl| {
            b.iter(|| {
                let mut e = CceaStreamEvaluator::new(wl.ccea.clone(), w);
                wl.stream.iter().map(|t| e.push_count(t)).sum::<usize>()
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_e5, bench_e7);
criterion_main!(benches);

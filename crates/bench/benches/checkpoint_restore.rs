//! Checkpoint subsystem cost: tuples/sec of state captured by
//! `Runtime::snapshot` (epoch fence + per-shard copy-on-fence
//! serialization), of `Runtime::restore` (decode + replica merge +
//! re-registration) and of the serialized-bytes round-trip, versus the
//! shard count the live state is spread over.
//!
//! Emits `BENCH_JSON` lines (see the criterion shim) with
//! `elems_per_sec` = events of accumulated window state per second, so
//! the bench gate's within-run shape ratios (`shards/4` vs `shards/1`)
//! watch for serialization hot-path regressions the same way the
//! ingest benches watch the sequencer.

use cer_bench::multi_query_workload;
use cer_core::runtime::{Partition, QuerySpec, Runtime};
use cer_core::window::WindowPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const QUERIES: usize = 4;
const EVENTS: usize = 10_000;
const WINDOW: u64 = 512;

/// A runtime with `EVENTS` tuples of accumulated window state: half the
/// queries pinned, half key-partitioned, so every shard hosts state.
fn loaded_runtime(wl: &cer_bench::MultiQueryWorkload, shards: usize) -> Runtime {
    let mut rt = Runtime::new(shards);
    for (j, pcea) in wl.pceas.iter().enumerate() {
        let spec = QuerySpec::new(format!("q{j}"), pcea.clone(), WindowPolicy::Count(WINDOW));
        let spec = if j % 2 == 0 && pcea.supports_key_partition(0) {
            spec.with_partition(Partition::ByKey { pos: 0 })
        } else {
            spec
        };
        rt.register(spec).expect("register");
    }
    rt.push_batch(&wl.stream);
    rt
}

fn bench_checkpoint(c: &mut Criterion) {
    let wl = multi_query_workload(QUERIES, EVENTS, 4, 4, 42);
    let mut group = c.benchmark_group("checkpoint");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for shards in [1usize, 2, 4] {
        let mut rt = loaded_runtime(&wl, shards);
        group.bench_with_input(
            BenchmarkId::new("snapshot/shards", shards),
            &shards,
            |b, _| {
                b.iter(|| rt.snapshot().expect("snapshot"));
            },
        );
        let snap = rt.snapshot().expect("snapshot");
        group.bench_with_input(
            BenchmarkId::new("restore/shards", shards),
            &shards,
            |b, _| {
                b.iter(|| Runtime::restore(&snap, shards).expect("restore"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bytes_roundtrip/shards", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    let bytes = snap.to_bytes().expect("to_bytes");
                    cer_core::checkpoint::Snapshot::from_bytes(&bytes).expect("from_bytes")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);

//! Regenerate the experiment tables of `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p cer-bench --bin tables -- [e1|…|e7|all]`
//!
//! Each experiment prints a markdown table; the claims being checked are
//! listed in `DESIGN.md`'s per-experiment index. Absolute numbers are
//! machine-dependent; the *shapes* (growth rates, who wins, crossovers)
//! are what reproduce the paper's theorems.

use cer_baselines::{CceaStreamEvaluator, NaiveRunsEvaluator, RecomputeEvaluator};
use cer_bench::{
    chain_workload, parallel_branch_pfa, self_join_query_text, sigma0_workload, star_query_text,
    star_workload,
};
use cer_common::{Schema, Tuple};
use cer_core::StreamingEvaluator;
use cer_cq::compile::compile_hcq;
use cer_cq::parser::parse_query;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "e1" {
        e1_update_time_vs_window();
    }
    if all || which == "e2" {
        e2_enumeration_delay();
    }
    if all || which == "e3" {
        e3_compiled_size();
    }
    if all || which == "e4" {
        e4_determinization();
    }
    if all || which == "e5" {
        e5_engine_vs_baselines();
    }
    if all || which == "e6" {
        e6_update_vs_outputs();
    }
    if all || which == "e7" {
        e7_pcea_vs_ccea_specialist();
    }
}

fn ns_per(iters: usize, elapsed: std::time::Duration) -> f64 {
    elapsed.as_nanos() as f64 / iters.max(1) as f64
}

/// E1 (Theorem 5.1): update time grows at most logarithmically in `w`.
fn e1_update_time_vs_window() {
    println!("\n## E1 — update time vs window size (Theorem 5.1)\n");
    println!("star HCQ k=3, 200k events, x/y domains 4×4, update phase only\n");
    println!("| w | ns/update | ratio vs w=256 |");
    println!("|---|-----------|----------------|");
    let w0 = {
        let wl = star_workload(3, 200_000, 4, 4, 11);
        time_updates(wl.pcea, &wl.stream, 256)
    };
    for exp in [8u32, 12, 16, 20] {
        let w = 1u64 << exp;
        let wl = star_workload(3, 200_000, 4, 4, 11);
        let ns = time_updates(wl.pcea, &wl.stream, w);
        println!("| 2^{exp} = {w} | {ns:.0} | {:.2}x |", ns / w0);
    }
}

fn time_updates(pcea: cer_automata::pcea::Pcea, stream: &[Tuple], w: u64) -> f64 {
    let mut engine = StreamingEvaluator::new(pcea, w);
    let start = Instant::now();
    for t in stream {
        engine.push(t);
    }
    ns_per(stream.len(), start.elapsed())
}

/// E2 (Theorem 5.2): enumeration delay is output-linear — time per
/// output stays flat as the number of outputs at a position grows.
fn e2_enumeration_delay() {
    println!("\n## E2 — enumeration delay vs result count (Theorem 5.2)\n");
    println!("Q0 over a crafted prefix with m matches completing at one position\n");
    println!("| matches m | total enum us | ns/output |");
    println!("|-----------|---------------|-----------|");
    for m in [1usize, 16, 256, 4096] {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
        let pcea = compile_hcq(&schema, &q).unwrap().pcea;
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        let mut engine = StreamingEvaluator::new(pcea, 1 << 20);
        // m identical S(0,7) tuples: each is a distinct identifier, so the
        // final R(0,7) completes m distinct t-homomorphisms at once.
        for _ in 0..m {
            engine.push(&cer_common::tuple::tup(s, [0i64, 7]));
        }
        engine.push(&cer_common::tuple::tup(t, [0i64]));
        engine.push(&cer_common::tuple::tup(r, [0i64, 7]));
        let mut count = 0usize;
        let start = Instant::now();
        engine.for_each_output(|_| count += 1);
        let el = start.elapsed();
        assert_eq!(count, m);
        println!(
            "| {m} | {:.1} | {:.0} |",
            el.as_nanos() as f64 / 1000.0,
            ns_per(count, el)
        );
    }
}

/// E3 (Theorem 4.1): compiled size — quadratic without self-joins,
/// exponential with them.
fn e3_compiled_size() {
    println!("\n## E3 — compiled automaton size (Theorem 4.1)\n");
    println!("| star k | atoms | states | transitions | size | size/atoms^2 |");
    println!("|--------|-------|--------|-------------|------|--------------|");
    for k in [1usize, 2, 4, 8, 16, 32] {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, &star_query_text(k)).unwrap();
        let c = compile_hcq(&schema, &q).unwrap();
        let m = q.num_atoms();
        println!(
            "| {k} | {m} | {} | {} | {} | {:.2} |",
            c.pcea.num_states(),
            c.pcea.transitions().len(),
            c.pcea.size(),
            c.pcea.size() as f64 / (m * m) as f64
        );
    }
    println!("\n| self-join m copies of T(x) | states | transitions | size |");
    println!("|----------------------------|--------|-------------|------|");
    for m in 1..=7usize {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, &self_join_query_text(m)).unwrap();
        let c = compile_hcq(&schema, &q).unwrap();
        println!(
            "| {m} | {} | {} | {} |",
            c.pcea.num_states(),
            c.pcea.transitions().len(),
            c.pcea.size()
        );
    }
}

/// E4 (Proposition 3.2): PFA determinization is bounded by `2^n`, and
/// the parallel-branch family realizes exponential growth.
fn e4_determinization() {
    println!("\n## E4 — PFA determinization (Proposition 3.2)\n");
    println!("| branches n | PFA states | DFA states | minimized | time ms |");
    println!("|------------|------------|------------|-----------|---------|");
    for n in [2usize, 4, 6, 8, 10, 12] {
        let p = parallel_branch_pfa(n);
        let start = Instant::now();
        let d = p.to_dfa();
        let el = start.elapsed();
        let minimized = if n <= 10 {
            d.minimize().num_states().to_string()
        } else {
            "-".to_string()
        };
        println!(
            "| {n} | {} | {} | {} | {:.2} |",
            p.num_states(),
            d.num_states(),
            minimized,
            el.as_secs_f64() * 1000.0
        );
        assert!(d.num_states() <= 1usize << p.num_states());
        assert!(d.num_states() >= 1usize << n, "family is exponential");
    }
}

/// E5 (positioning): streaming engine vs per-tuple re-evaluation vs
/// explicit runs, across match density.
fn e5_engine_vs_baselines() {
    println!("\n## E5 — engine vs baselines across selectivity\n");
    println!("Q0, 5k events, w=128; domains control match density\n");
    println!("| x,y domain | outputs | engine us/ev | recompute us/ev | naive-runs us/ev |");
    println!("|------------|---------|--------------|-----------------|------------------|");
    for dom in [32i64, 16, 8, 4, 2] {
        let n = 5_000usize;
        let w = 128u64;
        let wl = sigma0_workload(n, dom, dom, 21);

        let mut engine = StreamingEvaluator::new(wl.pcea.clone(), w);
        let start = Instant::now();
        let mut outputs = 0usize;
        for t in &wl.stream {
            outputs += engine.push_count(t);
        }
        let engine_ns = ns_per(n, start.elapsed());

        let mut rec = RecomputeEvaluator::new(wl.query.clone(), w);
        let start = Instant::now();
        let mut rec_outputs = 0usize;
        for t in &wl.stream {
            rec_outputs += rec.push_count(t);
        }
        let rec_ns = ns_per(n, start.elapsed());

        let mut naive = NaiveRunsEvaluator::new(wl.pcea.clone(), w);
        let start = Instant::now();
        let mut naive_outputs = 0usize;
        for t in &wl.stream {
            naive_outputs += naive.push_count(t);
        }
        let naive_ns = ns_per(n, start.elapsed());

        assert_eq!(outputs, rec_outputs, "engines must agree");
        assert_eq!(outputs, naive_outputs, "engines must agree");
        println!(
            "| {dom} | {outputs} | {:.2} | {:.2} | {:.2} |",
            engine_ns / 1000.0,
            rec_ns / 1000.0,
            naive_ns / 1000.0
        );
    }
}

/// E6 (Theorem 5.1): update time does not depend on the number of
/// outputs seen so far.
fn e6_update_vs_outputs() {
    println!("\n## E6 — update time vs accumulated outputs (Theorem 5.1)\n");
    println!("Q0, dense domains 2x2, w=512, update phase only, per-decile means\n");
    println!("| decile | cumulative outputs | ns/update |");
    println!("|--------|--------------------|-----------|");
    let n = 100_000usize;
    let wl = sigma0_workload(n, 2, 2, 33);
    let mut engine = StreamingEvaluator::new(wl.pcea.clone(), 512);
    let mut counter = StreamingEvaluator::new(wl.pcea, 512);
    let chunk = n / 10;
    let mut cumulative = 0usize;
    for d in 0..10 {
        let slice = &wl.stream[d * chunk..(d + 1) * chunk];
        let start = Instant::now();
        for t in slice {
            engine.push(t);
        }
        let ns = ns_per(chunk, start.elapsed());
        // Count outputs on a shadow engine, outside the timed section.
        for t in slice {
            cumulative += counter.push_count(t);
        }
        println!("| {} | {cumulative} | {ns:.0} |", d + 1);
    }
}

/// E7 (\[16\] comparison): the general PCEA engine vs the chain-specialized
/// CCEA engine on chain queries — same outputs, constant-factor gap.
fn e7_pcea_vs_ccea_specialist() {
    println!("\n## E7 — PCEA engine vs CCEA specialist on chains\n");
    println!("chain query k steps, 50k events, domain 8, w=64\n");
    println!("| k | outputs | PCEA engine us/ev | CCEA specialist us/ev | ratio |");
    println!("|---|---------|-------------------|-----------------------|-------|");
    for k in [2usize, 3, 4, 5] {
        let n = 50_000usize;
        let w = 64u64;
        let wl = chain_workload(k, n, 8, 55);

        let mut general = StreamingEvaluator::new(wl.pcea.clone(), w);
        let start = Instant::now();
        let mut outputs = 0usize;
        for t in &wl.stream {
            outputs += general.push_count(t);
        }
        let gen_ns = ns_per(n, start.elapsed());

        let mut specialist = CceaStreamEvaluator::new(wl.ccea.clone(), w);
        let start = Instant::now();
        let mut spec_outputs = 0usize;
        for t in &wl.stream {
            spec_outputs += specialist.push_count(t);
        }
        let spec_ns = ns_per(n, start.elapsed());

        assert_eq!(outputs, spec_outputs, "engines must agree");
        println!(
            "| {k} | {outputs} | {:.2} | {:.2} | {:.2}x |",
            gen_ns / 1000.0,
            spec_ns / 1000.0,
            gen_ns / spec_ns
        );
    }
}

//! The CI bench-regression gate.
//!
//! The criterion shim prints one machine-readable `BENCH_JSON {...}`
//! line per benchmark. This binary turns those lines into committed
//! baseline files at the repo root and fails CI when throughput
//! regresses:
//!
//! ```sh
//! # Refresh a committed baseline (run benches at full budget first):
//! cargo bench -p cer-bench --bench runtime_scaling | tee rs.txt
//! cargo run -p cer-bench --bin bench_gate -- record rs.txt BENCH_runtime_scaling.json
//!
//! # CI: compare a fresh run against the committed baseline.
//! cargo run -p cer-bench --bin bench_gate -- check rs.txt BENCH_runtime_scaling.json
//! ```
//!
//! `check` computes, for every benchmark present in both the fresh run
//! and the baseline, the ratio `current / baseline` of `elems_per_sec`
//! (tuples per second), and fails — exit code 1 — when the **median**
//! ratio drops below 0.75 (a >25% regression). The median across
//! benchmarks is robust to one noisy timing; the 25% slack absorbs
//! machine-to-machine variance. Setting `BENCH_ALLOW_REGRESSION=1`
//! downgrades a failure to a warning, for intentional trade-offs.
//!
//! The workspace builds offline (no serde), so the tiny flat-object
//! JSON format the shim emits is parsed by hand here.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One benchmark record: name → tuples/sec (only benches with a
/// throughput annotation participate in the gate).
type Records = BTreeMap<String, f64>;

/// Extract a string field (`"bench":"..."`) from a flat JSON object.
fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')? + start;
    Some(obj[start..end].to_string())
}

/// Extract a numeric field (`"elems_per_sec":123.4`) from a flat JSON
/// object.
fn json_num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse every `BENCH_JSON` line (raw bench output) or bare JSON object
/// line (a recorded baseline file) in `text`.
fn parse_records(text: &str) -> Records {
    let mut out = Records::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let obj = match line.strip_prefix("BENCH_JSON ") {
            Some(rest) => rest,
            None if line.starts_with('{') && line.contains("\"bench\"") => line,
            None => continue,
        };
        let (Some(name), Some(eps)) = (
            json_str_field(obj, "bench"),
            json_num_field(obj, "elems_per_sec"),
        ) else {
            continue;
        };
        out.insert(name, eps);
    }
    out
}

/// Serialize records as a stable, pretty JSON array.
fn render_baseline(records: &Records) -> String {
    let mut s = String::from("[\n");
    for (i, (name, eps)) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        s.push_str(&format!(
            "  {{\"bench\":\"{name}\",\"elems_per_sec\":{eps:.1}}}{comma}\n"
        ));
    }
    s.push_str("]\n");
    s
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate record <bench-output.txt> <baseline.json>\n\
         \x20      bench_gate check  <bench-output.txt> <baseline.json>\n\
         check fails (exit 1) when the median tuples/sec ratio vs the\n\
         baseline drops below 0.75; BENCH_ALLOW_REGRESSION=1 overrides."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, mode, output_path, baseline_path] = args.as_slice() else {
        return usage();
    };
    let output = match std::fs::read_to_string(output_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read {output_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = parse_records(&output);
    if current.is_empty() {
        eprintln!("bench_gate: no BENCH_JSON lines with elems_per_sec in {output_path}");
        return ExitCode::from(2);
    }
    match mode.as_str() {
        "record" => {
            if let Err(e) = std::fs::write(baseline_path, render_baseline(&current)) {
                eprintln!("bench_gate: cannot write {baseline_path}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "bench_gate: recorded {} benchmarks into {baseline_path}",
                current.len()
            );
            ExitCode::SUCCESS
        }
        "check" => {
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let baseline = parse_records(&baseline_text);
            let allow = std::env::var("BENCH_ALLOW_REGRESSION").as_deref() == Ok("1");
            let mut ratios: Vec<(f64, String)> = Vec::new();
            let mut missing = 0usize;
            for (name, &base_eps) in &baseline {
                let Some(&cur_eps) = current.get(name) else {
                    eprintln!("bench_gate: benchmark `{name}` missing from this run");
                    missing += 1;
                    continue;
                };
                if base_eps > 0.0 {
                    ratios.push((cur_eps / base_eps, name.clone()));
                }
            }
            if ratios.is_empty() {
                eprintln!("bench_gate: no overlapping benchmarks between run and baseline");
                return ExitCode::from(2);
            }
            ratios.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (ratio, name) in &ratios {
                println!("bench_gate: {name}: {:.2}x vs baseline", ratio);
            }
            let median = ratios[ratios.len() / 2].0;
            println!(
                "bench_gate: median throughput ratio {median:.2}x across {} benchmarks",
                ratios.len()
            );
            // A baseline entry with no counterpart in the run means the
            // gate's coverage shrank (renamed/removed bench) — fail so
            // the committed baseline gets refreshed in the same change.
            let failed = if missing > 0 {
                eprintln!(
                    "bench_gate: FAIL — {missing} baseline benchmark(s) missing from this \
                     run; re-record {baseline_path} alongside the bench change"
                );
                true
            } else if median < 0.75 {
                eprintln!(
                    "bench_gate: FAIL — median tuples/sec dropped more than 25% vs \
                     {baseline_path}; fix the regression, or refresh the baseline for an \
                     intentional trade-off (see README \"Performance\")"
                );
                true
            } else {
                false
            };
            if failed {
                if allow {
                    println!(
                        "bench_gate: failure allowed by BENCH_ALLOW_REGRESSION=1 \
                         — refresh the committed baseline if intentional"
                    );
                    return ExitCode::SUCCESS;
                }
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_raw_bench_output_and_baseline_files() {
        let raw = "noise\nBENCH_JSON {\"bench\":\"g/a\",\"mean_ns\":10.0,\"iters\":3,\"elems_per_sec\":100.0}\n\
                   BENCH_JSON {\"bench\":\"g/b\",\"mean_ns\":10.0,\"iters\":3}\n";
        let recs = parse_records(raw);
        assert_eq!(recs.len(), 1, "no-throughput benches are skipped");
        assert_eq!(recs["g/a"], 100.0);
        let rendered = render_baseline(&recs);
        let reparsed = parse_records(&rendered);
        assert_eq!(recs, reparsed, "record/parse round-trips");
    }

    #[test]
    fn scientific_notation_and_negatives_parse() {
        let raw = "BENCH_JSON {\"bench\":\"x\",\"elems_per_sec\":8.1e6}";
        assert_eq!(parse_records(raw)["x"], 8.1e6);
    }
}

//! The CI bench-regression gate.
//!
//! The criterion shim prints one machine-readable `BENCH_JSON {...}`
//! line per benchmark. This binary turns those lines into committed
//! baseline files at the repo root and fails CI when throughput
//! regresses:
//!
//! ```sh
//! # Refresh a committed baseline (run benches at full budget first):
//! cargo bench -p cer-bench --bench runtime_scaling | tee rs.txt
//! cargo run -p cer-bench --bin bench_gate -- record rs.txt BENCH_runtime_scaling.json
//!
//! # CI: compare a fresh run against the committed baseline.
//! cargo run -p cer-bench --bin bench_gate -- check rs.txt BENCH_runtime_scaling.json
//! ```
//!
//! `check` gates on **within-run relative ratios**, so its verdict is
//! machine-class independent: a parameter *family* is a set of
//! benchmark names differing only in a numeric tail
//! (`…/shards/1`, `…/shards/4`, `…/producers/2`, …), and each
//! non-base member's *relative throughput* is its `elems_per_sec`
//! divided by the family's base member (the smallest parameter —
//! `shards/1`, `producers/1`). Those shape ratios are computed for the
//! fresh run and for the committed baseline, and the gate fails — exit
//! code 1 — when the **median** of `current_shape / baseline_shape`
//! drops below 0.75: the scaling curve flattened by more than 25%
//! relative to what was recorded, wherever it runs. A slower machine
//! scales both sides of every ratio equally, so absolute speed cancels
//! out — which absolute tuples/sec (the previous gate) never did.
//!
//! Baselines still record **absolute** medians (`record` is
//! unchanged), so the committed files double as trend data; `check`
//! prints the absolute median ratio as information, without gating on
//! it. The shim's per-iteration `p95_ns`/`p99_ns` latency columns
//! (sampled into `cer-obs` histograms) ride along the same way:
//! recorded into the baselines and printed as a trend ratio on
//! `check`, never gated — per-iteration tail latency is far noisier
//! and more machine-class dependent than the within-run shape ratios.
//! A baseline benchmark missing from the fresh run still fails the
//! gate (coverage shrank — refresh the baseline in the same change),
//! and `BENCH_ALLOW_REGRESSION=1` still downgrades any failure to a
//! warning for intentional trade-offs.
//!
//! The workspace builds offline (no serde), so the tiny flat-object
//! JSON format the shim emits is parsed by hand here.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One benchmark's recorded numbers. Only `elems_per_sec` participates
/// in the gate; the latency percentiles are trend columns.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct BenchRec {
    /// Tuples/sec (present only for benches with a throughput
    /// annotation).
    eps: Option<f64>,
    /// Per-iteration 95th-percentile latency, nanoseconds.
    p95_ns: Option<f64>,
    /// Per-iteration 99th-percentile latency, nanoseconds.
    p99_ns: Option<f64>,
}

/// Benchmark name → recorded numbers.
type Records = BTreeMap<String, BenchRec>;

/// Extract a string field (`"bench":"..."`) from a flat JSON object.
fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')? + start;
    Some(obj[start..end].to_string())
}

/// Extract a numeric field (`"elems_per_sec":123.4`) from a flat JSON
/// object.
fn json_num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse every `BENCH_JSON` line (raw bench output) or bare JSON object
/// line (a recorded baseline file) in `text`.
fn parse_records(text: &str) -> Records {
    let mut out = Records::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let obj = match line.strip_prefix("BENCH_JSON ") {
            Some(rest) => rest,
            None if line.starts_with('{') && line.contains("\"bench\"") => line,
            None => continue,
        };
        let Some(name) = json_str_field(obj, "bench") else {
            continue;
        };
        let rec = BenchRec {
            eps: json_num_field(obj, "elems_per_sec"),
            p95_ns: json_num_field(obj, "p95_ns"),
            p99_ns: json_num_field(obj, "p99_ns"),
        };
        // Mean-only lines (no throughput, no percentiles) carry nothing
        // the gate or the trend columns can use.
        if rec.eps.is_none() && rec.p95_ns.is_none() && rec.p99_ns.is_none() {
            continue;
        }
        out.insert(name, rec);
    }
    out
}

/// Split a benchmark name into a parameter-family prefix and its
/// numeric tail: `"g/shards/4"` → `("g/shards", 4)`. Names without a
/// numeric final segment are not family members.
fn family_of(name: &str) -> Option<(&str, u64)> {
    let (prefix, tail) = name.rsplit_once('/')?;
    Some((prefix, tail.parse().ok()?))
}

/// Within-run *shape* ratios: for every parameter family with at least
/// two members, each non-base member's throughput relative to the
/// family's base (smallest-parameter) member. Keyed by member name.
fn shape_ratios(records: &Records) -> BTreeMap<String, f64> {
    // family prefix → (base param, base eps)
    let mut bases: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
    for (name, rec) in records {
        let Some(eps) = rec.eps else { continue };
        if let Some((prefix, param)) = family_of(name) {
            let slot = bases.entry(prefix).or_insert((param, eps));
            if param < slot.0 {
                *slot = (param, eps);
            }
        }
    }
    let mut out = BTreeMap::new();
    for (name, rec) in records {
        let Some(eps) = rec.eps else { continue };
        let Some((prefix, param)) = family_of(name) else {
            continue;
        };
        let &(base_param, base_eps) = &bases[prefix];
        if param == base_param || base_eps <= 0.0 {
            continue;
        }
        out.insert(name.clone(), eps / base_eps);
    }
    out
}

/// Families whose parameter is a *work multiplier* (query count), not a
/// resource (shards): scaling linearly in the parameter is the
/// status-quo cost, and the whole point of the shared evaluation path
/// is to beat it. For each family, the largest member's within-run
/// throughput must beat the linear extrapolation of the base member by
/// at least the given factor: `eps(p) ≥ factor · eps(base) · base/p`.
/// Gated on the **current run alone** (shape, machine-independent).
const SUBLINEAR_FAMILIES: &[(&str, f64)] = &[("runtime_scaling_query_count/queries", 3.0)];

/// Check the sublinear-scaling requirement against a run. Returns the
/// failure messages (empty = pass); families absent from the run are
/// skipped (baseline coverage is gated separately).
fn sublinear_failures(records: &Records) -> Vec<String> {
    let mut failures = Vec::new();
    for &(prefix, factor) in SUBLINEAR_FAMILIES {
        let members: Vec<(u64, f64)> = records
            .iter()
            .filter_map(|(name, rec)| {
                let (p, param) = family_of(name)?;
                (p == prefix).then_some((param, rec.eps?))
            })
            .collect();
        let (Some(&base), Some(&top)) = (
            members.iter().min_by_key(|(p, _)| *p),
            members.iter().max_by_key(|(p, _)| *p),
        ) else {
            continue;
        };
        if base.0 == top.0 || base.1 <= 0.0 {
            continue;
        }
        let linear = base.1 * base.0 as f64 / top.0 as f64;
        let achieved = top.1 / linear;
        println!(
            "bench_gate: {prefix}/{}: {:.2}x over linear extrapolation of {prefix}/{} \
             (need >= {factor:.1}x)",
            top.0, achieved, base.0
        );
        if achieved < factor {
            failures.push(format!(
                "{prefix}/{} runs only {achieved:.2}x faster than linear scaling \
                 from {prefix}/{} (required >= {factor:.1}x)",
                top.0, base.0
            ));
        }
    }
    failures
}

/// Serialize records as a stable, pretty JSON array (one flat object
/// per line — the same format `parse_records` reads back).
fn render_baseline(records: &Records) -> String {
    let mut s = String::from("[\n");
    for (i, (name, rec)) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let mut fields = format!("\"bench\":\"{name}\"");
        if let Some(eps) = rec.eps {
            fields.push_str(&format!(",\"elems_per_sec\":{eps:.1}"));
        }
        if let Some(p95) = rec.p95_ns {
            fields.push_str(&format!(",\"p95_ns\":{p95:.1}"));
        }
        if let Some(p99) = rec.p99_ns {
            fields.push_str(&format!(",\"p99_ns\":{p99:.1}"));
        }
        s.push_str(&format!("  {{{fields}}}{comma}\n"));
    }
    s.push_str("]\n");
    s
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate record <bench-output.txt> <baseline.json>\n\
         \x20      bench_gate check  <bench-output.txt> <baseline.json>\n\
         check fails (exit 1) when the median within-run scaling ratio\n\
         (e.g. shards/4 vs shards/1) drops below 0.75x of the same ratio\n\
         derived from the baseline, when a baseline benchmark is\n\
         missing from the run, or when a work-multiplier family (query\n\
         count) scales worse than its required sublinear factor;\n\
         BENCH_ALLOW_REGRESSION=1 overrides."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, mode, output_path, baseline_path] = args.as_slice() else {
        return usage();
    };
    let output = match std::fs::read_to_string(output_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_gate: cannot read {output_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = parse_records(&output);
    if current.is_empty() {
        eprintln!("bench_gate: no BENCH_JSON lines with elems_per_sec in {output_path}");
        return ExitCode::from(2);
    }
    match mode.as_str() {
        "record" => {
            if let Err(e) = std::fs::write(baseline_path, render_baseline(&current)) {
                eprintln!("bench_gate: cannot write {baseline_path}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "bench_gate: recorded {} benchmarks into {baseline_path}",
                current.len()
            );
            ExitCode::SUCCESS
        }
        "check" => {
            let baseline_text = match std::fs::read_to_string(baseline_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let baseline = parse_records(&baseline_text);
            let allow = std::env::var("BENCH_ALLOW_REGRESSION").as_deref() == Ok("1");
            // Coverage first: a baseline entry with no counterpart in
            // the run means the gate's coverage shrank (renamed or
            // removed bench) — fail so the committed baseline gets
            // refreshed in the same change.
            let mut missing = 0usize;
            let mut abs_ratios: Vec<f64> = Vec::new();
            let mut p99_ratios: Vec<f64> = Vec::new();
            for (name, base) in &baseline {
                let Some(cur) = current.get(name) else {
                    eprintln!("bench_gate: benchmark `{name}` missing from this run");
                    missing += 1;
                    continue;
                };
                if let (Some(base_eps), Some(cur_eps)) = (base.eps, cur.eps) {
                    if base_eps > 0.0 {
                        abs_ratios.push(cur_eps / base_eps);
                    }
                }
                // Latency trend columns (never gated): per-iteration
                // tail latency vs what the baseline recorded.
                if let (Some(b95), Some(b99), Some(c95), Some(c99)) =
                    (base.p95_ns, base.p99_ns, cur.p95_ns, cur.p99_ns)
                {
                    println!(
                        "bench_gate: info: {name}: p95 {c95:.0}ns / p99 {c99:.0}ns \
                         (baseline {b95:.0}ns / {b99:.0}ns)"
                    );
                    if b99 > 0.0 {
                        p99_ratios.push(c99 / b99);
                    }
                }
            }
            if abs_ratios.is_empty() {
                eprintln!("bench_gate: no overlapping benchmarks between run and baseline");
                return ExitCode::from(2);
            }
            // Trend information only (machine-class dependent, never
            // gated on): absolute throughput vs the recorded medians.
            abs_ratios.sort_by(f64::total_cmp);
            println!(
                "bench_gate: info: absolute median {:.2}x vs baseline across {} benchmarks \
                 (trend only, not gated)",
                abs_ratios[abs_ratios.len() / 2],
                abs_ratios.len()
            );
            if !p99_ratios.is_empty() {
                p99_ratios.sort_by(f64::total_cmp);
                println!(
                    "bench_gate: info: median p99 latency {:.2}x vs baseline across {} \
                     benchmarks (trend only, not gated)",
                    p99_ratios[p99_ratios.len() / 2],
                    p99_ratios.len()
                );
            }
            // The gate: within-run shape ratios (e.g. shards/4 relative
            // to shards/1) compared against the same ratios derived
            // from the baseline — absolute machine speed cancels out.
            let cur_shape = shape_ratios(&current);
            let base_shape = shape_ratios(&baseline);
            let mut ratios: Vec<(f64, String)> = Vec::new();
            for (name, &base_rel) in &base_shape {
                if let Some(&cur_rel) = cur_shape.get(name) {
                    if base_rel > 0.0 {
                        ratios.push((cur_rel / base_rel, name.clone()));
                    }
                }
            }
            // Work-multiplier families: the current run's own shape
            // must stay sublinear (see `SUBLINEAR_FAMILIES`).
            let sublinear = sublinear_failures(&current);
            for msg in &sublinear {
                eprintln!("bench_gate: FAIL — {msg}");
            }
            let failed = if missing > 0 {
                eprintln!(
                    "bench_gate: FAIL — {missing} baseline benchmark(s) missing from this \
                     run; re-record {baseline_path} alongside the bench change"
                );
                true
            } else if ratios.is_empty() {
                // No parameter families (e.g. a baseline of standalone
                // benches): nothing shape-based to gate, coverage
                // already checked above.
                println!("bench_gate: no parameter families to gate on; coverage check only");
                false
            } else {
                ratios.sort_by(|a, b| a.0.total_cmp(&b.0));
                for (ratio, name) in &ratios {
                    println!(
                        "bench_gate: {name}: shape {:.2}x vs baseline \
                         (run {:.2}x vs its family base, baseline {:.2}x)",
                        ratio, cur_shape[name], base_shape[name]
                    );
                }
                let median = ratios[ratios.len() / 2].0;
                println!(
                    "bench_gate: median shape ratio {median:.2}x across {} family members",
                    ratios.len()
                );
                if median < 0.75 {
                    eprintln!(
                        "bench_gate: FAIL — within-run scaling ratios dropped more than 25% \
                         vs {baseline_path}; fix the regression, or refresh the baseline for \
                         an intentional trade-off (see README \"Performance\")"
                    );
                    true
                } else {
                    false
                }
            };
            if failed || !sublinear.is_empty() {
                if allow {
                    println!(
                        "bench_gate: failure allowed by BENCH_ALLOW_REGRESSION=1 \
                         — refresh the committed baseline if intentional"
                    );
                    return ExitCode::SUCCESS;
                }
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Throughput-only record, as old-format baselines parse to.
    fn eps(v: f64) -> BenchRec {
        BenchRec {
            eps: Some(v),
            ..BenchRec::default()
        }
    }

    #[test]
    fn parses_raw_bench_output_and_baseline_files() {
        let raw = "noise\nBENCH_JSON {\"bench\":\"g/a\",\"mean_ns\":10.0,\"iters\":3,\"elems_per_sec\":100.0}\n\
                   BENCH_JSON {\"bench\":\"g/b\",\"mean_ns\":10.0,\"iters\":3}\n";
        let recs = parse_records(raw);
        assert_eq!(
            recs.len(),
            1,
            "lines with no gateable/trend fields are skipped"
        );
        assert_eq!(recs["g/a"].eps, Some(100.0));
        let rendered = render_baseline(&recs);
        let reparsed = parse_records(&rendered);
        assert_eq!(recs, reparsed, "record/parse round-trips");
    }

    #[test]
    fn latency_columns_parse_and_round_trip() {
        let raw = "BENCH_JSON {\"bench\":\"g/a\",\"mean_ns\":10.0,\"iters\":3,\"p95_ns\":140,\"p99_ns\":210,\"elems_per_sec\":100.0}\n\
                   BENCH_JSON {\"bench\":\"g/lat_only\",\"mean_ns\":10.0,\"iters\":3,\"p95_ns\":12,\"p99_ns\":16}\n";
        let recs = parse_records(raw);
        assert_eq!(recs["g/a"].p95_ns, Some(140.0));
        assert_eq!(recs["g/a"].p99_ns, Some(210.0));
        assert_eq!(recs["g/lat_only"].eps, None, "no throughput annotation");
        assert_eq!(recs["g/lat_only"].p99_ns, Some(16.0));
        let reparsed = parse_records(&render_baseline(&recs));
        assert_eq!(recs, reparsed, "latency columns survive record/parse");
        // Latency-only members contribute nothing to the gated shapes.
        assert!(shape_ratios(&recs).is_empty());
    }

    #[test]
    fn scientific_notation_and_negatives_parse() {
        let raw = "BENCH_JSON {\"bench\":\"x\",\"elems_per_sec\":8.1e6}";
        assert_eq!(parse_records(raw)["x"].eps, Some(8.1e6));
    }

    #[test]
    fn family_names_split_on_numeric_tails_only() {
        assert_eq!(family_of("g/shards/4"), Some(("g/shards", 4)));
        assert_eq!(family_of("a/b/producers/16"), Some(("a/b/producers", 16)));
        assert_eq!(family_of("g/sync_push_batch"), None);
        assert_eq!(family_of("standalone"), None);
    }

    #[test]
    fn sublinear_gate_compares_against_linear_extrapolation() {
        let mut recs = Records::new();
        // Base: 1 query at 1000 tuples/sec. Linear scaling to 1000
        // queries would leave 1.0 tuples/sec; the gate demands >= 3x
        // that, i.e. >= 3.0.
        recs.insert("runtime_scaling_query_count/queries/1".into(), eps(1000.0));
        recs.insert("runtime_scaling_query_count/queries/1000".into(), eps(2.9));
        assert_eq!(sublinear_failures(&recs).len(), 1, "2.9x < 3x fails");
        recs.insert("runtime_scaling_query_count/queries/1000".into(), eps(3.1));
        assert!(sublinear_failures(&recs).is_empty(), "3.1x passes");
        // Intermediate members don't participate; only base vs largest.
        recs.insert("runtime_scaling_query_count/queries/10".into(), eps(0.001));
        assert!(sublinear_failures(&recs).is_empty());
        // A run without the family (other baselines) is skipped.
        let other: Records = [("ingest/producers/4".to_string(), eps(5.0))].into();
        assert!(sublinear_failures(&other).is_empty());
    }

    #[test]
    fn shape_ratios_are_relative_to_the_smallest_parameter() {
        let mut recs = Records::new();
        recs.insert("g/shards/1".into(), eps(100.0));
        recs.insert("g/shards/2".into(), eps(150.0));
        recs.insert("g/shards/8".into(), eps(400.0));
        recs.insert("g/other".into(), eps(999.0)); // not a family member
        recs.insert("h/batch/16".into(), eps(80.0)); // family of one: no ratio
        let shape = shape_ratios(&recs);
        assert_eq!(shape.len(), 2);
        assert_eq!(shape["g/shards/2"], 1.5);
        assert_eq!(shape["g/shards/8"], 4.0);
        // Machine-class independence: scaling every absolute number by
        // 10x (a faster machine) leaves every shape ratio unchanged.
        let slower: Records = recs
            .iter()
            .map(|(k, v)| (k.clone(), eps(v.eps.unwrap() / 10.0)))
            .collect();
        assert_eq!(shape_ratios(&slower), shape);
    }
}

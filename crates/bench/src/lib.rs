//! # cer-bench — benchmark harness
//!
//! Shared workload builders for the criterion benches and the `tables`
//! binary. Each experiment of `DESIGN.md`'s per-experiment index (E1–E7)
//! has a criterion bench (statistical timing) and a row-printer in
//! `src/bin/tables.rs` (the tables recorded in `EXPERIMENTS.md`).

use cer_automata::ccea::Ccea;
use cer_automata::pcea::{Pcea, PceaBuilder, StateId};
use cer_automata::pfa::Pfa;
use cer_automata::predicate::{CmpOp, EqPredicate, UnaryPredicate};
use cer_automata::valuation::{Label, LabelSet};
use cer_common::gen::{ChainGen, Sigma0Gen, StarGen};
use cer_common::{RelationId, Schema, Stream, Tuple, Value};
use cer_cq::compile::compile_hcq;
use cer_cq::parser::parse_query;
use cer_cq::query::ConjunctiveQuery;

/// The text of the star HCQ `Q(x, y1..yk) ← A0(x), A1(x,y1), …, Ak(x,yk)`.
pub fn star_query_text(k: usize) -> String {
    let body: Vec<String> = std::iter::once("A0(x)".to_string())
        .chain((1..=k).map(|i| format!("A{i}(x, y{i})")))
        .collect();
    let head: Vec<String> = std::iter::once("x".to_string())
        .chain((1..=k).map(|i| format!("y{i}")))
        .collect();
    format!("Q({}) <- {}", head.join(", "), body.join(", "))
}

/// The text of the self-join query `Q(x) ← T(x), …, T(x)` (m copies).
pub fn self_join_query_text(m: usize) -> String {
    format!("Q(x) <- {}", vec!["T(x)"; m].join(", "))
}

/// A compiled star query plus its stream generator and schema.
pub struct StarWorkload {
    /// The schema (relations `A0..Ak`).
    pub schema: Schema,
    /// The parsed query.
    pub query: ConjunctiveQuery,
    /// The compiled automaton.
    pub pcea: Pcea,
    /// Pre-generated stream.
    pub stream: Vec<Tuple>,
}

/// Build the star workload: query of `k` satellites, `n` tuples with the
/// given key domains (smaller = more matches).
pub fn star_workload(k: usize, n: usize, x_domain: i64, y_domain: i64, seed: u64) -> StarWorkload {
    let mut schema = Schema::new();
    let mut gen = StarGen::build(&mut schema, k, seed)
        .expect("fresh schema")
        .with_domains(x_domain, y_domain);
    let query = parse_query(&mut schema, &star_query_text(k)).expect("valid star query");
    let pcea = compile_hcq(&schema, &query)
        .expect("star queries are HCQ")
        .pcea;
    let stream: Vec<Tuple> = (0..n)
        .map(|_| gen.next_tuple().expect("infinite"))
        .collect();
    StarWorkload {
        schema,
        query,
        pcea,
        stream,
    }
}

/// The σ0 workload for `Q0(x,y) ← T(x), S(x,y), R(x,y)`.
pub struct Sigma0Workload {
    /// The schema (R, S, T).
    pub schema: Schema,
    /// The parsed query.
    pub query: ConjunctiveQuery,
    /// The compiled automaton.
    pub pcea: Pcea,
    /// Pre-generated stream.
    pub stream: Vec<Tuple>,
}

/// Build the σ0 workload with the given domains.
pub fn sigma0_workload(n: usize, x_domain: i64, y_domain: i64, seed: u64) -> Sigma0Workload {
    let mut schema = Schema::new();
    let query =
        parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").expect("valid query");
    let pcea = compile_hcq(&schema, &query).expect("Q0 is HCQ").pcea;
    let r = schema.relation("R").expect("R");
    let s = schema.relation("S").expect("S");
    let t = schema.relation("T").expect("T");
    let mut gen = Sigma0Gen::new(r, s, t, seed).with_domains(x_domain, y_domain);
    let stream: Vec<Tuple> = (0..n)
        .map(|_| gen.next_tuple().expect("infinite"))
        .collect();
    Sigma0Workload {
        schema,
        query,
        pcea,
        stream,
    }
}

/// A chain CCEA workload: `B0(a,b) ; B1(b,c) ; … ; B_{k-1}(·,·)` joined
/// end-to-start, plus a matching stream.
pub struct ChainWorkload {
    /// The schema (B0..B_{k-1}).
    pub schema: Schema,
    /// The chain automaton.
    pub ccea: Ccea,
    /// Its PCEA embedding.
    pub pcea: Pcea,
    /// Pre-generated stream.
    pub stream: Vec<Tuple>,
}

/// Build the chain workload with `k` steps and the given key domain.
pub fn chain_workload(k: usize, n: usize, domain: i64, seed: u64) -> ChainWorkload {
    assert!(k >= 2, "a chain needs at least two steps");
    let mut schema = Schema::new();
    let mut gen = ChainGen::build(&mut schema, k, seed)
        .expect("fresh schema")
        .with_domain(domain);
    let rels = gen.relations.clone();
    let mut ccea = Ccea::new(k, k);
    ccea.set_initial(
        StateId(0),
        UnaryPredicate::Relation(rels[0]),
        LabelSet::singleton(Label(0)),
    );
    for step in 1..k {
        ccea.add_transition(
            StateId(step as u32 - 1),
            UnaryPredicate::Relation(rels[step]),
            EqPredicate::on_positions(rels[step - 1], [1usize], rels[step], [0usize]),
            LabelSet::singleton(Label(step as u32)),
            StateId(step as u32),
        );
    }
    ccea.mark_final(StateId(k as u32 - 1));
    let pcea = ccea.to_pcea();
    let stream: Vec<Tuple> = (0..n)
        .map(|_| gen.next_tuple().expect("infinite"))
        .collect();
    ChainWorkload {
        schema,
        ccea,
        pcea,
        stream,
    }
}

/// A multi-query workload for the runtime benches: `m` independent
/// σ0-shaped queries `Qj(x,y) ← Tj(x), Sj(x,y), Rj(x,y)` over disjoint
/// relation families, plus one interleaved stream covering all of them.
pub struct MultiQueryWorkload {
    /// The shared schema (relations `Tj`, `Sj`, `Rj` for each query).
    pub schema: Schema,
    /// One compiled automaton per query.
    pub pceas: Vec<Pcea>,
    /// Pre-generated interleaved stream.
    pub stream: Vec<Tuple>,
}

/// Build the multi-query workload: `m` queries, `n` tuples round-robined
/// across the query families with the given key domains.
pub fn multi_query_workload(
    m: usize,
    n: usize,
    x_domain: i64,
    y_domain: i64,
    seed: u64,
) -> MultiQueryWorkload {
    use cer_common::gen::Sigma0Gen;
    assert!(m >= 1);
    let mut schema = Schema::new();
    let mut pceas = Vec::with_capacity(m);
    let mut gens = Vec::with_capacity(m);
    for j in 0..m {
        let text = format!("Q{j}(x, y) <- T{j}(x), S{j}(x, y), R{j}(x, y)");
        let query = parse_query(&mut schema, &text).expect("valid query");
        pceas.push(
            compile_hcq(&schema, &query)
                .expect("σ0-shaped queries are HCQ")
                .pcea,
        );
        let r = schema.relation(&format!("R{j}")).expect("R");
        let s = schema.relation(&format!("S{j}")).expect("S");
        let t = schema.relation(&format!("T{j}")).expect("T");
        gens.push(
            Sigma0Gen::new(r, s, t, seed.wrapping_add(j as u64)).with_domains(x_domain, y_domain),
        );
    }
    let stream: Vec<Tuple> = (0..n)
        .map(|i| gens[i % m].next_tuple().expect("infinite"))
        .collect();
    MultiQueryWorkload {
        schema,
        pceas,
        stream,
    }
}

/// A near-duplicate multi-query workload for the shared-evaluation
/// benches: `skeletons` disjoint σ0-shaped relation families
/// (`Tf`, `Sf`, `Rf`), each hosting `variants` queries that differ only
/// in the threshold constant of the S-branch unary predicate
/// (`S_f(x,y) ∧ y ≥ c`). Thresholds cycle through `0..y_domain`, so
/// with more variants than distinct thresholds most queries are *exact*
/// duplicates of an earlier one — the regime the runtime's shared
/// predicate cache and skeleton grouping target.
pub struct NearDuplicateWorkload {
    /// The schema: relations `Tf`, `Sf`, `Rf` per skeleton family.
    pub schema: Schema,
    /// One compiled automaton per query (`skeletons × variants`),
    /// family-major.
    pub pceas: Vec<Pcea>,
    /// Pre-generated stream, round-robined across the families.
    pub stream: Vec<Tuple>,
}

/// σ0-shaped variant automaton: `paper_p0`'s three-transition skeleton
/// over (`r`, `s`, `t`) with the S-branch initial predicate tightened
/// to `S(x,y) ∧ y ≥ threshold`.
fn sigma0_variant(r: RelationId, s: RelationId, t: RelationId, threshold: i64) -> Pcea {
    let dot = LabelSet::singleton(Label(0));
    let mut b = PceaBuilder::new(1);
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
    b.add_initial_transition(
        UnaryPredicate::Relation(s).and(UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Ge,
            value: Value::Int(threshold),
        }),
        dot,
        q1,
    );
    b.add_transition(
        vec![
            (q0, EqPredicate::on_positions(t, [0usize], r, [0usize])),
            (
                q1,
                EqPredicate::on_positions(s, [0usize, 1], r, [0usize, 1]),
            ),
        ],
        UnaryPredicate::Relation(r),
        dot,
        q2,
    );
    b.mark_final(q2);
    b.build()
}

/// Build the near-duplicate workload: `skeletons × variants` queries,
/// `n` tuples round-robined across the skeleton families with the
/// given key domains.
pub fn near_duplicate_workload(
    skeletons: usize,
    variants: usize,
    n: usize,
    x_domain: i64,
    y_domain: i64,
    seed: u64,
) -> NearDuplicateWorkload {
    assert!(skeletons >= 1 && variants >= 1 && y_domain >= 1);
    let mut schema = Schema::new();
    let mut pceas = Vec::with_capacity(skeletons * variants);
    let mut gens = Vec::with_capacity(skeletons);
    for f in 0..skeletons {
        let t = schema
            .add_relation(&format!("T{f}"), 1)
            .expect("fresh schema");
        let s = schema
            .add_relation(&format!("S{f}"), 2)
            .expect("fresh schema");
        let r = schema
            .add_relation(&format!("R{f}"), 2)
            .expect("fresh schema");
        for v in 0..variants {
            pceas.push(sigma0_variant(r, s, t, (v as i64) % y_domain));
        }
        gens.push(
            Sigma0Gen::new(r, s, t, seed.wrapping_add(f as u64)).with_domains(x_domain, y_domain),
        );
    }
    let stream: Vec<Tuple> = (0..n)
        .map(|i| gens[i % skeletons].next_tuple().expect("infinite"))
        .collect();
    NearDuplicateWorkload {
        schema,
        pceas,
        stream,
    }
}

/// The parallel-branch PFA family for experiment E4: `n` branches that
/// must each see their own symbol (in any order) before the joining
/// symbol `n` — the subset construction must track each branch
/// independently, giving ~`2^n` reachable subsets.
pub fn parallel_branch_pfa(n: usize) -> Pfa {
    // States: 2 per branch (waiting, done) + 1 joined.
    let mut p = Pfa::new(2 * n + 1);
    let joined = 2 * n;
    let join_sym = n as u32;
    for b in 0..n {
        let (wait, done) = (2 * b, 2 * b + 1);
        p.add_initial(wait);
        for a in 0..=n as u32 {
            p.add_transition(vec![wait], a, wait);
            p.add_transition(vec![done], a, done);
        }
        p.add_transition(vec![wait], b as u32, done);
    }
    let all_done: Vec<usize> = (0..n).map(|b| 2 * b + 1).collect();
    p.add_transition(all_done, join_sym, joined);
    p.add_final(joined);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_workload_builds_and_matches() {
        let w = star_workload(3, 200, 2, 2, 1);
        let mut engine = cer_core::StreamingEvaluator::new(w.pcea, 32);
        let total: usize = w.stream.iter().map(|t| engine.push_count(t)).sum();
        assert!(total > 0, "dense star workload must produce matches");
    }

    #[test]
    fn sigma0_workload_matches_q0() {
        let w = sigma0_workload(300, 3, 3, 2);
        let mut engine = cer_core::StreamingEvaluator::new(w.pcea, 32);
        let total: usize = w.stream.iter().map(|t| engine.push_count(t)).sum();
        assert!(total > 0);
    }

    #[test]
    fn chain_workload_agrees_between_engines() {
        let w = chain_workload(3, 150, 3, 3);
        let mut spec = cer_baselines::CceaStreamEvaluator::new(w.ccea, 16);
        let mut gen = cer_core::StreamingEvaluator::new(w.pcea, 16);
        for t in &w.stream {
            assert_eq!(spec.push_count(t), gen.push_count(t));
        }
    }

    #[test]
    fn near_duplicate_workload_shares_skeletons_and_dedups() {
        let w = near_duplicate_workload(2, 6, 400, 3, 3, 5);
        assert_eq!(w.pceas.len(), 12);
        // Every variant within a family (and across families) shares
        // the three-transition skeleton...
        for p in &w.pceas[1..] {
            assert!(w.pceas[0].skeleton_compatible(p));
        }
        // ...but families listen to disjoint relations.
        assert_ne!(w.pceas[0].relations(), w.pceas[6].relations());
        // Thresholds cycle through 0..y_domain: variant 3 of a family
        // is an exact duplicate of variant 0.
        assert_eq!(
            w.pceas[0].transitions()[1].unary.canonical_key(),
            w.pceas[3].transitions()[1].unary.canonical_key()
        );
        assert_ne!(
            w.pceas[0].transitions()[1].unary.canonical_key(),
            w.pceas[1].transitions()[1].unary.canonical_key()
        );
        // Threshold 0 keeps the full σ0 semantics: matches exist.
        let mut engine = cer_core::StreamingEvaluator::new(w.pceas[0].clone(), 64);
        let total: usize = w.stream.iter().map(|t| engine.push_count(t)).sum();
        assert!(total > 0);
    }

    #[test]
    fn parallel_branch_pfa_language() {
        let p = parallel_branch_pfa(3);
        // Needs 0, 1, 2 (any order) then 3.
        assert!(p.accepts(&[0, 1, 2, 3]));
        assert!(p.accepts(&[2, 0, 1, 3]));
        assert!(!p.accepts(&[0, 1, 3]));
        let d = p.to_dfa();
        assert!(d.num_states() >= 1 << 3, "subset growth is exponential");
    }
}

//! # cer-bench — benchmark harness
//!
//! Shared workload builders for the criterion benches and the `tables`
//! binary. Each experiment of `DESIGN.md`'s per-experiment index (E1–E7)
//! has a criterion bench (statistical timing) and a row-printer in
//! `src/bin/tables.rs` (the tables recorded in `EXPERIMENTS.md`).

use cer_automata::ccea::Ccea;
use cer_automata::pcea::{Pcea, StateId};
use cer_automata::pfa::Pfa;
use cer_automata::predicate::{EqPredicate, UnaryPredicate};
use cer_automata::valuation::{Label, LabelSet};
use cer_common::gen::{ChainGen, Sigma0Gen, StarGen};
use cer_common::{Schema, Stream, Tuple};
use cer_cq::compile::compile_hcq;
use cer_cq::parser::parse_query;
use cer_cq::query::ConjunctiveQuery;

/// The text of the star HCQ `Q(x, y1..yk) ← A0(x), A1(x,y1), …, Ak(x,yk)`.
pub fn star_query_text(k: usize) -> String {
    let body: Vec<String> = std::iter::once("A0(x)".to_string())
        .chain((1..=k).map(|i| format!("A{i}(x, y{i})")))
        .collect();
    let head: Vec<String> = std::iter::once("x".to_string())
        .chain((1..=k).map(|i| format!("y{i}")))
        .collect();
    format!("Q({}) <- {}", head.join(", "), body.join(", "))
}

/// The text of the self-join query `Q(x) ← T(x), …, T(x)` (m copies).
pub fn self_join_query_text(m: usize) -> String {
    format!("Q(x) <- {}", vec!["T(x)"; m].join(", "))
}

/// A compiled star query plus its stream generator and schema.
pub struct StarWorkload {
    /// The schema (relations `A0..Ak`).
    pub schema: Schema,
    /// The parsed query.
    pub query: ConjunctiveQuery,
    /// The compiled automaton.
    pub pcea: Pcea,
    /// Pre-generated stream.
    pub stream: Vec<Tuple>,
}

/// Build the star workload: query of `k` satellites, `n` tuples with the
/// given key domains (smaller = more matches).
pub fn star_workload(k: usize, n: usize, x_domain: i64, y_domain: i64, seed: u64) -> StarWorkload {
    let mut schema = Schema::new();
    let mut gen = StarGen::build(&mut schema, k, seed)
        .expect("fresh schema")
        .with_domains(x_domain, y_domain);
    let query = parse_query(&mut schema, &star_query_text(k)).expect("valid star query");
    let pcea = compile_hcq(&schema, &query)
        .expect("star queries are HCQ")
        .pcea;
    let stream: Vec<Tuple> = (0..n)
        .map(|_| gen.next_tuple().expect("infinite"))
        .collect();
    StarWorkload {
        schema,
        query,
        pcea,
        stream,
    }
}

/// The σ0 workload for `Q0(x,y) ← T(x), S(x,y), R(x,y)`.
pub struct Sigma0Workload {
    /// The schema (R, S, T).
    pub schema: Schema,
    /// The parsed query.
    pub query: ConjunctiveQuery,
    /// The compiled automaton.
    pub pcea: Pcea,
    /// Pre-generated stream.
    pub stream: Vec<Tuple>,
}

/// Build the σ0 workload with the given domains.
pub fn sigma0_workload(n: usize, x_domain: i64, y_domain: i64, seed: u64) -> Sigma0Workload {
    let mut schema = Schema::new();
    let query =
        parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").expect("valid query");
    let pcea = compile_hcq(&schema, &query).expect("Q0 is HCQ").pcea;
    let r = schema.relation("R").expect("R");
    let s = schema.relation("S").expect("S");
    let t = schema.relation("T").expect("T");
    let mut gen = Sigma0Gen::new(r, s, t, seed).with_domains(x_domain, y_domain);
    let stream: Vec<Tuple> = (0..n)
        .map(|_| gen.next_tuple().expect("infinite"))
        .collect();
    Sigma0Workload {
        schema,
        query,
        pcea,
        stream,
    }
}

/// A chain CCEA workload: `B0(a,b) ; B1(b,c) ; … ; B_{k-1}(·,·)` joined
/// end-to-start, plus a matching stream.
pub struct ChainWorkload {
    /// The schema (B0..B_{k-1}).
    pub schema: Schema,
    /// The chain automaton.
    pub ccea: Ccea,
    /// Its PCEA embedding.
    pub pcea: Pcea,
    /// Pre-generated stream.
    pub stream: Vec<Tuple>,
}

/// Build the chain workload with `k` steps and the given key domain.
pub fn chain_workload(k: usize, n: usize, domain: i64, seed: u64) -> ChainWorkload {
    assert!(k >= 2, "a chain needs at least two steps");
    let mut schema = Schema::new();
    let mut gen = ChainGen::build(&mut schema, k, seed)
        .expect("fresh schema")
        .with_domain(domain);
    let rels = gen.relations.clone();
    let mut ccea = Ccea::new(k, k);
    ccea.set_initial(
        StateId(0),
        UnaryPredicate::Relation(rels[0]),
        LabelSet::singleton(Label(0)),
    );
    for step in 1..k {
        ccea.add_transition(
            StateId(step as u32 - 1),
            UnaryPredicate::Relation(rels[step]),
            EqPredicate::on_positions(rels[step - 1], [1usize], rels[step], [0usize]),
            LabelSet::singleton(Label(step as u32)),
            StateId(step as u32),
        );
    }
    ccea.mark_final(StateId(k as u32 - 1));
    let pcea = ccea.to_pcea();
    let stream: Vec<Tuple> = (0..n)
        .map(|_| gen.next_tuple().expect("infinite"))
        .collect();
    ChainWorkload {
        schema,
        ccea,
        pcea,
        stream,
    }
}

/// A multi-query workload for the runtime benches: `m` independent
/// σ0-shaped queries `Qj(x,y) ← Tj(x), Sj(x,y), Rj(x,y)` over disjoint
/// relation families, plus one interleaved stream covering all of them.
pub struct MultiQueryWorkload {
    /// The shared schema (relations `Tj`, `Sj`, `Rj` for each query).
    pub schema: Schema,
    /// One compiled automaton per query.
    pub pceas: Vec<Pcea>,
    /// Pre-generated interleaved stream.
    pub stream: Vec<Tuple>,
}

/// Build the multi-query workload: `m` queries, `n` tuples round-robined
/// across the query families with the given key domains.
pub fn multi_query_workload(
    m: usize,
    n: usize,
    x_domain: i64,
    y_domain: i64,
    seed: u64,
) -> MultiQueryWorkload {
    use cer_common::gen::Sigma0Gen;
    assert!(m >= 1);
    let mut schema = Schema::new();
    let mut pceas = Vec::with_capacity(m);
    let mut gens = Vec::with_capacity(m);
    for j in 0..m {
        let text = format!("Q{j}(x, y) <- T{j}(x), S{j}(x, y), R{j}(x, y)");
        let query = parse_query(&mut schema, &text).expect("valid query");
        pceas.push(
            compile_hcq(&schema, &query)
                .expect("σ0-shaped queries are HCQ")
                .pcea,
        );
        let r = schema.relation(&format!("R{j}")).expect("R");
        let s = schema.relation(&format!("S{j}")).expect("S");
        let t = schema.relation(&format!("T{j}")).expect("T");
        gens.push(
            Sigma0Gen::new(r, s, t, seed.wrapping_add(j as u64)).with_domains(x_domain, y_domain),
        );
    }
    let stream: Vec<Tuple> = (0..n)
        .map(|i| gens[i % m].next_tuple().expect("infinite"))
        .collect();
    MultiQueryWorkload {
        schema,
        pceas,
        stream,
    }
}

/// The parallel-branch PFA family for experiment E4: `n` branches that
/// must each see their own symbol (in any order) before the joining
/// symbol `n` — the subset construction must track each branch
/// independently, giving ~`2^n` reachable subsets.
pub fn parallel_branch_pfa(n: usize) -> Pfa {
    // States: 2 per branch (waiting, done) + 1 joined.
    let mut p = Pfa::new(2 * n + 1);
    let joined = 2 * n;
    let join_sym = n as u32;
    for b in 0..n {
        let (wait, done) = (2 * b, 2 * b + 1);
        p.add_initial(wait);
        for a in 0..=n as u32 {
            p.add_transition(vec![wait], a, wait);
            p.add_transition(vec![done], a, done);
        }
        p.add_transition(vec![wait], b as u32, done);
    }
    let all_done: Vec<usize> = (0..n).map(|b| 2 * b + 1).collect();
    p.add_transition(all_done, join_sym, joined);
    p.add_final(joined);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_workload_builds_and_matches() {
        let w = star_workload(3, 200, 2, 2, 1);
        let mut engine = cer_core::StreamingEvaluator::new(w.pcea, 32);
        let total: usize = w.stream.iter().map(|t| engine.push_count(t)).sum();
        assert!(total > 0, "dense star workload must produce matches");
    }

    #[test]
    fn sigma0_workload_matches_q0() {
        let w = sigma0_workload(300, 3, 3, 2);
        let mut engine = cer_core::StreamingEvaluator::new(w.pcea, 32);
        let total: usize = w.stream.iter().map(|t| engine.push_count(t)).sum();
        assert!(total > 0);
    }

    #[test]
    fn chain_workload_agrees_between_engines() {
        let w = chain_workload(3, 150, 3, 3);
        let mut spec = cer_baselines::CceaStreamEvaluator::new(w.ccea, 16);
        let mut gen = cer_core::StreamingEvaluator::new(w.pcea, 16);
        for t in &w.stream {
            assert_eq!(spec.push_count(t), gen.push_count(t));
        }
    }

    #[test]
    fn parallel_branch_pfa_language() {
        let p = parallel_branch_pfa(3);
        // Needs 0, 1, 2 (any order) then 3.
        assert!(p.accepts(&[0, 1, 2, 3]));
        assert!(p.accepts(&[2, 0, 1, 3]));
        assert!(!p.accepts(&[0, 1, 3]));
        let d = p.to_dfa();
        assert!(d.num_states() >= 1 << 3, "subset growth is exponential");
    }
}

//! # cer-lang — a pattern language for PCEA
//!
//! The paper's future-work list opens with "defining a query language
//! that characterizes the expressive power of PCEA will be interesting".
//! This crate is a concrete proposal built from the model's native
//! operations:
//!
//! ```text
//! T(x) && S(x, y) ; R(x, y)           Figure 1's P0, as text
//! ALERT(x) ; BUY(x, _)+ [1 > 100]     an alert, then pricey buys
//! (A(x) | B(x)) ; C(x)                branch, then join
//! ```
//!
//! Operators: `;` soft sequencing (left completes before right
//! completes), `&&` conjunction (any interleaving — parallelization),
//! `|` disjunction, postfix `+` iteration of an atom
//! (skip-till-any-match, correlated on named variables), `_` wildcards,
//! constants and `[pos op const]` value filters.
//!
//! Compilation ([`compile_pattern`]) produces an *unambiguous* PCEA with
//! one output label per atom occurrence; the *anchoring discipline*
//! (joins flow through completing tuples) is checked and violations are
//! rejected, mirroring Theorem 4.2's hierarchy boundary at the language
//! level.

pub mod ast;
pub mod compile;
pub mod parser;

pub use ast::{Filter, PTerm, PVar, Pattern, PatternAtom, PatternExpr};
pub use compile::{compile_pattern, pattern_to_pcea, CompiledPattern};
pub use parser::{parse_pattern, LangError};

//! Text syntax for the pattern language.
//!
//! ```text
//! T(x) && S(x, y) ; R(x, y)          the paper's P0
//! ALERT(x) ; BUY(x, _)+ [1 > 100]    an alert followed by pricey buys
//! A(x) | B(x) ; C(x)                 (A | B) before C  — '|' binds loosest
//! ```
//!
//! Precedence (loosest → tightest): `|`, `;`, `&&`, postfix `+`.
//! Relations are registered in (or validated against) the schema, with
//! arity inferred from first use; lower-case identifiers are variables,
//! `_` is a wildcard, integers and quoted strings are constants.

use crate::ast::{Filter, PTerm, PVar, Pattern, PatternAtom, PatternExpr};
use cer_automata::predicate::CmpOp;
use cer_common::{Schema, Value};
use std::fmt;

/// Pattern parse/compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Syntax error with byte offset context.
    Parse {
        /// Description of the problem.
        message: String,
    },
    /// An atom disagrees with the schema arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Given argument count.
        got: usize,
    },
    /// Iteration body must be a single atom.
    IterationBody,
    /// A correlation cannot be checked by equality on last tuples: the
    /// variable does not appear in the completing atoms it must flow
    /// through (the language-level analogue of non-hierarchy).
    UnanchoredCorrelation {
        /// The offending variable's name.
        variable: String,
    },
    /// Two completions of one anchor disagree on where a join variable
    /// sits in tuples of the same relation.
    AmbiguousAnchor {
        /// The relation with conflicting layouts.
        relation: String,
    },
    /// More than 64 atoms (labels are a 64-bit set).
    TooManyAtoms {
        /// Atom count.
        got: usize,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse { message } => write!(f, "parse error: {message}"),
            LangError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(f, "{relation} has arity {expected}, got {got} arguments"),
            LangError::IterationBody => {
                write!(f, "'+' applies to single atoms only")
            }
            LangError::UnanchoredCorrelation { variable } => write!(
                f,
                "variable {variable} correlates events whose completing atoms \
                 do not carry it (unanchored correlation)"
            ),
            LangError::AmbiguousAnchor { relation } => write!(
                f,
                "anchor mixes {relation}-completions with conflicting variable layouts"
            ),
            LangError::TooManyAtoms { got } => {
                write!(f, "pattern has {got} atoms; at most 64 supported")
            }
        }
    }
}

impl std::error::Error for LangError {}

/// Parse a pattern, registering relations in `schema`.
///
/// ```
/// use cer_common::Schema;
/// use cer_lang::parse_pattern;
///
/// let mut schema = Schema::new();
/// let p = parse_pattern(&mut schema, "T(x) && S(x, y) ; R(x, y)").unwrap();
/// assert_eq!(p.pattern.atoms().len(), 3);
/// ```
pub fn parse_pattern(schema: &mut Schema, text: &str) -> Result<PatternExpr, LangError> {
    let mut p = Parser {
        text,
        pos: 0,
        vars: Vec::new(),
        atom_names: Vec::new(),
    };
    let pattern = p.disj(schema)?;
    p.skip_ws();
    if p.pos != text.len() {
        return Err(p.error("trailing input"));
    }
    Ok(PatternExpr {
        pattern,
        var_names: p.vars,
        atom_names: p.atom_names,
    })
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
    vars: Vec<String>,
    atom_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            message: format!("{} (at byte {})", message.into(), self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self.text[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn peek(&mut self, token: &str) -> bool {
        self.skip_ws();
        self.text[self.pos..].starts_with(token)
    }

    fn ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        if rest
            .chars()
            .next()
            .is_none_or(|c| c.is_ascii_digit() || !(c == '_' || c.is_alphanumeric()))
        {
            return None;
        }
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if c == '_' || c.is_alphanumeric() {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        let s = &rest[..end];
        self.pos += end;
        Some(s)
    }

    fn integer(&mut self) -> Option<i64> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let neg = rest.starts_with('-');
        let start = usize::from(neg);
        let len = rest[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .count();
        if len == 0 {
            return None;
        }
        let end = start + len;
        let v: i64 = rest[..end].parse().ok()?;
        self.pos += end;
        Some(v)
    }

    fn constant(&mut self) -> Result<Option<Value>, LangError> {
        self.skip_ws();
        if self.text[self.pos..].starts_with('"') {
            let start = self.pos + 1;
            return match self.text[start..].find('"') {
                Some(end) => {
                    let s = self.text[start..start + end].to_string();
                    self.pos = start + end + 1;
                    Ok(Some(Value::from(s)))
                }
                None => Err(self.error("unterminated string")),
            };
        }
        Ok(self.integer().map(Value::Int))
    }

    fn intern(&mut self, name: &str) -> PVar {
        if let Some(i) = self.vars.iter().position(|n| n == name) {
            return PVar(i as u32);
        }
        self.vars.push(name.to_string());
        PVar(self.vars.len() as u32 - 1)
    }

    fn disj(&mut self, schema: &mut Schema) -> Result<Pattern, LangError> {
        let mut parts = vec![self.seq(schema)?];
        while self.peek("|") && !self.peek("||") {
            self.eat("|");
            parts.push(self.seq(schema)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Pattern::Disj(parts)
        })
    }

    fn seq(&mut self, schema: &mut Schema) -> Result<Pattern, LangError> {
        let mut left = self.conj(schema)?;
        while self.eat(";") {
            let right = self.conj(schema)?;
            left = Pattern::Seq(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conj(&mut self, schema: &mut Schema) -> Result<Pattern, LangError> {
        let mut parts = vec![self.postfix(schema)?];
        while self.eat("&&") {
            parts.push(self.postfix(schema)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Pattern::Conj(parts)
        })
    }

    fn postfix(&mut self, schema: &mut Schema) -> Result<Pattern, LangError> {
        let p = self.prim(schema)?;
        if self.eat("+") {
            let Pattern::Atom(mut atom) = p else {
                return Err(LangError::IterationBody);
            };
            // Filters may trail the '+': `BUY(x, _)+ [1 > 100]`.
            self.filters_into(&mut atom)?;
            return Ok(Pattern::Iter(Box::new(Pattern::Atom(atom))));
        }
        Ok(p)
    }

    /// Parse trailing `[pos op const]` filters into an atom.
    fn filters_into(&mut self, atom: &mut PatternAtom) -> Result<(), LangError> {
        while self.eat("[") {
            let pos = self
                .integer()
                .ok_or_else(|| self.error("expected a position index"))?
                as usize;
            let op = self.cmp_op()?;
            let value = self
                .constant()?
                .ok_or_else(|| self.error("expected a constant"))?;
            if !self.eat("]") {
                return Err(self.error("expected ']'"));
            }
            atom.filters.push(Filter { pos, op, value });
        }
        Ok(())
    }

    fn prim(&mut self, schema: &mut Schema) -> Result<Pattern, LangError> {
        if self.eat("(") {
            let p = self.disj(schema)?;
            if !self.eat(")") {
                return Err(self.error("expected ')'"));
            }
            // Postfix '+' also applies to parenthesized atoms.
            if self.eat("+") {
                return if matches!(p, Pattern::Atom(_)) {
                    Ok(Pattern::Iter(Box::new(p)))
                } else {
                    Err(LangError::IterationBody)
                };
            }
            return Ok(p);
        }
        self.atom(schema).map(Pattern::Atom)
    }

    fn atom(&mut self, schema: &mut Schema) -> Result<PatternAtom, LangError> {
        let start = self.pos;
        let name = self
            .ident()
            .ok_or_else(|| self.error("expected a relation name"))?
            .to_string();
        if !self.eat("(") {
            return Err(self.error("expected '('"));
        }
        let mut args: Vec<PTerm> = Vec::new();
        if !self.eat(")") {
            loop {
                let term = if let Some(c) = self.constant()? {
                    PTerm::Const(c)
                } else {
                    match self.ident() {
                        Some("_") => PTerm::Wildcard,
                        Some(v) => PTerm::Var(self.intern(v)),
                        None => return Err(self.error("expected a term")),
                    }
                };
                args.push(term);
                if self.eat(")") {
                    break;
                }
                if !self.eat(",") {
                    return Err(self.error("expected ',' or ')'"));
                }
            }
        }
        let relation = schema.add_relation(&name, args.len()).map_err(|_| {
            let expected = schema
                .relation(&name)
                .map(|r| schema.arity(r))
                .unwrap_or(args.len());
            LangError::ArityMismatch {
                relation: name.clone(),
                expected,
                got: args.len(),
            }
        })?;
        let mut atom = PatternAtom {
            relation,
            args: args.into(),
            filters: Vec::new(),
        };
        // Filters: zero or more '[pos op const]'.
        self.filters_into(&mut atom)?;
        self.atom_names
            .push(self.text[start..self.pos].trim().to_string());
        Ok(atom)
    }

    fn cmp_op(&mut self) -> Result<CmpOp, LangError> {
        for (tok, op) in [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Ok(op);
            }
        }
        Err(self.error("expected a comparison operator"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_p0_pattern() {
        let mut schema = Schema::new();
        let p = parse_pattern(&mut schema, "T(x) && S(x, y) ; R(x, y)").unwrap();
        // ';' binds looser than '&&': Seq(Conj(T, S), R).
        match &p.pattern {
            Pattern::Seq(l, r) => {
                assert!(matches!(**l, Pattern::Conj(_)));
                assert!(matches!(**r, Pattern::Atom(_)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        assert_eq!(p.atom_names, vec!["T(x)", "S(x, y)", "R(x, y)"]);
    }

    #[test]
    fn precedence_disj_loosest() {
        let mut schema = Schema::new();
        let p = parse_pattern(&mut schema, "A(x) | B(x) ; C(x)").unwrap();
        match &p.pattern {
            Pattern::Disj(parts) => {
                assert!(matches!(parts[0], Pattern::Atom(_)));
                assert!(matches!(parts[1], Pattern::Seq(_, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parens_override() {
        let mut schema = Schema::new();
        let p = parse_pattern(&mut schema, "(A(x) | B(x)) ; C(x)").unwrap();
        assert!(matches!(p.pattern, Pattern::Seq(_, _)));
    }

    #[test]
    fn iteration_wildcards_filters() {
        let mut schema = Schema::new();
        let p = parse_pattern(&mut schema, "BUY(x, _)+ [1 > 100]").unwrap();
        match &p.pattern {
            Pattern::Iter(body) => match &**body {
                Pattern::Atom(a) => {
                    assert!(matches!(a.args[1], PTerm::Wildcard));
                    assert_eq!(a.filters.len(), 1);
                    assert_eq!(a.filters[0].pos, 1);
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn iteration_of_composites_rejected() {
        let mut schema = Schema::new();
        assert_eq!(
            parse_pattern(&mut schema, "(A(x) ; B(x))+").unwrap_err(),
            LangError::IterationBody
        );
    }

    #[test]
    fn constants_and_strings() {
        let mut schema = Schema::new();
        let p = parse_pattern(&mut schema, r#"S(2, y) ; W("AAPL")"#).unwrap();
        let atoms = p.pattern.atoms();
        assert!(matches!(atoms[0].args[0], PTerm::Const(Value::Int(2))));
        assert_eq!(atoms[1].args[0], PTerm::Const(Value::from("AAPL")));
    }

    #[test]
    fn arity_conflicts_rejected() {
        let mut schema = Schema::new();
        schema.add_relation("T", 2).unwrap();
        assert!(matches!(
            parse_pattern(&mut schema, "T(x)").unwrap_err(),
            LangError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn garbage_rejected() {
        let mut schema = Schema::new();
        assert!(parse_pattern(&mut schema, "").is_err());
        assert!(parse_pattern(&mut schema, "A(x) ;").is_err());
        assert!(parse_pattern(&mut schema, "A(x) extra").is_err());
        assert!(parse_pattern(&mut schema, "A(x)[0 5]").is_err());
    }
}

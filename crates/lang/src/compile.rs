//! Pattern → PCEA compilation.
//!
//! Compilation is compositional over *fragments*. A fragment is a set of
//! **alternatives** (disjunction); each alternative is a set of
//! **anchors** (parallel conjuncts); an anchor is an automaton state
//! whose stored runs represent completed sub-matches, together with the
//! possible shapes of the run's *last tuple* (its completions) — the
//! only tuple equality predicates can reach.
//!
//! * **atom** — one state, one `∅`-source transition.
//! * **iteration** `a+` — one state with a chain transition back into
//!   itself, correlated on the atom's named variables; wildcards vary
//!   per instance.
//! * **conjunction** — alternatives multiply, anchor sets concatenate;
//!   nothing is merged until a later tuple gathers the anchors (the
//!   model's parallelization).
//! * **sequencing** `P ; Q` — every transition completing `Q` is cloned
//!   with extra sources: the anchors of `P` (soft sequencing — `P`
//!   completes before `Q` completes). Cloning into a fresh state keeps
//!   "`Q` after `P`" apart from bare `Q`.
//! * **top level** — conjunction alternatives are merged HCQ-style:
//!   whichever conjunct completes last gathers the others.
//!
//! Joins are always between a gathering tuple and the *last* tuples of
//! the gathered runs, so a variable can only correlate sub-patterns if
//! it appears in their completing atoms. The compiler rejects patterns
//! violating this *anchoring discipline*
//! ([`LangError::UnanchoredCorrelation`]) — the language-level analogue
//! of Theorem 4.2's hierarchy boundary.

use crate::ast::{PTerm, PVar, Pattern, PatternAtom, PatternExpr};
use crate::parser::LangError;
use cer_automata::pcea::{Pcea, PceaBuilder, StateId};
use cer_automata::predicate::{
    AtomPattern, EqPredicate, ExtractorEntry, KeyExtractor, PatTerm, UnaryPredicate,
};
use cer_automata::valuation::{Label, LabelSet, MAX_LABELS};
use cer_common::hash::FxHashMap;
use cer_common::{RelationId, Schema};

/// A compiled pattern.
#[derive(Clone, Debug)]
pub struct CompiledPattern {
    /// The automaton; label `i` marks positions matched by the pattern's
    /// `i`-th atom (pre-order).
    pub pcea: Pcea,
    /// Atom spellings, label order.
    pub atom_names: Vec<String>,
    /// State names (post-pruning), index order.
    pub state_names: Vec<String>,
}

/// Compile a parsed pattern to an unambiguous PCEA.
///
/// ```
/// use cer_common::Schema;
/// use cer_lang::{compile_pattern, parse_pattern};
///
/// let mut schema = Schema::new();
/// let expr = parse_pattern(&mut schema, "T(x) && S(x, y) ; R(x, y)").unwrap();
/// let compiled = compile_pattern(&schema, &expr).unwrap();
/// assert_eq!(compiled.pcea.num_labels(), 3);
/// ```
pub fn compile_pattern(schema: &Schema, expr: &PatternExpr) -> Result<CompiledPattern, LangError> {
    let num_atoms = expr.pattern.atoms().len();
    if num_atoms > MAX_LABELS {
        return Err(LangError::TooManyAtoms { got: num_atoms });
    }
    let mut c = Compiler {
        schema,
        expr,
        num_vars: expr.var_names.len() as u32,
        next_atom: 0,
        num_states: 0,
        state_names: Vec::new(),
        transitions: Vec::new(),
    };
    let frag = c.compile(&expr.pattern)?;
    let finals = c.finalize(frag)?;
    Ok(c.assemble(num_atoms, finals, expr))
}

/// Convenience: parse and compile in one step.
pub fn pattern_to_pcea(schema: &mut Schema, text: &str) -> Result<CompiledPattern, LangError> {
    let expr = crate::parser::parse_pattern(schema, text)?;
    compile_pattern(schema, &expr)
}

/// The shape of a run's last tuple at an anchor state.
#[derive(Clone, Debug)]
struct Completion {
    relation: RelationId,
    /// Variable → first position in the completing atom (sorted by var).
    var_pos: Vec<(PVar, usize)>,
}

fn completion_of(atom: &PatternAtom) -> Completion {
    let mut var_pos: Vec<(PVar, usize)> = atom
        .variables()
        .into_iter()
        .map(|v| (v, atom.position_of(v).expect("variable occurs")))
        .collect();
    var_pos.sort();
    Completion {
        relation: atom.relation,
        var_pos,
    }
}

/// A state holding completed sub-matches.
#[derive(Clone, Debug)]
struct Anchor {
    state: StateId,
    completions: Vec<Completion>,
    /// Variables present in every completion (sorted): the joinable set.
    anchored: Vec<PVar>,
    /// All variables of the sub-pattern (sorted).
    vars: Vec<PVar>,
}

/// A compiled sub-pattern: alternatives (OR) of anchor sets (AND).
#[derive(Clone, Debug)]
struct Frag {
    alts: Vec<Vec<Anchor>>,
    vars: Vec<PVar>,
}

/// A transition under construction.
#[derive(Clone, Debug)]
struct TransSpec {
    sources: Vec<(StateId, EqPredicate)>,
    unary: UnaryPredicate,
    labels: LabelSet,
    target: StateId,
    /// Pattern-atom index the transition reads (for join cloning).
    atom_idx: usize,
    /// Variables absorbed by runs ending with this transition.
    scope_vars: Vec<PVar>,
}

struct Compiler<'a> {
    schema: &'a Schema,
    expr: &'a PatternExpr,
    num_vars: u32,
    next_atom: usize,
    num_states: usize,
    state_names: Vec<String>,
    transitions: Vec<TransSpec>,
}

fn sorted_union(a: &[PVar], b: &[PVar]) -> Vec<PVar> {
    let mut out = a.to_vec();
    out.extend_from_slice(b);
    out.sort();
    out.dedup();
    out
}

impl<'a> Compiler<'a> {
    fn new_state(&mut self, name: String) -> StateId {
        self.num_states += 1;
        self.state_names.push(name);
        StateId(self.num_states as u32 - 1)
    }

    /// `U` for a pattern atom: relation + repeated-variable/constant
    /// consistency + value filters. Wildcards get fresh pattern-variable
    /// indices so they constrain nothing.
    fn atom_unary(&self, atom: &PatternAtom) -> UnaryPredicate {
        let terms: Vec<PatTerm> = atom
            .args
            .iter()
            .enumerate()
            .map(|(k, t)| match t {
                PTerm::Var(v) => PatTerm::Var(v.0),
                PTerm::Wildcard => PatTerm::Var(self.num_vars + k as u32),
                PTerm::Const(c) => PatTerm::Const(c.clone()),
            })
            .collect();
        let mut u = UnaryPredicate::Atom(AtomPattern {
            relation: atom.relation,
            terms: terms.into(),
        });
        for f in &atom.filters {
            u = u.and(UnaryPredicate::Cmp {
                pos: f.pos,
                op: f.op,
                value: f.value.clone(),
            });
        }
        u
    }

    fn compile(&mut self, p: &Pattern) -> Result<Frag, LangError> {
        match p {
            Pattern::Atom(a) => self.compile_atom(a),
            Pattern::Iter(body) => match &**body {
                Pattern::Atom(a) => self.compile_iter(a),
                _ => Err(LangError::IterationBody),
            },
            Pattern::Conj(ps) => {
                let frags: Vec<Frag> = ps
                    .iter()
                    .map(|p| self.compile(p))
                    .collect::<Result<_, _>>()?;
                let mut alts: Vec<Vec<Anchor>> = vec![Vec::new()];
                let mut vars: Vec<PVar> = Vec::new();
                for f in frags {
                    vars = sorted_union(&vars, &f.vars);
                    let mut next = Vec::with_capacity(alts.len() * f.alts.len());
                    for base in &alts {
                        for pick in &f.alts {
                            let mut merged = base.clone();
                            merged.extend(pick.iter().cloned());
                            next.push(merged);
                        }
                    }
                    alts = next;
                }
                Ok(Frag { alts, vars })
            }
            Pattern::Disj(ps) => {
                let mut alts = Vec::new();
                let mut vars = Vec::new();
                for p in ps {
                    let f = self.compile(p)?;
                    vars = sorted_union(&vars, &f.vars);
                    alts.extend(f.alts);
                }
                Ok(Frag { alts, vars })
            }
            Pattern::Seq(p, q) => {
                let fp = self.compile(p)?;
                let fq = self.compile(q)?;
                let vars = sorted_union(&fp.vars, &fq.vars);
                let alts = self.gather(fq.alts, &fp.alts)?;
                Ok(Frag { alts, vars })
            }
        }
    }

    fn compile_atom(&mut self, a: &PatternAtom) -> Result<Frag, LangError> {
        let idx = self.next_atom;
        self.next_atom += 1;
        let state = self.new_state(self.expr.atom_names[idx].clone());
        let mut vars = a.variables();
        vars.sort();
        self.transitions.push(TransSpec {
            sources: Vec::new(),
            unary: self.atom_unary(a),
            labels: LabelSet::singleton(Label(idx as u32)),
            target: state,
            atom_idx: idx,
            scope_vars: vars.clone(),
        });
        Ok(Frag {
            alts: vec![vec![Anchor {
                state,
                completions: vec![completion_of(a)],
                anchored: vars.clone(),
                vars: vars.clone(),
            }]],
            vars,
        })
    }

    fn compile_iter(&mut self, a: &PatternAtom) -> Result<Frag, LangError> {
        let idx = self.next_atom;
        self.next_atom += 1;
        let state = self.new_state(format!("{}+", self.expr.atom_names[idx]));
        let mut vars = a.variables();
        vars.sort();
        // First instance.
        self.transitions.push(TransSpec {
            sources: Vec::new(),
            unary: self.atom_unary(a),
            labels: LabelSet::singleton(Label(idx as u32)),
            target: state,
            atom_idx: idx,
            scope_vars: vars.clone(),
        });
        // Subsequent instances: correlate consecutive completing tuples
        // on the named variables (wildcards vary per instance).
        let positions: Box<[usize]> = vars
            .iter()
            .map(|&v| a.position_of(v).expect("variable occurs"))
            .collect();
        let pred = EqPredicate::new(
            KeyExtractor::projection(a.relation, positions.clone()),
            KeyExtractor::projection(a.relation, positions),
        );
        self.transitions.push(TransSpec {
            sources: vec![(state, pred)],
            unary: self.atom_unary(a),
            labels: LabelSet::singleton(Label(idx as u32)),
            target: state,
            atom_idx: idx,
            scope_vars: vars.clone(),
        });
        Ok(Frag {
            alts: vec![vec![Anchor {
                state,
                completions: vec![completion_of(a)],
                anchored: vars.clone(),
                vars: vars.clone(),
            }]],
            vars,
        })
    }

    /// Clone the completing transitions of each `target_alts` alternative
    /// so they also gather one `context_alts` alternative (and, when the
    /// alternative is a conjunction, the sibling anchors — whichever
    /// conjunct completes last gathers the rest).
    fn gather(
        &mut self,
        target_alts: Vec<Vec<Anchor>>,
        context_alts: &[Vec<Anchor>],
    ) -> Result<Vec<Vec<Anchor>>, LangError> {
        let contexts: Vec<Vec<Anchor>> = if context_alts.is_empty() {
            vec![Vec::new()]
        } else {
            context_alts.to_vec()
        };
        let mut out: Vec<Vec<Anchor>> = Vec::new();
        for alt in &target_alts {
            for ctx in &contexts {
                if alt.len() == 1 && ctx.is_empty() {
                    out.push(alt.clone());
                    continue;
                }
                for (i, completer) in alt.iter().enumerate() {
                    let extras: Vec<&Anchor> = alt
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, a)| a)
                        .chain(ctx.iter())
                        .collect();
                    // Completing transitions of the completer, as they
                    // stand now (clones created below target fresh
                    // states, never re-enter this list).
                    let completing: Vec<usize> = (0..self.transitions.len())
                        .filter(|&k| self.transitions[k].target == completer.state)
                        .collect();
                    let fresh = self.new_state(format!(
                        "⟨{} last⟩",
                        self.state_names[completer.state.index()]
                    ));
                    let mut completions: Vec<Completion> = Vec::new();
                    let mut all_vars = completer.vars.clone();
                    for &k in &completing {
                        let spec = self.transitions[k].clone();
                        let mut augmented = self.attach(spec, &extras)?;
                        augmented.target = fresh;
                        let comp = completion_of(self.atoms()[augmented.atom_idx]);
                        if !completions
                            .iter()
                            .any(|c| c.relation == comp.relation && c.var_pos == comp.var_pos)
                        {
                            completions.push(comp);
                        }
                        self.transitions.push(augmented);
                    }
                    for x in &extras {
                        all_vars = sorted_union(&all_vars, &x.vars);
                    }
                    let anchored = anchored_of(&completions);
                    out.push(vec![Anchor {
                        state: fresh,
                        completions,
                        anchored,
                        vars: all_vars,
                    }]);
                }
            }
        }
        Ok(out)
    }

    /// Add `extras` as sources to a transition, with equality joins
    /// between the transition's atom and each extra's completing tuples.
    fn attach(&self, mut spec: TransSpec, extras: &[&Anchor]) -> Result<TransSpec, LangError> {
        let atom = self.atoms()[spec.atom_idx];
        let atom_vars = atom.variables();
        for x in extras {
            // J: variables joinable through last tuples.
            let j: Vec<PVar> = x
                .anchored
                .iter()
                .copied()
                .filter(|&v| atom.position_of(v).is_some())
                .collect();
            // Anchoring discipline 1: every variable shared between the
            // gathering atom and the anchor must be joinable.
            if let Some(v) = atom_vars
                .iter()
                .find(|v| x.vars.contains(v) && !j.contains(v))
            {
                return Err(LangError::UnanchoredCorrelation {
                    variable: self.expr.var_name(*v).to_string(),
                });
            }
            // Anchoring discipline 2: variables shared between the anchor
            // and anything already gathered must flow through this atom.
            if let Some(v) = x
                .vars
                .iter()
                .find(|v| spec.scope_vars.contains(v) && atom.position_of(**v).is_none())
            {
                return Err(LangError::UnanchoredCorrelation {
                    variable: self.expr.var_name(*v).to_string(),
                });
            }
            // Left key: per completing relation, J's positions there.
            let mut left = KeyExtractor::new();
            let mut layouts: FxHashMap<RelationId, Box<[usize]>> = FxHashMap::default();
            for c in &x.completions {
                let key: Box<[usize]> = j
                    .iter()
                    .map(|v| {
                        c.var_pos
                            .iter()
                            .find(|(u, _)| u == v)
                            .map(|(_, p)| *p)
                            .expect("anchored variable occurs in every completion")
                    })
                    .collect();
                if let Some(prev) = layouts.get(&c.relation) {
                    if prev != &key {
                        return Err(LangError::AmbiguousAnchor {
                            relation: self.schema.name(c.relation).to_string(),
                        });
                    }
                    continue;
                }
                layouts.insert(c.relation, key.clone());
                left.insert(
                    c.relation,
                    ExtractorEntry {
                        checks: Box::new([]),
                        key,
                    },
                );
            }
            let right: Box<[usize]> = j
                .iter()
                .map(|&v| atom.position_of(v).expect("v ∈ vars(atom)"))
                .collect();
            spec.sources.push((
                x.state,
                EqPredicate::new(left, KeyExtractor::projection(atom.relation, right)),
            ));
            spec.scope_vars = sorted_union(&spec.scope_vars, &x.vars);
        }
        Ok(spec)
    }

    fn atoms(&self) -> Vec<&'a PatternAtom> {
        self.expr.pattern.atoms()
    }

    /// Top-level merge: every alternative becomes a single final anchor.
    fn finalize(&mut self, frag: Frag) -> Result<Vec<StateId>, LangError> {
        let merged = self.gather(frag.alts, &[])?;
        Ok(merged
            .into_iter()
            .flat_map(|alt| alt.into_iter().map(|a| a.state))
            .collect())
    }

    /// Build the PCEA, pruning states and transitions that cannot
    /// contribute to any accepting run.
    fn assemble(
        self,
        num_atoms: usize,
        finals: Vec<StateId>,
        expr: &PatternExpr,
    ) -> CompiledPattern {
        // Usefulness: a transition is useful iff its target is; a state
        // is useful iff it is final or feeds a useful transition.
        let mut useful_state = vec![false; self.num_states];
        for &f in &finals {
            useful_state[f.index()] = true;
        }
        let mut changed = true;
        let mut useful_trans = vec![false; self.transitions.len()];
        while changed {
            changed = false;
            for (k, t) in self.transitions.iter().enumerate() {
                if useful_trans[k] || !useful_state[t.target.index()] {
                    continue;
                }
                useful_trans[k] = true;
                changed = true;
                for (s, _) in &t.sources {
                    if !useful_state[s.index()] {
                        useful_state[s.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        // Remap surviving states densely.
        let mut remap: Vec<Option<StateId>> = vec![None; self.num_states];
        let mut builder = PceaBuilder::new(num_atoms);
        let mut state_names = Vec::new();
        for q in 0..self.num_states {
            if useful_state[q] {
                remap[q] = Some(builder.add_state());
                state_names.push(self.state_names[q].clone());
            }
        }
        for (k, t) in self.transitions.iter().enumerate() {
            if !useful_trans[k] {
                continue;
            }
            builder.add_transition(
                t.sources
                    .iter()
                    .map(|(s, b)| (remap[s.index()].expect("useful source"), b.clone()))
                    .collect(),
                t.unary.clone(),
                t.labels,
                remap[t.target.index()].expect("useful target"),
            );
        }
        for f in finals {
            builder.mark_final(remap[f.index()].expect("finals are useful"));
        }
        CompiledPattern {
            pcea: builder.build(),
            atom_names: expr.atom_names.clone(),
            state_names,
        }
    }
}

fn anchored_of(completions: &[Completion]) -> Vec<PVar> {
    let Some(first) = completions.first() else {
        return Vec::new();
    };
    first
        .var_pos
        .iter()
        .map(|(v, _)| *v)
        .filter(|v| {
            completions[1..]
                .iter()
                .all(|c| c.var_pos.iter().any(|(u, _)| u == v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use cer_automata::pcea::paper_p0;
    use cer_automata::reference::ReferenceEval;
    use cer_common::tuple::tup;
    use cer_common::{Tuple, Value};

    fn compile(text: &str) -> (Schema, CompiledPattern) {
        let mut schema = Schema::new();
        let expr = parse_pattern(&mut schema, text).unwrap();
        let c = compile_pattern(&schema, &expr).unwrap();
        (schema, c)
    }

    fn outputs_per_position(
        pcea: &Pcea,
        stream: &[Tuple],
    ) -> Vec<Vec<cer_automata::valuation::Valuation>> {
        let eval = ReferenceEval::new(pcea, stream);
        (0..stream.len()).map(|n| eval.outputs_at(n)).collect()
    }

    #[test]
    fn p0_pattern_reproduces_paper_p0() {
        // The language expression for Figure 1's PCEA.
        let (schema, c) = compile("T(x) && S(x, y) ; R(x, y)");
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        // Label order differs from paper_p0's (both use {●}? ours has 3
        // labels) — compare output *positions* instead.
        let stream = cer_common::gen::sigma0_prefix(r, s, t);
        let ours = ReferenceEval::new(&c.pcea, &stream);
        let paper = paper_p0(r, s, t);
        let theirs = ReferenceEval::new(&paper, &stream);
        for n in 0..stream.len() {
            let mut a: Vec<Vec<u64>> = ours
                .outputs_at(n)
                .iter()
                .map(|v| v.entries().map(|(_, p)| p).collect())
                .collect();
            let mut b: Vec<Vec<u64>> = theirs
                .outputs_at(n)
                .iter()
                .map(|v| v.entries().map(|(_, p)| p).collect())
                .collect();
            for v in a.iter_mut().chain(b.iter_mut()) {
                v.sort_unstable();
            }
            a.sort();
            b.sort();
            assert_eq!(a, b, "position {n}");
        }
        ours.check_unambiguous().unwrap();
    }

    #[test]
    fn sequencing_is_order_sensitive() {
        let (schema, c) = compile("A(x) ; B(x)");
        let a = schema.relation("A").unwrap();
        let b = schema.relation("B").unwrap();
        let good = vec![tup(a, [1i64]), tup(b, [1i64])];
        let bad = vec![tup(b, [1i64]), tup(a, [1i64])];
        assert_eq!(outputs_per_position(&c.pcea, &good)[1].len(), 1);
        let none = outputs_per_position(&c.pcea, &bad);
        assert!(none.iter().all(Vec::is_empty), "B before A must not match");
    }

    #[test]
    fn correlation_enforced() {
        let (schema, c) = compile("A(x) ; B(x)");
        let a = schema.relation("A").unwrap();
        let b = schema.relation("B").unwrap();
        let mismatch = vec![tup(a, [1i64]), tup(b, [2i64])];
        assert!(outputs_per_position(&c.pcea, &mismatch)
            .iter()
            .all(Vec::is_empty));
    }

    #[test]
    fn disjunction_marks_the_branch() {
        let (schema, c) = compile("A(x) | B(x)");
        let a = schema.relation("A").unwrap();
        let b = schema.relation("B").unwrap();
        let stream = vec![tup(a, [1i64]), tup(b, [2i64])];
        let outs = outputs_per_position(&c.pcea, &stream);
        assert_eq!(outs[0].len(), 1);
        assert_eq!(outs[1].len(), 1);
        // Branch A marks label 0, branch B label 1.
        assert_eq!(outs[0][0].get(Label(0)), &[0]);
        assert!(outs[0][0].get(Label(1)).is_empty());
        assert_eq!(outs[1][0].get(Label(1)), &[1]);
    }

    #[test]
    fn conjunction_any_order() {
        let (schema, c) = compile("A(x) && B(x)");
        let a = schema.relation("A").unwrap();
        let b = schema.relation("B").unwrap();
        for stream in [
            vec![tup(a, [1i64]), tup(b, [1i64])],
            vec![tup(b, [1i64]), tup(a, [1i64])],
        ] {
            let outs = outputs_per_position(&c.pcea, &stream);
            assert_eq!(outs[1].len(), 1, "conjunction matches either order");
        }
    }

    #[test]
    fn iteration_enumerates_all_chains() {
        let (schema, c) = compile("A(x)+");
        let a = schema.relation("A").unwrap();
        // Three matching A(1)s: chains ending at n are subsets containing
        // position n: 1, 2, 4 outputs.
        let stream = vec![tup(a, [1i64]), tup(a, [1i64]), tup(a, [1i64])];
        let outs = outputs_per_position(&c.pcea, &stream);
        assert_eq!(outs.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 2, 4]);
        ReferenceEval::new(&c.pcea, &stream)
            .check_unambiguous()
            .unwrap();
    }

    #[test]
    fn iteration_correlates_named_vars_only() {
        let (schema, c) = compile("S(x, _)+");
        let s = schema.relation("S").unwrap();
        // Same x, varying second column: still chains.
        let stream = vec![tup(s, [1i64, 10]), tup(s, [1i64, 20]), tup(s, [2i64, 30])];
        let outs = outputs_per_position(&c.pcea, &stream);
        // n=0: {0}; n=1: {1}, {0,1}; n=2: {2} only (x differs).
        assert_eq!(outs.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 2, 1]);
    }

    #[test]
    fn filters_restrict_matches() {
        let (schema, c) = compile("BUY(x, _)[1 > 100]");
        let b = schema.relation("BUY").unwrap();
        let stream = vec![tup(b, [1i64, 50]), tup(b, [1i64, 150])];
        let outs = outputs_per_position(&c.pcea, &stream);
        assert_eq!(outs.iter().map(Vec::len).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn seq_then_iteration() {
        let (schema, c) = compile("ALERT(x) ; BUY(x, _)+");
        let alert = schema.relation("ALERT").unwrap();
        let buy = schema.relation("BUY").unwrap();
        let stream = vec![
            tup(buy, [1i64, 10]), // before the alert: usable? chain may
            tup(alert, [1i64]),   // start before completion(ALERT) — soft
            tup(buy, [1i64, 20]), // sequencing demands only the *last*
            tup(buy, [1i64, 30]), // buy after the alert.
        ];
        let outs = outputs_per_position(&c.pcea, &stream);
        assert!(outs[0].is_empty() && outs[1].is_empty());
        // At n=2: chains ending at 2 containing the alert: {2}, {0,2}.
        assert_eq!(outs[2].len(), 2);
        // At n=3: chains ending at 3: {3}, {0,3}, {2,3}, {0,2,3}.
        assert_eq!(outs[3].len(), 4);
        ReferenceEval::new(&c.pcea, &stream)
            .check_unambiguous()
            .unwrap();
    }

    #[test]
    fn unanchored_correlation_rejected() {
        let mut schema = Schema::new();
        // y correlates S and R but the intermediate completing atom A(x)
        // cannot carry it.
        let expr = parse_pattern(&mut schema, "S(x, y) ; A(x) ; R(y)").unwrap();
        let err = compile_pattern(&schema, &expr).unwrap_err();
        assert!(matches!(err, LangError::UnanchoredCorrelation { variable } if variable == "y"));
    }

    #[test]
    fn pruning_removes_dead_states() {
        // In "A(x) ; B(x)", the bare B state is useless (only the
        // A-gathering clone is final).
        let (_, c) = compile("A(x) ; B(x)");
        // States: A, ⟨B last⟩ (bare B pruned).
        assert_eq!(c.pcea.num_states(), 2, "states: {:?}", c.state_names);
    }

    #[test]
    fn engine_agrees_with_reference_on_patterns() {
        use cer_core::StreamingEvaluator;
        let (schema, c) = compile("T(x) && S(x, y) ; R(x, y)");
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        let stream = cer_common::gen::sigma0_prefix(r, s, t);
        let reference = ReferenceEval::new(&c.pcea, &stream);
        for w in [2u64, 4, 5, 100] {
            let mut engine = StreamingEvaluator::new(c.pcea.clone(), w);
            for (n, tu) in stream.iter().enumerate() {
                let mut got = engine.push_collect(tu);
                got.sort();
                got.dedup();
                assert_eq!(got, reference.windowed_outputs_at(n, w), "w={w} at {n}");
            }
        }
    }

    #[test]
    fn constants_in_atoms() {
        let (schema, c) = compile("S(2, y) ; R(y)");
        let s = schema.relation("S").unwrap();
        let r = schema.relation("R").unwrap();
        let stream = vec![
            tup(s, [2i64, 7]),
            tup(s, [3i64, 8]),
            tup(r, [7i64]),
            tup(r, [8i64]),
        ];
        let outs = outputs_per_position(&c.pcea, &stream);
        assert_eq!(outs[2].len(), 1, "S(2,7) ; R(7) matches");
        assert_eq!(outs[3].len(), 0, "S(3,8) fails the constant");
        let _ = Value::Int(0);
    }

    #[test]
    fn nested_disjunction_under_seq() {
        let (schema, c) = compile("(A(x) | B(x)) ; C(x)");
        let a = schema.relation("A").unwrap();
        let b = schema.relation("B").unwrap();
        let cc = schema.relation("C").unwrap();
        let stream = vec![tup(a, [1i64]), tup(b, [1i64]), tup(cc, [1i64])];
        let outs = outputs_per_position(&c.pcea, &stream);
        // C gathers the A-branch and the B-branch: two outputs at n=2.
        assert_eq!(outs[2].len(), 2);
        ReferenceEval::new(&c.pcea, &stream)
            .check_unambiguous()
            .unwrap();
    }

    #[test]
    fn three_way_conjunction_final() {
        let (schema, c) = compile("A(x) && B(x) && C(x)");
        let a = schema.relation("A").unwrap();
        let b = schema.relation("B").unwrap();
        let cc = schema.relation("C").unwrap();
        // All six orders match exactly once.
        let tuples = [tup(a, [1i64]), tup(b, [1i64]), tup(cc, [1i64])];
        for perm in [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let stream: Vec<Tuple> = perm.iter().map(|&i| tuples[i].clone()).collect();
            let outs = outputs_per_position(&c.pcea, &stream);
            assert_eq!(outs.iter().map(Vec::len).sum::<usize>(), 1, "{perm:?}");
            ReferenceEval::new(&c.pcea, &stream)
                .check_unambiguous()
                .unwrap();
        }
    }
}

//! Abstract syntax of the PCEA pattern language.
//!
//! The paper's closing section asks for "a query language that
//! characterizes the expressive power of PCEA"; this crate supplies a
//! concrete candidate built from the model's native operations:
//!
//! ```text
//! pattern := pattern '|' pattern          disjunction
//!          | pattern ';' pattern          (soft) sequencing
//!          | pattern '&&' pattern         conjunction / parallelization
//!          | atom '+'                     iteration (atoms only)
//!          | atom
//! atom    := NAME '(' term,* ')' filter*
//! term    := variable | '_' | constant
//! filter  := '[' position cmp constant ']'
//! ```
//!
//! Variables correlate tuples by equality (`Beq`); `_` matches anything
//! without binding; filters are `Ulin` value comparisons. Each atom
//! occurrence carries one output label (its index in the pattern).

use cer_automata::predicate::CmpOp;
use cer_common::{RelationId, Value};
use std::fmt;

/// A pattern variable, interned per pattern.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PVar(pub u32);

impl PVar {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An argument of a pattern atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PTerm {
    /// A correlating variable.
    Var(PVar),
    /// A wildcard: matches any value, binds nothing (per-instance data
    /// in iterations).
    Wildcard,
    /// A constant the tuple must carry.
    Const(Value),
}

/// A value filter `[position cmp constant]` on an atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// Tuple position tested.
    pub pos: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand constant.
    pub value: Value,
}

/// A pattern atom: one event to match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternAtom {
    /// Relation of the tuple.
    pub relation: RelationId,
    /// Argument terms.
    pub args: Box<[PTerm]>,
    /// Value filters.
    pub filters: Vec<Filter>,
}

impl PatternAtom {
    /// Distinct variables, first-occurrence order.
    pub fn variables(&self) -> Vec<PVar> {
        let mut out = Vec::new();
        for t in self.args.iter() {
            if let PTerm::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// First position of a variable.
    pub fn position_of(&self, v: PVar) -> Option<usize> {
        self.args
            .iter()
            .position(|t| matches!(t, PTerm::Var(u) if *u == v))
    }
}

/// A pattern expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// A single event.
    Atom(PatternAtom),
    /// `P ; Q`: Q's completion gathers P's (soft sequencing — P completes
    /// before Q completes).
    Seq(Box<Pattern>, Box<Pattern>),
    /// `P && Q && …`: all operands, in any interleaving; whichever
    /// completes last gathers the others.
    Conj(Vec<Pattern>),
    /// `P | Q | …`: any one operand.
    Disj(Vec<Pattern>),
    /// `a+`: one or more instances of an atom, correlated on its named
    /// variables, ordered by position (skip-till-any-match).
    Iter(Box<Pattern>),
}

impl Pattern {
    /// Atoms in label order (pre-order traversal).
    pub fn atoms(&self) -> Vec<&PatternAtom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a PatternAtom>) {
        match self {
            Pattern::Atom(a) => out.push(a),
            Pattern::Seq(p, q) => {
                p.collect_atoms(out);
                q.collect_atoms(out);
            }
            Pattern::Conj(ps) | Pattern::Disj(ps) => {
                for p in ps {
                    p.collect_atoms(out);
                }
            }
            Pattern::Iter(p) => p.collect_atoms(out),
        }
    }

    /// All variables of the pattern.
    pub fn variables(&self) -> Vec<PVar> {
        let mut out: Vec<PVar> = Vec::new();
        for a in self.atoms() {
            for v in a.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// A parsed pattern plus its variable names and atom spellings.
#[derive(Clone, Debug)]
pub struct PatternExpr {
    /// The expression tree.
    pub pattern: Pattern,
    /// `PVar` index → source name.
    pub var_names: Vec<String>,
    /// Human-readable atom spellings, label order.
    pub atom_names: Vec<String>,
}

impl PatternExpr {
    /// The source name of a variable.
    pub fn var_name(&self, v: PVar) -> &str {
        &self.var_names[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::Schema;

    #[test]
    fn atoms_in_preorder() {
        let (_, r, s, t) = Schema::sigma0();
        let a = |rel| PatternAtom {
            relation: rel,
            args: Box::new([]),
            filters: Vec::new(),
        };
        let p = Pattern::Seq(
            Box::new(Pattern::Conj(vec![
                Pattern::Atom(a(t)),
                Pattern::Atom(a(s)),
            ])),
            Box::new(Pattern::Atom(a(r))),
        );
        let atoms = p.atoms();
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0].relation, t);
        assert_eq!(atoms[1].relation, s);
        assert_eq!(atoms[2].relation, r);
    }

    #[test]
    fn variable_collection_dedupes() {
        let (_, _, s, t) = Schema::sigma0();
        let p = Pattern::Conj(vec![
            Pattern::Atom(PatternAtom {
                relation: t,
                args: Box::new([PTerm::Var(PVar(0))]),
                filters: Vec::new(),
            }),
            Pattern::Atom(PatternAtom {
                relation: s,
                args: Box::new([PTerm::Var(PVar(0)), PTerm::Var(PVar(1))]),
                filters: Vec::new(),
            }),
        ]);
        assert_eq!(p.variables(), vec![PVar(0), PVar(1)]);
    }

    #[test]
    fn wildcards_bind_nothing() {
        let (_, _, s, _) = Schema::sigma0();
        let a = PatternAtom {
            relation: s,
            args: Box::new([PTerm::Var(PVar(3)), PTerm::Wildcard]),
            filters: Vec::new(),
        };
        assert_eq!(a.variables(), vec![PVar(3)]);
        assert_eq!(a.position_of(PVar(3)), Some(0));
    }
}

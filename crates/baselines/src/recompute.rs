//! Baseline 2: per-tuple CQ re-evaluation over the window.
//!
//! The classic pre-automaton approach: keep the last `w + 1` tuples in a
//! buffer and, on every arrival, re-evaluate the conjunctive query over
//! the buffer, reporting the matches that use the new tuple. Correct and
//! simple, but the per-tuple cost is a full (backtracking hash) join over
//! the window — experiment E5 measures where the streaming engine
//! overtakes it.

use cer_automata::valuation::Valuation;
use cer_common::hash::FxHashMap;
use cer_common::{RelationId, Tuple};
use cer_core::api::Evaluator;
use cer_core::window::{WindowClock, WindowPolicy};
use cer_cq::hom;
use cer_cq::query::ConjunctiveQuery;
use std::collections::VecDeque;

/// The re-evaluation baseline.
#[derive(Clone, Debug)]
pub struct RecomputeEvaluator {
    query: ConjunctiveQuery,
    clock: WindowClock,
    /// `(global position, tuple)` ring of the last `w + 1` tuples.
    window: VecDeque<(u64, Tuple)>,
    next_pos: u64,
}

impl RecomputeEvaluator {
    /// Create an evaluator with count window `w`.
    pub fn new(query: ConjunctiveQuery, w: u64) -> Self {
        Self::with_window(query, WindowPolicy::Count(w))
    }

    /// Create an evaluator with an explicit window policy (the
    /// ingest/window stage is shared with the streaming engine).
    pub fn with_window(query: ConjunctiveQuery, window: WindowPolicy) -> Self {
        RecomputeEvaluator {
            query,
            clock: WindowClock::new(window),
            window: VecDeque::new(),
            next_pos: 0,
        }
    }

    /// Tuples currently buffered.
    pub fn buffered(&self) -> usize {
        self.window.len()
    }

    /// Push one tuple; returns the new outputs at its position (with
    /// *global* stream positions in the valuations).
    pub fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        let i = self.next_pos;
        self.next_pos += 1;
        let lo = self.clock.observe(i, t);
        while self.window.front().is_some_and(|(p, _)| *p < lo) {
            self.window.pop_front();
        }
        self.window.push_back((i, t.clone()));

        // Re-evaluate over the buffer; keep matches that use position i.
        let mut db = cer_cq::Database::new();
        let mut local_to_global: Vec<u64> = Vec::with_capacity(self.window.len());
        let mut new_local = usize::MAX;
        for (k, (p, tu)) in self.window.iter().enumerate() {
            db.insert(tu.clone());
            local_to_global.push(*p);
            if *p == i {
                new_local = k;
            }
        }
        let mut out: Vec<Valuation> = hom::t_homomorphisms(&self.query, &db)
            .into_iter()
            .filter(|eta| eta.contains(&new_local))
            .map(|eta| {
                let global: Vec<usize> = eta.iter().map(|&l| local_to_global[l] as usize).collect();
                hom::thom_to_valuation(&self.query, &global)
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Push a tuple and count the new outputs.
    pub fn push_count(&mut self, t: &Tuple) -> usize {
        self.push_collect(t).len()
    }

    /// Per-relation sizes of the current buffer (diagnostics).
    pub fn relation_histogram(&self) -> FxHashMap<RelationId, usize> {
        let mut h: FxHashMap<RelationId, usize> = FxHashMap::default();
        for (_, t) in &self.window {
            *h.entry(t.relation()).or_insert(0) += 1;
        }
        h
    }
}

impl Evaluator for RecomputeEvaluator {
    fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        RecomputeEvaluator::push_collect(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;
    use cer_cq::parser::parse_query;

    fn q0() -> (Schema, ConjunctiveQuery) {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
        (schema, q)
    }

    #[test]
    fn matches_hom_oracle_on_s0() {
        let (schema, q) = q0();
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        let stream = sigma0_prefix(r, s, t);
        for w in [3u64, 4, 5, 100] {
            let mut engine = RecomputeEvaluator::new(q.clone(), w);
            for (n, tu) in stream.iter().enumerate() {
                let got = engine.push_collect(tu);
                let want = hom::windowed_new_outputs_at(&q, &stream, n, w);
                assert_eq!(got, want, "w={w} at position {n}");
            }
        }
    }

    #[test]
    fn window_buffer_is_bounded() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (schema, q) = q0();
        let r = schema.relation("R").unwrap();
        let s = schema.relation("S").unwrap();
        let t = schema.relation("T").unwrap();
        let mut gen = Sigma0Gen::new(r, s, t, 5).with_domains(64, 64);
        let mut engine = RecomputeEvaluator::new(q, 16);
        for _ in 0..200 {
            let tu = gen.next_tuple().unwrap();
            engine.push_collect(&tu);
            assert!(engine.buffered() <= 17);
        }
        assert!(!engine.relation_histogram().is_empty());
    }

    #[test]
    fn self_join_query_recompute() {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, "Q(x) <- T(x), T(x)").unwrap();
        let t = schema.relation("T").unwrap();
        let stream = [
            cer_common::tuple::tup(t, [1i64]),
            cer_common::tuple::tup(t, [1i64]),
        ];
        let mut engine = RecomputeEvaluator::new(q.clone(), 100);
        assert_eq!(engine.push_collect(&stream[0]).len(), 1);
        // New at position 1: {0↦0,1↦1}, {0↦1,1↦0}, {0↦1,1↦1}.
        assert_eq!(engine.push_collect(&stream[1]).len(), 3);
    }
}

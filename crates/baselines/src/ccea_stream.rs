//! Baseline 3: a CCEA-specialized streaming evaluator in the style of
//! Grez & Riveros (ICDT 2020, reference \[16\] of the paper).
//!
//! CCEA runs are *chains*, so the enumeration structure degenerates: a
//! node needs a single `parent` pointer (the run's previous step) plus an
//! `alt` pointer chaining alternative runs that reached the same index
//! entry — O(1) list prepend instead of the PCEA engine's logarithmic
//! heap meld, no products. Window pruning keeps two summaries per cell:
//! `max_start` (best chain through this cell, the analogue of the
//! paper's `max-start`) and `suffix_start` (best over this cell and all
//! older alternatives), so enumeration stops scanning an alternative
//! list as soon as its whole suffix has slid out of the window, and
//! fully-dead suffixes are truncated at prepend time. (Reference \[16\]
//! had no sliding windows; the summaries make the comparison with the
//! PCEA engine fair on outputs and on asymptotics.)
//!
//! Experiment E7 compares this specialist against the general PCEA
//! engine on chain workloads.

use cer_automata::ccea::Ccea;
use cer_automata::predicate::Key;
use cer_automata::valuation::{LabelSet, Valuation};
use cer_common::hash::FxHashMap;
use cer_common::Tuple;
use cer_core::api::Evaluator;
use cer_core::window::{WindowClock, WindowPolicy};

const NIL: u32 = u32::MAX;

fn push_node(nodes: &mut Vec<ChainNode>, n: ChainNode) -> u32 {
    nodes.push(n);
    nodes.len() as u32 - 1
}

/// A chain node: one step of one-or-more runs, possibly heading an
/// alternative list.
#[derive(Clone, Debug)]
struct ChainNode {
    labels: LabelSet,
    pos: u64,
    /// `max{min(run) | run represented by this cell}` — the earliest
    /// position of the *best* chain through this cell.
    max_start: u64,
    /// `max(max_start(this), suffix_start(alt))`: best over this cell
    /// and all older alternatives.
    suffix_start: u64,
    /// Previous step (head of an alternative list), or `NIL`.
    parent: u32,
    /// Next (older) alternative reaching the same index entry, or `NIL`.
    alt: u32,
}

/// The chain-specialized streaming evaluator.
#[derive(Clone, Debug)]
pub struct CceaStreamEvaluator {
    ccea: Ccea,
    clock: WindowClock,
    nodes: Vec<ChainNode>,
    /// `(transition index, left key) → alternative-list head`.
    h: FxHashMap<(u32, Key), u32>,
    /// Fresh nodes per state, rebuilt each position.
    n_state: Vec<Vec<u32>>,
    next_pos: u64,
}

impl CceaStreamEvaluator {
    /// Create an evaluator with count window `w`.
    pub fn new(ccea: Ccea, w: u64) -> Self {
        Self::with_window(ccea, WindowPolicy::Count(w))
    }

    /// Create an evaluator with an explicit window policy (the
    /// ingest/window stage is shared with the streaming engine).
    pub fn with_window(ccea: Ccea, window: WindowPolicy) -> Self {
        let n = ccea.num_states();
        CceaStreamEvaluator {
            ccea,
            clock: WindowClock::new(window),
            nodes: Vec::new(),
            h: FxHashMap::default(),
            n_state: vec![Vec::new(); n],
            next_pos: 0,
        }
    }

    /// Nodes allocated so far.
    pub fn arena_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Push one tuple; returns the new outputs at its position.
    pub fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        let mut out = Vec::new();
        self.push_for_each(t, |v| out.push(v.clone()));
        out
    }

    /// Push a tuple and count the new outputs.
    pub fn push_count(&mut self, t: &Tuple) -> usize {
        let mut n = 0;
        self.push_for_each(t, |_| n += 1);
        n
    }

    /// Push a tuple, calling `f` per new output.
    pub fn push_for_each<F: FnMut(&Valuation)>(&mut self, t: &Tuple, mut f: F) {
        let i = self.next_pos;
        self.next_pos += 1;
        let lo = self.clock.observe(i, t);

        for ns in &mut self.n_state {
            ns.clear();
        }

        // Initial function I(q) = (U, L).
        for q in 0..self.ccea.num_states() {
            let state = cer_automata::pcea::StateId(q as u32);
            if let Some((u, l)) = self.ccea.initial(state) {
                if u.matches(t) {
                    let node = push_node(
                        &mut self.nodes,
                        ChainNode {
                            labels: *l,
                            pos: i,
                            max_start: i,
                            suffix_start: i,
                            parent: NIL,
                            alt: NIL,
                        },
                    );
                    self.n_state[q].push(node);
                }
            }
        }
        // Chain transitions.
        for (e_idx, tr) in self.ccea.transitions().iter().enumerate() {
            if !tr.unary.matches(t) {
                continue;
            }
            let Some(key) = tr.binary.right.extract(t) else {
                continue;
            };
            if let Some(&head) = self.h.get(&(e_idx as u32, key)) {
                let best = self.nodes[head as usize].suffix_start;
                if best >= lo {
                    let max_start = best.min(i);
                    let node = push_node(
                        &mut self.nodes,
                        ChainNode {
                            labels: tr.labels,
                            pos: i,
                            max_start,
                            suffix_start: max_start,
                            parent: head,
                            alt: NIL,
                        },
                    );
                    self.n_state[tr.target.index()].push(node);
                }
            }
        }

        // Update indices: register fresh nodes under their left keys for
        // every transition out of their state, prepending to the
        // alternative list (dead suffixes are truncated).
        for (e_idx, tr) in self.ccea.transitions().iter().enumerate() {
            if self.n_state[tr.source.index()].is_empty() {
                continue;
            }
            let Some(key) = tr.binary.left.extract(t) else {
                continue;
            };
            for k in 0..self.n_state[tr.source.index()].len() {
                let node = self.n_state[tr.source.index()][k];
                let hkey = (e_idx as u32, key.clone());
                match self.h.get(&hkey) {
                    Some(&head) => {
                        let suffix = if self.nodes[head as usize].suffix_start >= lo {
                            head
                        } else {
                            NIL // Whole suffix expired: truncate.
                        };
                        let suffix_start =
                            self.nodes[node as usize].max_start.max(if suffix == NIL {
                                0
                            } else {
                                self.nodes[suffix as usize].suffix_start
                            });
                        let copy = ChainNode {
                            alt: suffix,
                            suffix_start,
                            ..self.nodes[node as usize].clone()
                        };
                        let id = push_node(&mut self.nodes, copy);
                        self.h.insert(hkey, id);
                    }
                    None => {
                        self.h.insert(hkey, node);
                    }
                }
            }
        }

        // Enumeration: fresh nodes at final states.
        let mut val = Valuation::empty(self.ccea.num_labels());
        for &q in self.ccea.finals() {
            for k in 0..self.n_state[q.index()].len() {
                let node = self.n_state[q.index()][k];
                if self.nodes[node as usize].max_start >= lo {
                    self.emit(node, lo, &mut val, &mut f);
                }
            }
        }
    }

    /// Walk the chain backwards, exploring live alternatives at each
    /// level. The caller guarantees `max_start(node) ≥ lo`.
    fn emit<F: FnMut(&Valuation)>(&self, node: u32, lo: u64, val: &mut Valuation, f: &mut F) {
        let n = &self.nodes[node as usize];
        debug_assert!(n.pos >= lo);
        val.insert(n.labels, n.pos);
        if n.parent == NIL {
            f(val);
        } else {
            let mut a = n.parent;
            while a != NIL && self.nodes[a as usize].suffix_start >= lo {
                if self.nodes[a as usize].max_start >= lo {
                    self.emit(a, lo, val, f);
                }
                a = self.nodes[a as usize].alt;
            }
        }
        val.remove(n.labels, n.pos);
    }
}

impl Evaluator for CceaStreamEvaluator {
    fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        CceaStreamEvaluator::push_collect(self, t)
    }

    fn push_count(&mut self, t: &Tuple) -> usize {
        CceaStreamEvaluator::push_count(self, t)
    }

    fn push_for_each(&mut self, t: &Tuple, f: &mut dyn FnMut(&Valuation)) {
        CceaStreamEvaluator::push_for_each(self, t, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::ccea::paper_c0;
    use cer_automata::reference::ReferenceEval;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    #[test]
    fn matches_reference_on_s0() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let ccea = paper_c0(r, s, t);
        let pcea = ccea.to_pcea();
        let reference = ReferenceEval::new(&pcea, &stream);
        for w in [2u64, 4, 5, 100] {
            let mut engine = CceaStreamEvaluator::new(ccea.clone(), w);
            for (n, tu) in stream.iter().enumerate() {
                let mut got = engine.push_collect(tu);
                got.sort();
                got.dedup();
                assert_eq!(got, reference.windowed_outputs_at(n, w), "w={w} at {n}");
            }
        }
    }

    #[test]
    fn matches_pcea_engine_on_random_chains() {
        use cer_automata::pcea::StateId;
        use cer_automata::predicate::{EqPredicate, UnaryPredicate};
        use cer_automata::valuation::{Label, LabelSet};
        use cer_common::gen::ChainGen;
        use cer_common::{Schema, Stream};

        // Chain query: B0(a,b) ; B1(b,c) ; B2(c,d) joined end-to-start.
        let mut schema = Schema::new();
        let mut gen = ChainGen::build(&mut schema, 3, 99).unwrap().with_domain(3);
        let rels = gen.relations.clone();
        let mut ccea = Ccea::new(3, 3);
        ccea.set_initial(
            StateId(0),
            UnaryPredicate::Relation(rels[0]),
            LabelSet::singleton(Label(0)),
        );
        for k in 1..3usize {
            ccea.add_transition(
                StateId(k as u32 - 1),
                UnaryPredicate::Relation(rels[k]),
                EqPredicate::on_positions(rels[k - 1], [1usize], rels[k], [0usize]),
                LabelSet::singleton(Label(k as u32)),
                StateId(k as u32),
            );
        }
        ccea.mark_final(StateId(2));

        let stream: Vec<Tuple> = (0..300).map(|_| gen.next_tuple().unwrap()).collect();
        let pcea = ccea.to_pcea();
        for w in [5u64, 12, 40] {
            let mut specialist = CceaStreamEvaluator::new(ccea.clone(), w);
            let mut general = cer_core::StreamingEvaluator::new(pcea.clone(), w);
            for tu in &stream {
                let mut a = specialist.push_collect(tu);
                let mut b = general.push_collect(tu);
                a.sort();
                b.sort();
                assert_eq!(a, b, "w={w}");
            }
        }
    }

    #[test]
    fn suffix_truncation_bounds_alt_scans() {
        // A long dense stream with a small window: outputs must still be
        // produced, and the evaluator must not slow to a crawl (smoke
        // test: bounded time is asserted by the test timeout).
        use cer_automata::pcea::StateId;
        use cer_automata::predicate::{EqPredicate, UnaryPredicate};
        use cer_automata::valuation::{Label, LabelSet};
        use cer_common::gen::ChainGen;
        use cer_common::{Schema, Stream};
        let mut schema = Schema::new();
        let mut gen = ChainGen::build(&mut schema, 2, 1).unwrap().with_domain(2);
        let rels = gen.relations.clone();
        let mut ccea = Ccea::new(2, 2);
        ccea.set_initial(
            StateId(0),
            UnaryPredicate::Relation(rels[0]),
            LabelSet::singleton(Label(0)),
        );
        ccea.add_transition(
            StateId(0),
            UnaryPredicate::Relation(rels[1]),
            EqPredicate::on_positions(rels[0], [1usize], rels[1], [0usize]),
            LabelSet::singleton(Label(1)),
            StateId(1),
        );
        ccea.mark_final(StateId(1));
        let mut engine = CceaStreamEvaluator::new(ccea, 16);
        let mut total = 0usize;
        for _ in 0..20_000 {
            let tu = gen.next_tuple().unwrap();
            total += engine.push_count(&tu);
        }
        assert!(total > 10_000, "dense chain stream must produce outputs");
    }
}

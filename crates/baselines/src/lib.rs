//! # cer-baselines — comparison evaluators
//!
//! Three baseline evaluators against which the paper's streaming engine
//! (`cer-core`) is measured and differentially tested:
//!
//! * [`naive_runs`] — explicit run maintenance for arbitrary PCEA
//!   (no factorization; update time grows with stored matches);
//! * [`recompute`] — per-tuple re-evaluation of the conjunctive query
//!   over a window buffer (the classic pre-automaton CER approach);
//! * [`ccea_stream`] — a chain-specialized streaming evaluator in the
//!   style of Grez & Riveros (ICDT 2020), the paper's reference \[16\].
//!
//! All three implement the [`cer_core::Evaluator`] trait — the same
//! surface the streaming engine exposes — so differential tests and the
//! multi-query runtime benches compare like-for-like, and all three
//! share the engine's ingest/window stage
//! ([`cer_core::window::WindowClock`]), so they support count *and*
//! time windows through the `with_window` constructors.

pub mod ccea_stream;
pub mod naive_runs;
pub mod recompute;

pub use ccea_stream::CceaStreamEvaluator;
pub use naive_runs::NaiveRunsEvaluator;
pub use recompute::RecomputeEvaluator;

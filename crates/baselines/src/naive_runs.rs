//! Baseline 1: explicit run maintenance (no factorization).
//!
//! Keeps every partial run of the PCEA as an explicit
//! `(state, last position, last tuple, valuation)` record. Each arriving
//! tuple is matched against all stored runs, taking cross products for
//! multi-source transitions. This is the "textbook" CER automaton
//! evaluator: correct, but both update time and memory grow with the
//! number of partial matches — the behaviour the paper's `DS_w`
//! factorization exists to avoid (experiments E5/E6).

use cer_automata::pcea::Pcea;
use cer_automata::valuation::Valuation;
use cer_common::Tuple;
use cer_core::api::Evaluator;
use cer_core::window::{WindowClock, WindowPolicy};

/// One explicit partial run.
#[derive(Clone, Debug)]
struct Run {
    /// The tuple its root read (needed for future join predicates).
    tuple: Tuple,
    /// The accumulated valuation.
    val: Valuation,
}

/// The explicit-run evaluator.
#[derive(Clone, Debug)]
pub struct NaiveRunsEvaluator {
    pcea: Pcea,
    clock: WindowClock,
    /// `runs[p]`: live partial runs whose root is at state `p`.
    runs: Vec<Vec<Run>>,
    next_pos: u64,
    /// Safety valve: panic if the run store exceeds this (the explosion
    /// is the baseline's point, but tests should fail loudly).
    pub max_runs: usize,
}

impl NaiveRunsEvaluator {
    /// Create an evaluator with count window `w`.
    pub fn new(pcea: Pcea, w: u64) -> Self {
        Self::with_window(pcea, WindowPolicy::Count(w))
    }

    /// Create an evaluator with an explicit window policy (the
    /// ingest/window stage is shared with the streaming engine).
    pub fn with_window(pcea: Pcea, window: WindowPolicy) -> Self {
        let n = pcea.num_states();
        NaiveRunsEvaluator {
            pcea,
            clock: WindowClock::new(window),
            runs: vec![Vec::new(); n],
            next_pos: 0,
            max_runs: 10_000_000,
        }
    }

    /// Number of stored partial runs.
    pub fn stored_runs(&self) -> usize {
        self.runs.iter().map(Vec::len).sum()
    }

    /// Push one tuple; returns the new outputs at its position.
    pub fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        let i = self.next_pos;
        self.next_pos += 1;
        let lo = self.clock.observe(i, t);

        // Expire runs that can no longer produce an in-window output
        // (their minimum position only decreases under products).
        for rs in &mut self.runs {
            rs.retain(|r| r.val.min_pos().is_none_or(|m| m >= lo));
        }

        let mut fresh: Vec<(usize, Run)> = Vec::new();
        for tr in self.pcea.transitions() {
            if !tr.unary.matches(t) {
                continue;
            }
            // Candidate runs per source slot.
            let mut cands: Vec<Vec<&Run>> = Vec::with_capacity(tr.sources.len());
            let mut feasible = true;
            for (p, b) in tr.sources.iter().zip(tr.binary.iter()) {
                let c: Vec<&Run> = self.runs[p.index()]
                    .iter()
                    .filter(|r| b.satisfied(&r.tuple, t))
                    .collect();
                if c.is_empty() {
                    feasible = false;
                    break;
                }
                cands.push(c);
            }
            if !feasible {
                continue;
            }
            // Cross product of source choices.
            let mut combos: Vec<Valuation> =
                vec![Valuation::singleton(self.pcea.num_labels(), tr.labels, i)];
            for c in &cands {
                let mut next = Vec::with_capacity(combos.len() * c.len());
                for base in &combos {
                    for r in c {
                        next.push(base.product(&r.val));
                    }
                }
                combos = next;
            }
            for val in combos {
                fresh.push((
                    tr.target.index(),
                    Run {
                        tuple: t.clone(),
                        val,
                    },
                ));
            }
        }

        let mut outputs = Vec::new();
        for (p, run) in fresh {
            if self.pcea.is_final(cer_automata::pcea::StateId(p as u32))
                && run.val.min_pos().is_none_or(|m| m >= lo)
            {
                outputs.push(run.val.clone());
            }
            self.runs[p].push(run);
        }
        assert!(
            self.stored_runs() <= self.max_runs,
            "naive run store exploded past {} runs",
            self.max_runs
        );
        outputs
    }

    /// Push a tuple and count the new outputs.
    pub fn push_count(&mut self, t: &Tuple) -> usize {
        self.push_collect(t).len()
    }
}

impl Evaluator for NaiveRunsEvaluator {
    fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        NaiveRunsEvaluator::push_collect(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::pcea::paper_p0;
    use cer_automata::reference::ReferenceEval;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    #[test]
    fn matches_reference_on_s0() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let pcea = paper_p0(r, s, t);
        let reference = ReferenceEval::new(&pcea, &stream);
        for w in [2u64, 4, 5, 100] {
            let mut engine = NaiveRunsEvaluator::new(pcea.clone(), w);
            for (n, tu) in stream.iter().enumerate() {
                let mut got = engine.push_collect(tu);
                got.sort();
                got.dedup();
                assert_eq!(got, reference.windowed_outputs_at(n, w), "w={w} at {n}");
            }
        }
    }

    #[test]
    fn run_store_grows_with_matches() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (_, r, s, t) = Schema::sigma0();
        let mut gen = Sigma0Gen::new(r, s, t, 3).with_domains(2, 2);
        let pcea = paper_p0(r, s, t);
        let mut engine = NaiveRunsEvaluator::new(pcea, 64);
        let mut sizes = Vec::new();
        for _ in 0..128 {
            let tu = gen.next_tuple().unwrap();
            engine.push_collect(&tu);
            sizes.push(engine.stored_runs());
        }
        assert!(
            sizes[127] > sizes[16],
            "explicit run store should keep growing inside the window"
        );
    }

    #[test]
    fn expiry_bounds_the_store() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (_, r, s, t) = Schema::sigma0();
        let mut gen = Sigma0Gen::new(r, s, t, 3).with_domains(4, 4);
        let pcea = paper_p0(r, s, t);
        let mut engine = NaiveRunsEvaluator::new(pcea, 8);
        let mut peak = 0;
        for _ in 0..1000 {
            let tu = gen.next_tuple().unwrap();
            engine.push_collect(&tu);
            peak = peak.max(engine.stored_runs());
        }
        assert!(
            peak < 2000,
            "window expiry must bound the store, peak {peak}"
        );
    }
}

//! Valuations `ν : Ω → 2^N` — the outputs of CCEA/PCEA runs — and label
//! sets, with the product operation `⊕` of Section 5.
//!
//! The label alphabet Ω is finite and fixed per automaton; we represent a
//! subset of Ω as a 64-bit [`LabelSet`], which caps |Ω| at 64. Compiled
//! conjunctive queries use one label per atom occurrence, so this supports
//! queries with up to 64 atoms — far beyond anything evaluable.

use std::fmt;

/// A single output label `ℓ ∈ Ω`, identified by its index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// Index into per-label storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// Maximum number of labels supported by [`LabelSet`].
pub const MAX_LABELS: usize = 64;

/// A non-empty-or-empty subset of Ω as a 64-bit bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LabelSet(pub u64);

impl LabelSet {
    /// The empty label set (not allowed on transitions, useful as identity).
    pub const EMPTY: LabelSet = LabelSet(0);

    /// Singleton label set.
    #[inline]
    pub fn singleton(l: Label) -> Self {
        assert!((l.index()) < MAX_LABELS, "label index out of range");
        LabelSet(1u64 << l.0)
    }

    /// Build from an iterator of labels.
    pub fn from_labels(labels: impl IntoIterator<Item = Label>) -> Self {
        labels.into_iter().fold(LabelSet::EMPTY, |s, l| s.with(l))
    }

    /// This set plus one label.
    #[inline]
    pub fn with(self, l: Label) -> Self {
        assert!((l.index()) < MAX_LABELS, "label index out of range");
        LabelSet(self.0 | (1u64 << l.0))
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, l: Label) -> bool {
        l.index() < MAX_LABELS && self.0 & (1u64 << l.0) != 0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: LabelSet) -> Self {
        LabelSet(self.0 | other.0)
    }

    /// Whether the two sets share a label.
    #[inline]
    pub fn intersects(self, other: LabelSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate over member labels in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = Label> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(Label(i))
            }
        })
    }
}

impl cer_common::wire::Wire for LabelSet {
    fn encode(
        &self,
        w: &mut cer_common::wire::WireWriter,
    ) -> Result<(), cer_common::wire::WireError> {
        w.put_u64(self.0);
        Ok(())
    }
    fn decode(
        r: &mut cer_common::wire::WireReader<'_>,
    ) -> Result<Self, cer_common::wire::WireError> {
        Ok(LabelSet(r.get_u64()?))
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, l) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, "}}")
    }
}

/// A valuation `ν : Ω → 2^N`: for each label, a sorted set of stream
/// positions.
///
/// Valuations are the outputs of CER queries: `ν(ℓ)` is the set of
/// positions annotated with label `ℓ` by an accepting run. The paper's
/// product `ν ⊕ ν′` is pointwise union; it is *simple* when the operands
/// are pointwise disjoint (Section 5), which is what unambiguous automata
/// guarantee and what the enumeration structure relies on.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Valuation {
    /// `sets[ℓ]` is the sorted list of positions in `ν(ℓ)`.
    sets: Vec<Vec<u64>>,
}

impl Valuation {
    /// The empty valuation over `num_labels` labels.
    pub fn empty(num_labels: usize) -> Self {
        Valuation {
            sets: vec![Vec::new(); num_labels],
        }
    }

    /// The paper's `ν_{L,i}`: position `i` under every label in `L`,
    /// empty elsewhere.
    pub fn singleton(num_labels: usize, labels: LabelSet, pos: u64) -> Self {
        let mut v = Valuation::empty(num_labels);
        for l in labels.iter() {
            v.sets[l.index()].push(pos);
        }
        v
    }

    /// Number of labels in the underlying Ω.
    pub fn num_labels(&self) -> usize {
        self.sets.len()
    }

    /// The positions assigned to a label.
    pub fn get(&self, l: Label) -> &[u64] {
        &self.sets[l.index()]
    }

    /// Whether every `ν(ℓ)` is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Total number of (label, position) pairs: the output size `|ν|`.
    pub fn weight(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `min(ν)`: the smallest position mentioned, if any.
    pub fn min_pos(&self) -> Option<u64> {
        self.sets.iter().filter_map(|s| s.first()).min().copied()
    }

    /// The largest position mentioned, if any.
    pub fn max_pos(&self) -> Option<u64> {
        self.sets.iter().filter_map(|s| s.last()).max().copied()
    }

    /// Add position `pos` under every label of `labels`, in place.
    ///
    /// Keeps each per-label list sorted; positions already present are not
    /// duplicated (2^N is a set).
    pub fn insert(&mut self, labels: LabelSet, pos: u64) {
        for l in labels.iter() {
            let set = &mut self.sets[l.index()];
            match set.binary_search(&pos) {
                Ok(_) => {}
                Err(k) => set.insert(k, pos),
            }
        }
    }

    /// Remove position `pos` from every label of `labels`, in place.
    ///
    /// The inverse of [`Valuation::insert`] for simple products; used by
    /// the engine's backtracking enumerator.
    pub fn remove(&mut self, labels: LabelSet, pos: u64) {
        for l in labels.iter() {
            let set = &mut self.sets[l.index()];
            if let Ok(k) = set.binary_search(&pos) {
                set.remove(k);
            }
        }
    }

    /// The product `ν ⊕ ν′` (pointwise union).
    pub fn product(&self, other: &Valuation) -> Valuation {
        assert_eq!(
            self.sets.len(),
            other.sets.len(),
            "valuations over different label alphabets"
        );
        let mut out = self.clone();
        out.product_assign(other);
        out
    }

    /// In-place product `ν ⊕= ν′`.
    pub fn product_assign(&mut self, other: &Valuation) {
        for (dst, src) in self.sets.iter_mut().zip(&other.sets) {
            if src.is_empty() {
                continue;
            }
            if dst.is_empty() {
                dst.extend_from_slice(src);
                continue;
            }
            let merged = merge_sorted_dedup(dst, src);
            *dst = merged;
        }
    }

    /// Whether `self ⊕ other` is *simple*: pointwise disjoint supports.
    pub fn simple_with(&self, other: &Valuation) -> bool {
        self.sets
            .iter()
            .zip(&other.sets)
            .all(|(a, b)| sorted_disjoint(a, b))
    }

    /// Iterate `(label, position)` pairs in label order.
    pub fn entries(&self) -> impl Iterator<Item = (Label, u64)> + '_ {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(l, s)| s.iter().map(move |&p| (Label(l as u32), p)))
    }
}

impl cer_common::wire::Wire for Valuation {
    fn encode(
        &self,
        w: &mut cer_common::wire::WireWriter,
    ) -> Result<(), cer_common::wire::WireError> {
        w.put_len(self.sets.len());
        for set in &self.sets {
            w.put_len(set.len());
            for &p in set {
                w.put_u64(p);
            }
        }
        Ok(())
    }
    fn decode(
        r: &mut cer_common::wire::WireReader<'_>,
    ) -> Result<Self, cer_common::wire::WireError> {
        let n_labels = r.get_len()?;
        let mut sets = Vec::with_capacity(n_labels.min(1 << 10));
        for _ in 0..n_labels {
            let n = r.get_len()?;
            let mut set = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                set.push(r.get_u64()?);
            }
            // The per-label lists are sorted sets by construction;
            // decoded bytes must uphold the same invariant or later
            // products would silently misbehave.
            if !set.windows(2).all(|w| w[0] < w[1]) {
                return Err(cer_common::wire::WireError::Corrupt(
                    "valuation positions not strictly sorted",
                ));
            }
            sets.push(set);
        }
        Ok(Valuation { sets })
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (l, s) in self.sets.iter().enumerate() {
            if s.is_empty() {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "ℓ{l}↦{s:?}")?;
        }
        write!(f, "}}")
    }
}

fn merge_sorted_dedup(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn sorted_disjoint(a: &[u64], b: &[u64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labelset_basic_ops() {
        let s = LabelSet::from_labels([Label(0), Label(3)]);
        assert!(s.contains(Label(0)));
        assert!(s.contains(Label(3)));
        assert!(!s.contains(Label(1)));
        assert_eq!(s.len(), 2);
        let t = LabelSet::singleton(Label(3));
        assert!(s.intersects(t));
        assert_eq!(s.union(t), s);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Label(0), Label(3)]);
    }

    #[test]
    #[should_panic(expected = "label index out of range")]
    fn labelset_rejects_large_labels() {
        let _ = LabelSet::singleton(Label(64));
    }

    #[test]
    fn singleton_valuation_matches_nu_l_i() {
        let v = Valuation::singleton(3, LabelSet::from_labels([Label(0), Label(2)]), 7);
        assert_eq!(v.get(Label(0)), &[7]);
        assert_eq!(v.get(Label(1)), &[] as &[u64]);
        assert_eq!(v.get(Label(2)), &[7]);
        assert_eq!(v.min_pos(), Some(7));
        assert_eq!(v.max_pos(), Some(7));
        assert_eq!(v.weight(), 2);
    }

    #[test]
    fn product_is_pointwise_union() {
        let a = Valuation::singleton(2, LabelSet::singleton(Label(0)), 1);
        let b = Valuation::singleton(2, LabelSet::singleton(Label(0)), 5);
        let c = Valuation::singleton(2, LabelSet::singleton(Label(1)), 3);
        let ab = a.product(&b);
        assert_eq!(ab.get(Label(0)), &[1, 5]);
        let abc = ab.product(&c);
        assert_eq!(abc.get(Label(1)), &[3]);
        assert_eq!(abc.min_pos(), Some(1));
        assert_eq!(abc.max_pos(), Some(5));
    }

    #[test]
    fn product_is_commutative_and_associative() {
        let a = Valuation::singleton(2, LabelSet::singleton(Label(0)), 1);
        let b = Valuation::singleton(2, LabelSet::singleton(Label(1)), 2);
        let c = Valuation::singleton(2, LabelSet::from_labels([Label(0), Label(1)]), 9);
        assert_eq!(a.product(&b), b.product(&a));
        assert_eq!(a.product(&b).product(&c), a.product(&b.product(&c)));
    }

    #[test]
    fn simplicity_detects_overlap() {
        let a = Valuation::singleton(1, LabelSet::singleton(Label(0)), 4);
        let b = Valuation::singleton(1, LabelSet::singleton(Label(0)), 4);
        let c = Valuation::singleton(1, LabelSet::singleton(Label(0)), 5);
        assert!(!a.simple_with(&b));
        assert!(a.simple_with(&c));
    }

    #[test]
    fn insert_keeps_sorted_no_dupes() {
        let mut v = Valuation::empty(1);
        v.insert(LabelSet::singleton(Label(0)), 9);
        v.insert(LabelSet::singleton(Label(0)), 3);
        v.insert(LabelSet::singleton(Label(0)), 9);
        assert_eq!(v.get(Label(0)), &[3, 9]);
    }

    #[test]
    fn min_of_product_is_min_of_mins() {
        // The window-filtering identity the engine relies on (§5).
        let a = Valuation::singleton(2, LabelSet::singleton(Label(0)), 10);
        let b = Valuation::singleton(2, LabelSet::singleton(Label(1)), 4);
        assert_eq!(
            a.product(&b).min_pos(),
            std::cmp::min(a.min_pos(), b.min_pos())
        );
    }

    #[test]
    fn entries_iterates_label_order() {
        let mut v = Valuation::empty(2);
        v.insert(LabelSet::singleton(Label(1)), 2);
        v.insert(LabelSet::singleton(Label(0)), 8);
        let es: Vec<_> = v.entries().collect();
        assert_eq!(es, vec![(Label(0), 8), (Label(1), 2)]);
    }

    #[test]
    fn wire_roundtrip_rejects_unsorted_and_truncated() {
        use cer_common::wire::{Wire, WireReader, WireWriter};
        let mut v = Valuation::empty(3);
        v.insert(LabelSet::from_labels([Label(0), Label(2)]), 4);
        v.insert(LabelSet::singleton(Label(0)), 1);
        let mut w = WireWriter::new();
        v.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(Valuation::decode(&mut r).unwrap(), v);
        assert!(r.is_exhausted());
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(Valuation::decode(&mut r).is_err(), "cut {cut}");
        }
        // An out-of-order position list is rejected, not adopted.
        let mut w = WireWriter::new();
        w.put_len(1);
        w.put_len(2);
        w.put_u64(9);
        w.put_u64(3);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(Valuation::decode(&mut r).is_err());
    }
}

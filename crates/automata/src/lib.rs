//! # cer-automata — automata models for complex event recognition
//!
//! Implements every automaton model of *Complex event recognition meets
//! hierarchical conjunctive queries* (Pinto & Riveros, PODS 2024):
//!
//! * [`nfa`] / [`dfa`] — classical finite automata plus the subset
//!   construction (§2 "Strings and NFA");
//! * [`pfa`] — Parallelized Finite Automata with run *trees* and their
//!   determinization to DFAs of at most `2^n` states (§3, Proposition 3.2);
//! * [`predicate`] — the predicate classes `Ulin` (linear-time unary
//!   predicates) and `Beq` (equality predicates given by partial key
//!   functions ⃗B, ⃖B) (§2 "Predicates");
//! * [`ccea`] — Chain Complex Event Automata (§2), the model of Grez &
//!   Riveros (ICDT 2020) that PCEA strictly generalizes;
//! * [`pcea`] — Parallelized Complex Event Automata (§3), the paper's
//!   automaton model: transitions fire from *sets* of source states,
//!   merging parallel runs;
//! * [`valuation`] — outputs `ν : Ω → 2^N` and their product `⊕`;
//! * [`reference`](mod@reference) — exponential-time reference semantics (`⟦P⟧n(S)` by
//!   explicit run-tree enumeration) used as the correctness oracle for the
//!   streaming engine, plus an unambiguity checker.

pub mod ccea;
pub mod dfa;
pub mod nfa;
pub mod pcea;
pub mod pfa;
pub mod predicate;
pub mod reference;
pub mod valuation;

pub use ccea::Ccea;
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use pcea::{Pcea, PceaBuilder, StateId, Transition};
pub use pfa::Pfa;
pub use predicate::{AtomPattern, EqPredicate, Key, KeyExtractor, PredicateKey, UnaryPredicate};
pub use valuation::{Label, LabelSet, Valuation};

//! Chain Complex Event Automata (Section 2), the model of Grez & Riveros
//! (ICDT 2020) that PCEA strictly generalizes.
//!
//! A CCEA run is a subsequence of the stream following a *chain* of
//! transitions: each transition checks a unary predicate on the current
//! tuple and a binary predicate against the *previous* tuple of the run.
//! The first tuple is admitted by a partial initial function
//! `I : Q ⇀ U × (2^Ω ∖ {∅})`.
//!
//! Every CCEA embeds into a PCEA whose transitions have at most one
//! source ([`Ccea::to_pcea`]); Proposition 3.4 (reproduced in the
//! integration tests) shows the inclusion is strict.

use crate::pcea::{Pcea, PceaBuilder, StateId};
use crate::predicate::{EqPredicate, UnaryPredicate};
use crate::valuation::LabelSet;

/// A CCEA transition `(p, U, B, L, q)`.
#[derive(Clone, Debug)]
pub struct CceaTransition {
    /// Source state `p`.
    pub source: StateId,
    /// Unary predicate on the current tuple.
    pub unary: UnaryPredicate,
    /// Binary predicate between the run's previous tuple and the current
    /// one.
    pub binary: EqPredicate,
    /// Non-empty label set marking the current position.
    pub labels: LabelSet,
    /// Target state `q`.
    pub target: StateId,
}

/// A chain complex event automaton `(Q, U, B, Ω, ∆, I, F)`.
#[derive(Clone, Debug, Default)]
pub struct Ccea {
    num_states: usize,
    num_labels: usize,
    /// `initial[q]` is `I(q)` when defined.
    initial: Vec<Option<(UnaryPredicate, LabelSet)>>,
    transitions: Vec<CceaTransition>,
    finals: Vec<StateId>,
}

impl Ccea {
    /// An automaton with `num_states` states over `num_labels` labels.
    pub fn new(num_states: usize, num_labels: usize) -> Self {
        Ccea {
            num_states,
            num_labels,
            initial: vec![None; num_states],
            transitions: Vec::new(),
            finals: Vec::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Size of the label alphabet.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Define `I(q) = (U, L)`.
    pub fn set_initial(&mut self, q: StateId, unary: UnaryPredicate, labels: LabelSet) {
        assert!(q.index() < self.num_states, "state out of range");
        assert!(!labels.is_empty(), "initial label set must be non-empty");
        self.initial[q.index()] = Some((unary, labels));
    }

    /// Add a transition `(p, U, B, L, q)`.
    pub fn add_transition(
        &mut self,
        source: StateId,
        unary: UnaryPredicate,
        binary: EqPredicate,
        labels: LabelSet,
        target: StateId,
    ) {
        assert!(
            source.index() < self.num_states && target.index() < self.num_states,
            "state out of range"
        );
        assert!(!labels.is_empty(), "transition label set must be non-empty");
        self.transitions.push(CceaTransition {
            source,
            unary,
            binary,
            labels,
            target,
        });
    }

    /// Mark a state final.
    pub fn mark_final(&mut self, q: StateId) {
        assert!(q.index() < self.num_states, "state out of range");
        if !self.finals.contains(&q) {
            self.finals.push(q);
        }
    }

    /// The transitions.
    pub fn transitions(&self) -> &[CceaTransition] {
        &self.transitions
    }

    /// `I(q)`, when defined.
    pub fn initial(&self, q: StateId) -> Option<&(UnaryPredicate, LabelSet)> {
        self.initial[q.index()].as_ref()
    }

    /// The final states.
    pub fn finals(&self) -> &[StateId] {
        &self.finals
    }

    /// Embed into a PCEA: every transition keeps a single source and the
    /// initial function becomes `∅`-source transitions. The embedding
    /// preserves `⟦·⟧_n(S)` for every stream (tested against the
    /// reference semantics).
    pub fn to_pcea(&self) -> Pcea {
        let mut b = PceaBuilder::new(self.num_labels);
        let states: Vec<StateId> = b.add_states(self.num_states);
        for (q, init) in self.initial.iter().enumerate() {
            if let Some((u, l)) = init {
                b.add_initial_transition(u.clone(), *l, states[q]);
            }
        }
        for t in &self.transitions {
            b.add_transition(
                vec![(states[t.source.index()], t.binary.clone())],
                t.unary.clone(),
                t.labels,
                states[t.target.index()],
            );
        }
        for f in &self.finals {
            b.mark_final(states[f.index()]);
        }
        b.build()
    }
}

/// The paper's example CCEA `C0` (Example 2.1): subsequences
/// `T(a), S(a,b), R(a,b)` with label `●`.
pub fn paper_c0(
    r: cer_common::RelationId,
    s: cer_common::RelationId,
    t: cer_common::RelationId,
) -> Ccea {
    use crate::valuation::Label;
    let dot = LabelSet::singleton(Label(0));
    let mut c = Ccea::new(3, 1);
    let (q0, q1, q2) = (StateId(0), StateId(1), StateId(2));
    c.set_initial(q0, UnaryPredicate::Relation(t), dot);
    c.add_transition(
        q0,
        UnaryPredicate::Relation(s),
        EqPredicate::on_positions(t, [0usize], s, [0usize]),
        dot,
        q1,
    );
    c.add_transition(
        q1,
        UnaryPredicate::Relation(r),
        EqPredicate::on_positions(s, [0usize, 1], r, [0usize, 1]),
        dot,
        q2,
    );
    c.mark_final(q2);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::Schema;

    #[test]
    fn c0_structure() {
        let (_, r, s, t) = Schema::sigma0();
        let c = paper_c0(r, s, t);
        assert_eq!(c.num_states(), 3);
        assert_eq!(c.transitions().len(), 2);
        assert!(c.initial(StateId(0)).is_some());
        assert!(c.initial(StateId(1)).is_none());
        assert_eq!(c.finals(), &[StateId(2)]);
    }

    #[test]
    fn embedding_shape() {
        let (_, r, s, t) = Schema::sigma0();
        let p = paper_c0(r, s, t).to_pcea();
        assert_eq!(p.num_states(), 3);
        // 1 initial + 2 chain transitions.
        assert_eq!(p.transitions().len(), 3);
        assert!(
            p.transitions().iter().all(|tr| tr.sources.len() <= 1),
            "CCEA image has ≤1 source per transition"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn initial_labels_must_be_non_empty() {
        let mut c = Ccea::new(1, 1);
        c.set_initial(StateId(0), UnaryPredicate::True, LabelSet::EMPTY);
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn final_bounds_checked() {
        let mut c = Ccea::new(1, 1);
        c.mark_final(StateId(1));
    }
}

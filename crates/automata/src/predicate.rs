//! Predicate classes `Ulin` and `Beq` (Section 2 "Predicates").
//!
//! The paper parameterizes its automata by a class of *unary* predicates
//! (local filters on a single tuple) and a class of *binary* predicates
//! (join conditions between two tuples). The algorithmic results need:
//!
//! * `Ulin` — unary predicates decidable in time linear in `|t|`;
//! * `Beq` — *equality predicates*: binary predicates `B` given by two
//!   partial functions `⃗B` (applied to the earlier tuple) and `⃖B` (applied
//!   to the later tuple) such that `(t1, t2) ∈ B` iff both are defined and
//!   `⃗B(t1) = ⃖B(t2)`, each computable in linear time.
//!
//! We take the paper's *semantic* presentation literally: an
//! [`EqPredicate`] is a pair of [`KeyExtractor`]s. The extracted
//! [`Key`] is exactly what Algorithm 1 hashes on in its look-up table `H`,
//! so the representation *is* the index key of the streaming engine.

use cer_common::hash::FxHashMap;
use cer_common::{RelationId, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// A join key: the value vector produced by a [`KeyExtractor`].
///
/// Two tuples satisfy an equality predicate iff their extracted keys are
/// both defined and equal as value sequences.
pub type Key = Box<[Value]>;

/// A within-tuple consistency group: all `positions` must carry equal
/// values, and when `constant` is set, that shared value must equal it.
///
/// Groups implement the "repeated variable" and "constant argument" checks
/// of atom patterns, and the per-side equivalence-class checks of the
/// derived atoms `t_A` from Lemma B.3/B.4 (self-join compilation).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PosGroup {
    /// Tuple positions that must all hold the same value (non-empty).
    pub positions: Box<[usize]>,
    /// Optional constant the shared value must equal.
    pub constant: Option<Value>,
}

impl PosGroup {
    /// Whether the group's constraints hold on `t`.
    pub fn holds(&self, t: &Tuple) -> bool {
        let Some(&first) = self.positions.first() else {
            return true;
        };
        if first >= t.arity() {
            return false;
        }
        let v = t.get(first);
        if let Some(c) = &self.constant {
            if v != c {
                return false;
            }
        }
        self.positions[1..]
            .iter()
            .all(|&p| p < t.arity() && t.get(p) == v)
    }
}

/// The per-relation piece of a [`KeyExtractor`]: consistency checks plus
/// the positions to project (in the extractor's canonical key order).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ExtractorEntry {
    /// Within-tuple equality/constant groups that must hold for the key to
    /// be defined.
    pub checks: Box<[PosGroup]>,
    /// Positions projected into the key, in canonical order.
    pub key: Box<[usize]>,
}

/// A partial function `Tuples[σ] ⇀ Key` — one side (`⃗B` or `⃖B`) of an
/// equality predicate in `Beq`.
///
/// The function is defined on a tuple `t` iff `t`'s relation has an entry
/// and the entry's consistency checks hold; the key is then the projection
/// of the entry's positions. Both lookup and projection are linear in
/// `|t|`, as `Beq` requires.
#[derive(Clone, Debug, Default)]
pub struct KeyExtractor {
    entries: FxHashMap<RelationId, ExtractorEntry>,
}

impl KeyExtractor {
    /// An extractor with no entries (defined nowhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// An extractor defined only on `relation`, projecting `positions`.
    pub fn projection(relation: RelationId, positions: impl Into<Box<[usize]>>) -> Self {
        let mut e = Self::new();
        e.insert(
            relation,
            ExtractorEntry {
                checks: Box::new([]),
                key: positions.into(),
            },
        );
        e
    }

    /// Add (or replace) the entry for one relation.
    pub fn insert(&mut self, relation: RelationId, entry: ExtractorEntry) {
        self.entries.insert(relation, entry);
    }

    /// Number of relations the extractor is defined on.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the extractor is defined nowhere.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply the partial function: `Some(key)` when defined on `t`.
    pub fn extract(&self, t: &Tuple) -> Option<Key> {
        let entry = self.entries.get(&t.relation())?;
        if !entry.checks.iter().all(|g| g.holds(t)) {
            return None;
        }
        if entry.key.iter().any(|&p| p >= t.arity()) {
            return None;
        }
        Some(entry.key.iter().map(|&p| t.get(p).clone()).collect())
    }

    /// Bitmask of *key indices* (up to 64) at which **every** relation
    /// this side is defined on projects tuple position `pos`. Key
    /// equality is positional, so only a common index guarantees that
    /// equal keys carry equal values of the partition attribute; an
    /// extractor defined nowhere returns all-ones (its join can never
    /// be satisfied, hence is vacuously safe).
    pub fn projection_index_mask(&self, pos: usize) -> u64 {
        let mut mask = !0u64;
        for e in self.entries.values() {
            let mut m = 0u64;
            for (i, &p) in e.key.iter().take(64).enumerate() {
                if p == pos {
                    m |= 1 << i;
                }
            }
            mask &= m;
        }
        mask
    }
}

/// An equality predicate `B ∈ Beq`, as a pair of partial key functions.
///
/// `(t1, t2) ∈ B` iff `⃗B(t1)` and `⃖B(t2)` are both defined and equal,
/// where `t1` is the *earlier* tuple (stored run) and `t2` the *current*
/// tuple. The empty-key predicate (both sides project nothing) is the
/// always-true join, used for variable pairs with no shared attributes.
#[derive(Clone, Debug, Default)]
pub struct EqPredicate {
    /// `⃗B`, applied to the earlier tuple.
    pub left: KeyExtractor,
    /// `⃖B`, applied to the current tuple.
    pub right: KeyExtractor,
}

impl EqPredicate {
    /// Build from the two key functions.
    pub fn new(left: KeyExtractor, right: KeyExtractor) -> Self {
        EqPredicate { left, right }
    }

    /// The paper's example `(Tx, Sxy)`-style predicate: project `lpos` of
    /// `lrel` on the left and `rpos` of `rrel` on the right.
    pub fn on_positions(
        lrel: RelationId,
        lpos: impl Into<Box<[usize]>>,
        rrel: RelationId,
        rpos: impl Into<Box<[usize]>>,
    ) -> Self {
        EqPredicate {
            left: KeyExtractor::projection(lrel, lpos),
            right: KeyExtractor::projection(rrel, rpos),
        }
    }

    /// Whether satisfying this predicate implies both tuples carry equal
    /// values at tuple position `pos`: the partition attribute must be
    /// projected at a *common key index* by every entry of both sides
    /// (key comparison is positional, so merely containing `pos`
    /// somewhere in each key is not enough).
    pub fn preserves_partition(&self, pos: usize) -> bool {
        self.left.projection_index_mask(pos) & self.right.projection_index_mask(pos) != 0
    }

    /// Decide `(t1, t2) ∈ B`.
    pub fn satisfied(&self, earlier: &Tuple, current: &Tuple) -> bool {
        match (self.left.extract(earlier), self.right.extract(current)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

mod wire_impls {
    //! Checkpoint wire encodings for the predicate classes. Every
    //! closed predicate form round-trips; only
    //! [`UnaryPredicate::Custom`](super::UnaryPredicate::Custom)
    //! refuses to encode (a closure has no portable representation), so
    //! queries built from the HCQ compiler or the pattern language —
    //! which emit closed forms exclusively — always snapshot.

    use super::*;
    use cer_common::wire::{Wire, WireError, WireReader, WireWriter};

    impl Wire for PosGroup {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            self.positions.encode(w)?;
            self.constant.encode(w)
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(PosGroup {
                positions: Wire::decode(r)?,
                constant: Wire::decode(r)?,
            })
        }
    }

    impl Wire for ExtractorEntry {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            self.checks.encode(w)?;
            self.key.encode(w)
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(ExtractorEntry {
                checks: Wire::decode(r)?,
                key: Wire::decode(r)?,
            })
        }
    }

    impl Wire for KeyExtractor {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            // Hash-map iteration order is arbitrary; sort by relation id
            // so identical extractors encode to identical bytes.
            let mut entries: Vec<(&RelationId, &ExtractorEntry)> = self.entries.iter().collect();
            entries.sort_by_key(|(rel, _)| **rel);
            w.put_len(entries.len());
            for (rel, entry) in entries {
                rel.encode(w)?;
                entry.encode(w)?;
            }
            Ok(())
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            let n = r.get_len()?;
            let mut out = KeyExtractor::new();
            for _ in 0..n {
                let rel = RelationId::decode(r)?;
                out.insert(rel, ExtractorEntry::decode(r)?);
            }
            Ok(out)
        }
    }

    impl Wire for EqPredicate {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            self.left.encode(w)?;
            self.right.encode(w)
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(EqPredicate {
                left: Wire::decode(r)?,
                right: Wire::decode(r)?,
            })
        }
    }

    impl Wire for PatTerm {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            match self {
                PatTerm::Var(v) => {
                    w.put_u8(0);
                    w.put_u32(*v);
                }
                PatTerm::Const(c) => {
                    w.put_u8(1);
                    c.encode(w)?;
                }
            }
            Ok(())
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            match r.get_u8()? {
                0 => Ok(PatTerm::Var(r.get_u32()?)),
                1 => Ok(PatTerm::Const(Wire::decode(r)?)),
                _ => Err(WireError::Corrupt("pattern term tag")),
            }
        }
    }

    impl Wire for AtomPattern {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            self.relation.encode(w)?;
            self.terms.encode(w)
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(AtomPattern {
                relation: Wire::decode(r)?,
                terms: Wire::decode(r)?,
            })
        }
    }

    impl Wire for CmpOp {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            w.put_u8(match self {
                CmpOp::Lt => 0,
                CmpOp::Le => 1,
                CmpOp::Eq => 2,
                CmpOp::Ne => 3,
                CmpOp::Ge => 4,
                CmpOp::Gt => 5,
            });
            Ok(())
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(match r.get_u8()? {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                2 => CmpOp::Eq,
                3 => CmpOp::Ne,
                4 => CmpOp::Ge,
                5 => CmpOp::Gt,
                _ => return Err(WireError::Corrupt("cmp op tag")),
            })
        }
    }

    /// Nesting bound for `And` during decode: snapshot bytes come from
    /// disk or the network, and unbounded recursion would let a
    /// crafted ~1 MB blob of nested `And` tags overflow the stack
    /// (an abort, not a `WireError`). Real predicates are flat or a
    /// few levels deep — `UnaryPredicate::and` flattens as it builds.
    const MAX_UNARY_DEPTH: u32 = 64;

    fn decode_unary(r: &mut WireReader<'_>, depth: u32) -> Result<UnaryPredicate, WireError> {
        if depth > MAX_UNARY_DEPTH {
            return Err(WireError::Corrupt("unary predicate nested too deeply"));
        }
        Ok(match r.get_u8()? {
            0 => UnaryPredicate::True,
            1 => UnaryPredicate::Relation(Wire::decode(r)?),
            2 => UnaryPredicate::OneOf(Wire::decode(r)?),
            3 => UnaryPredicate::Atom(Wire::decode(r)?),
            4 => UnaryPredicate::Groups {
                relation: Wire::decode(r)?,
                arity: Wire::decode(r)?,
                groups: Wire::decode(r)?,
            },
            5 => UnaryPredicate::Cmp {
                pos: Wire::decode(r)?,
                op: Wire::decode(r)?,
                value: Wire::decode(r)?,
            },
            6 => {
                let n = r.get_len()?;
                let mut conjuncts = Vec::with_capacity(n.min(1 << 10));
                for _ in 0..n {
                    conjuncts.push(decode_unary(r, depth + 1)?);
                }
                UnaryPredicate::And(conjuncts.into())
            }
            _ => return Err(WireError::Corrupt("unary predicate tag")),
        })
    }

    impl Wire for UnaryPredicate {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            match self {
                UnaryPredicate::True => w.put_u8(0),
                UnaryPredicate::Relation(rel) => {
                    w.put_u8(1);
                    rel.encode(w)?;
                }
                UnaryPredicate::OneOf(rels) => {
                    w.put_u8(2);
                    rels.encode(w)?;
                }
                UnaryPredicate::Atom(p) => {
                    w.put_u8(3);
                    p.encode(w)?;
                }
                UnaryPredicate::Groups {
                    relation,
                    arity,
                    groups,
                } => {
                    w.put_u8(4);
                    relation.encode(w)?;
                    arity.encode(w)?;
                    groups.encode(w)?;
                }
                UnaryPredicate::Cmp { pos, op, value } => {
                    w.put_u8(5);
                    pos.encode(w)?;
                    op.encode(w)?;
                    value.encode(w)?;
                }
                UnaryPredicate::And(ps) => {
                    w.put_u8(6);
                    ps.encode(w)?;
                }
                UnaryPredicate::Custom(_) => {
                    return Err(WireError::Unsupported(
                        "UnaryPredicate::Custom (closure predicates have no portable encoding)",
                    ));
                }
            }
            Ok(())
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            decode_unary(r, 0)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use cer_common::wire::Wire;

        #[test]
        fn deeply_nested_and_bytes_error_instead_of_overflowing() {
            // ~100k levels of `And([..])`, 9 bytes each: tag 6 + len 1.
            let mut w = WireWriter::new();
            let levels = 100_000u32;
            for _ in 0..levels {
                w.put_u8(6);
                w.put_len(1);
            }
            w.put_u8(0); // innermost: True
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(
                UnaryPredicate::decode(&mut r).unwrap_err(),
                WireError::Corrupt("unary predicate nested too deeply")
            );
            // A realistically nested conjunction still round-trips
            // (UnaryPredicate has no PartialEq — closures — so compare
            // the Debug rendering).
            let nested = UnaryPredicate::And(Box::new([
                UnaryPredicate::True,
                UnaryPredicate::And(Box::new([UnaryPredicate::True, UnaryPredicate::True])),
            ]));
            let mut w = WireWriter::new();
            nested.encode(&mut w).unwrap();
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = UnaryPredicate::decode(&mut r).unwrap();
            assert_eq!(format!("{back:?}"), format!("{nested:?}"));
        }
    }
}

/// A term of an atom pattern: a variable (identified by an arbitrary
/// per-pattern index) or a constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PatTerm {
    /// Variable occurrence; equal indices must carry equal values.
    Var(u32),
    /// Constant that the tuple must match exactly.
    Const(Value),
}

/// A relational atom pattern `R(x, y, 2, x)`: the unary predicate
/// `U_{R(x̄)} = {R(ā) | ∃h. h(R(x̄)) = R(ā)}` of the Theorem 4.1
/// construction.
///
/// A tuple matches iff it has the pattern's relation, positions sharing a
/// variable hold equal values, and constant positions hold the constants —
/// exactly "`t` is homomorphic to the atom", checked in linear time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AtomPattern {
    /// The relation the pattern constrains.
    pub relation: RelationId,
    /// One term per attribute position.
    pub terms: Box<[PatTerm]>,
}

impl AtomPattern {
    /// Build a pattern with all-distinct variables (relation test only).
    pub fn any_vars(relation: RelationId, arity: usize) -> Self {
        AtomPattern {
            relation,
            terms: (0..arity as u32).map(PatTerm::Var).collect(),
        }
    }

    /// Whether `t` is homomorphic to the pattern.
    pub fn matches(&self, t: &Tuple) -> bool {
        if t.relation() != self.relation || t.arity() != self.terms.len() {
            return false;
        }
        // First occurrence position of each variable index.
        for (i, term) in self.terms.iter().enumerate() {
            match term {
                PatTerm::Const(c) => {
                    if t.get(i) != c {
                        return false;
                    }
                }
                PatTerm::Var(v) => {
                    // Compare against the first position holding the same var.
                    let first = self
                        .terms
                        .iter()
                        .position(|u| matches!(u, PatTerm::Var(w) if w == v))
                        .expect("variable occurs at least at position i");
                    if first < i && t.get(first) != t.get(i) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Comparison operators for the [`UnaryPredicate::Cmp`] filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Evaluate the comparison on two values (total order on `Value`).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
        }
    }
}

/// A unary predicate `U ∈ Ulin`: decidable in time linear in `|t|`.
///
/// The closed variants cover everything the paper's constructions need
/// (relation tests, atom homomorphism tests, constant filters); `Custom`
/// opens the class to arbitrary user filters, as `Ulin` itself is open.
#[derive(Clone)]
pub enum UnaryPredicate {
    /// Every tuple (`Tuples[σ]` itself).
    True,
    /// Tuples of one relation, e.g. the paper's `T`, `S`, `R`.
    Relation(RelationId),
    /// Tuples of any of the listed relations (the paper's `?xy`).
    OneOf(Box<[RelationId]>),
    /// Homomorphism test against an atom pattern (`U_{R(x̄)}`).
    Atom(AtomPattern),
    /// Within-tuple consistency groups (the derived-atom test `U_A` of
    /// Lemma B.3), restricted to one relation.
    Groups {
        /// Relation the tuple must have.
        relation: RelationId,
        /// Required arity.
        arity: usize,
        /// Equality/constant classes that must hold.
        groups: Box<[PosGroup]>,
    },
    /// Compare the value at a position against a constant.
    Cmp {
        /// Position compared.
        pos: usize,
        /// Operator.
        op: CmpOp,
        /// Right-hand constant.
        value: Value,
    },
    /// Conjunction of predicates.
    And(Box<[UnaryPredicate]>),
    /// An arbitrary user filter (must run in linear time to stay in
    /// `Ulin`; not enforced).
    Custom(Arc<dyn Fn(&Tuple) -> bool + Send + Sync>),
}

impl UnaryPredicate {
    /// Decide `t ∈ U`.
    pub fn matches(&self, t: &Tuple) -> bool {
        match self {
            UnaryPredicate::True => true,
            UnaryPredicate::Relation(r) => t.relation() == *r,
            UnaryPredicate::OneOf(rs) => rs.contains(&t.relation()),
            UnaryPredicate::Atom(p) => p.matches(t),
            UnaryPredicate::Groups {
                relation,
                arity,
                groups,
            } => {
                t.relation() == *relation
                    && t.arity() == *arity
                    && groups.iter().all(|g| g.holds(t))
            }
            UnaryPredicate::Cmp { pos, op, value } => {
                *pos < t.arity() && op.eval(t.get(*pos), value)
            }
            UnaryPredicate::And(ps) => ps.iter().all(|p| p.matches(t)),
            UnaryPredicate::Custom(f) => f(t),
        }
    }

    /// The relations whose tuples can possibly satisfy the predicate:
    /// `None` when the predicate is not confined to known relations
    /// (`True`, `Cmp`, `Custom`). Used by the multi-query runtime to
    /// route stream tuples only to interested queries.
    pub fn relations(&self) -> Option<Vec<RelationId>> {
        match self {
            UnaryPredicate::True | UnaryPredicate::Cmp { .. } | UnaryPredicate::Custom(_) => None,
            UnaryPredicate::Relation(r) => Some(vec![*r]),
            UnaryPredicate::OneOf(rs) => Some(rs.to_vec()),
            UnaryPredicate::Atom(p) => Some(vec![p.relation]),
            UnaryPredicate::Groups { relation, .. } => Some(vec![*relation]),
            UnaryPredicate::And(ps) => {
                // A conjunction is confined to the intersection of its
                // confined conjuncts (any one suffices as a sound
                // over-approximation; intersect for precision).
                let mut acc: Option<Vec<RelationId>> = None;
                for p in ps.iter() {
                    if let Some(rs) = p.relations() {
                        acc = Some(match acc {
                            None => rs,
                            Some(prev) => prev.into_iter().filter(|r| rs.contains(r)).collect(),
                        });
                    }
                }
                acc
            }
        }
    }

    /// Whether tuples of `r` can never satisfy the predicate. Sound but
    /// incomplete: `false` means "maybe matches". Unconfined forms
    /// (`True`, `Cmp`, `Custom`) never reject.
    pub fn rejects_relation(&self, r: RelationId) -> bool {
        match self {
            UnaryPredicate::True | UnaryPredicate::Cmp { .. } | UnaryPredicate::Custom(_) => false,
            UnaryPredicate::Relation(x) => *x != r,
            UnaryPredicate::OneOf(rs) => !rs.contains(&r),
            UnaryPredicate::Atom(p) => p.relation != r,
            UnaryPredicate::Groups { relation, .. } => *relation != r,
            UnaryPredicate::And(ps) => ps.iter().any(|p| p.rejects_relation(r)),
        }
    }

    /// The structural canonical key of this predicate: two predicates
    /// with equal keys are semantically identical (for `Custom`, only
    /// the *same closure allocation* — `Arc` identity — keys equal).
    /// This is what the runtime's per-shard predicate cache dedups on.
    pub fn canonical_key(&self) -> PredicateKey {
        PredicateKey(self.clone())
    }
}

/// Structural identity wrapper for [`UnaryPredicate`], usable as a hash
/// map key. Closed forms compare structurally; [`UnaryPredicate::Custom`]
/// compares by `Arc` pointer identity (the same closure allocation), the
/// only sound notion of equality for opaque closures.
#[derive(Clone, Debug)]
pub struct PredicateKey(pub UnaryPredicate);

impl PartialEq for PredicateKey {
    fn eq(&self, other: &Self) -> bool {
        fn eq(a: &UnaryPredicate, b: &UnaryPredicate) -> bool {
            use UnaryPredicate as U;
            match (a, b) {
                (U::True, U::True) => true,
                (U::Relation(x), U::Relation(y)) => x == y,
                (U::OneOf(x), U::OneOf(y)) => x == y,
                (U::Atom(x), U::Atom(y)) => x == y,
                (
                    U::Groups {
                        relation: r1,
                        arity: a1,
                        groups: g1,
                    },
                    U::Groups {
                        relation: r2,
                        arity: a2,
                        groups: g2,
                    },
                ) => r1 == r2 && a1 == a2 && g1 == g2,
                (
                    U::Cmp {
                        pos: p1,
                        op: o1,
                        value: v1,
                    },
                    U::Cmp {
                        pos: p2,
                        op: o2,
                        value: v2,
                    },
                ) => p1 == p2 && o1 == o2 && v1 == v2,
                (U::And(xs), U::And(ys)) => {
                    xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| eq(x, y))
                }
                // Compare thin data pointers: `Arc::ptr_eq` on wide
                // `dyn Fn` pointers also compares vtables, which is both
                // stricter than needed and lint-prone.
                (U::Custom(f), U::Custom(g)) => {
                    std::ptr::eq(Arc::as_ptr(f) as *const (), Arc::as_ptr(g) as *const ())
                }
                _ => false,
            }
        }
        eq(&self.0, &other.0)
    }
}

impl Eq for PredicateKey {}

impl std::hash::Hash for PredicateKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        fn hash<H: std::hash::Hasher>(p: &UnaryPredicate, state: &mut H) {
            use UnaryPredicate as U;
            match p {
                U::True => 0u8.hash(state),
                U::Relation(r) => {
                    1u8.hash(state);
                    r.hash(state);
                }
                U::OneOf(rs) => {
                    2u8.hash(state);
                    rs.hash(state);
                }
                U::Atom(a) => {
                    3u8.hash(state);
                    a.hash(state);
                }
                U::Groups {
                    relation,
                    arity,
                    groups,
                } => {
                    4u8.hash(state);
                    relation.hash(state);
                    arity.hash(state);
                    groups.hash(state);
                }
                U::Cmp { pos, op, value } => {
                    5u8.hash(state);
                    pos.hash(state);
                    op.hash(state);
                    value.hash(state);
                }
                U::And(ps) => {
                    6u8.hash(state);
                    ps.len().hash(state);
                    for q in ps.iter() {
                        hash(q, state);
                    }
                }
                U::Custom(f) => {
                    7u8.hash(state);
                    (Arc::as_ptr(f) as *const () as usize).hash(state);
                }
            }
        }
        hash(&self.0, state);
    }
}

impl UnaryPredicate {
    /// Conjunction helper that flattens nested `And`s.
    pub fn and(self, other: UnaryPredicate) -> UnaryPredicate {
        match (self, other) {
            (UnaryPredicate::True, p) | (p, UnaryPredicate::True) => p,
            (UnaryPredicate::And(a), UnaryPredicate::And(b)) => {
                UnaryPredicate::And(a.iter().cloned().chain(b.iter().cloned()).collect())
            }
            (UnaryPredicate::And(a), p) => {
                UnaryPredicate::And(a.iter().cloned().chain([p]).collect())
            }
            (p, UnaryPredicate::And(b)) => {
                UnaryPredicate::And([p].into_iter().chain(b.iter().cloned()).collect())
            }
            (p, q) => UnaryPredicate::And(Box::new([p, q])),
        }
    }
}

impl fmt::Debug for UnaryPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryPredicate::True => write!(f, "⊤"),
            UnaryPredicate::Relation(r) => write!(f, "{r:?}"),
            UnaryPredicate::OneOf(rs) => write!(f, "one-of{rs:?}"),
            UnaryPredicate::Atom(p) => write!(f, "atom({:?}, {:?})", p.relation, p.terms),
            UnaryPredicate::Groups {
                relation, groups, ..
            } => write!(f, "groups({relation:?}, {groups:?})"),
            UnaryPredicate::Cmp { pos, op, value } => write!(f, "t[{pos}] {op:?} {value:?}"),
            UnaryPredicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p:?}")?;
                }
                write!(f, ")")
            }
            UnaryPredicate::Custom(_) => write!(f, "custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::tuple::tup;
    use cer_common::Schema;

    #[test]
    fn relation_predicate_filters() {
        let (_, r, s, t) = Schema::sigma0();
        let u = UnaryPredicate::Relation(t);
        assert!(u.matches(&tup(t, [2i64])));
        assert!(!u.matches(&tup(s, [2i64, 11])));
        let any = UnaryPredicate::OneOf(Box::new([r, s]));
        assert!(any.matches(&tup(r, [1i64, 2])));
        assert!(any.matches(&tup(s, [1i64, 2])));
        assert!(!any.matches(&tup(t, [1i64])));
    }

    #[test]
    fn atom_pattern_repeated_vars_and_constants() {
        let (_, r, _, _) = Schema::sigma0();
        // Pattern R(x, x): both positions equal.
        let p = AtomPattern {
            relation: r,
            terms: Box::new([PatTerm::Var(0), PatTerm::Var(0)]),
        };
        assert!(p.matches(&tup(r, [5i64, 5])));
        assert!(!p.matches(&tup(r, [5i64, 6])));
        // Pattern R(2, y): constant in first position.
        let q = AtomPattern {
            relation: r,
            terms: Box::new([PatTerm::Const(Value::Int(2)), PatTerm::Var(0)]),
        };
        assert!(q.matches(&tup(r, [2i64, 9])));
        assert!(!q.matches(&tup(r, [3i64, 9])));
    }

    #[test]
    fn atom_pattern_rejects_wrong_relation_or_arity() {
        let (_, r, s, _) = Schema::sigma0();
        let p = AtomPattern::any_vars(r, 2);
        assert!(p.matches(&tup(r, [1i64, 2])));
        assert!(!p.matches(&tup(s, [1i64, 2])));
        let short = AtomPattern::any_vars(r, 1);
        assert!(!short.matches(&tup(r, [1i64, 2])));
    }

    #[test]
    fn eq_predicate_paper_example_tx_sxy() {
        // (Tx, Sxy): ⃗B(T(a)) = a, ⃖B(S(a,b)) = a.
        let (_, _, s, t) = Schema::sigma0();
        let b = EqPredicate::on_positions(t, [0usize], s, [0usize]);
        assert!(b.satisfied(&tup(t, [2i64]), &tup(s, [2i64, 11])));
        assert!(!b.satisfied(&tup(t, [1i64]), &tup(s, [2i64, 11])));
        // Undefined on the wrong relations.
        assert!(!b.satisfied(&tup(s, [2i64, 11]), &tup(t, [2i64])));
    }

    #[test]
    fn eq_predicate_multi_position_key() {
        let (_, r, s, _) = Schema::sigma0();
        let b = EqPredicate::on_positions(s, [0usize, 1], r, [0usize, 1]);
        assert!(b.satisfied(&tup(s, [2i64, 11]), &tup(r, [2i64, 11])));
        assert!(!b.satisfied(&tup(s, [2i64, 11]), &tup(r, [2i64, 12])));
    }

    #[test]
    fn empty_key_predicate_is_always_true_on_domain() {
        let (_, r, s, _) = Schema::sigma0();
        let b = EqPredicate::new(
            KeyExtractor::projection(s, Vec::new()),
            KeyExtractor::projection(r, Vec::new()),
        );
        assert!(b.satisfied(&tup(s, [1i64, 2]), &tup(r, [9i64, 9])));
        // Still partial: undefined outside the entry relations.
        assert!(!b.satisfied(&tup(r, [1i64, 2]), &tup(r, [9i64, 9])));
    }

    #[test]
    fn extractor_checks_gate_definedness() {
        let (_, r, _, _) = Schema::sigma0();
        let mut ex = KeyExtractor::new();
        ex.insert(
            r,
            ExtractorEntry {
                checks: Box::new([PosGroup {
                    positions: Box::new([0, 1]),
                    constant: None,
                }]),
                key: Box::new([0]),
            },
        );
        assert_eq!(
            ex.extract(&tup(r, [4i64, 4])),
            Some(Box::from([Value::Int(4)]))
        );
        assert_eq!(ex.extract(&tup(r, [4i64, 5])), None);
    }

    #[test]
    fn pos_group_constant() {
        let (_, r, _, _) = Schema::sigma0();
        let g = PosGroup {
            positions: Box::new([1]),
            constant: Some(Value::Int(7)),
        };
        assert!(g.holds(&tup(r, [0i64, 7])));
        assert!(!g.holds(&tup(r, [7i64, 0])));
    }

    #[test]
    fn cmp_predicate() {
        let (_, r, _, _) = Schema::sigma0();
        let u = UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Gt,
            value: Value::Int(10),
        };
        assert!(u.matches(&tup(r, [0i64, 11])));
        assert!(!u.matches(&tup(r, [0i64, 10])));
    }

    #[test]
    fn and_flattens_and_custom_runs() {
        let (_, r, _, _) = Schema::sigma0();
        let u = UnaryPredicate::Relation(r)
            .and(UnaryPredicate::Cmp {
                pos: 0,
                op: CmpOp::Ge,
                value: Value::Int(0),
            })
            .and(UnaryPredicate::Custom(Arc::new(|t: &Tuple| t.arity() == 2)));
        assert!(u.matches(&tup(r, [1i64, 2])));
        if let UnaryPredicate::And(ps) = &u {
            assert_eq!(ps.len(), 3, "nested ands flattened");
        } else {
            panic!("expected And");
        }
    }

    #[test]
    fn true_is_identity_for_and() {
        let (_, r, _, _) = Schema::sigma0();
        let u = UnaryPredicate::True.and(UnaryPredicate::Relation(r));
        assert!(matches!(u, UnaryPredicate::Relation(_)));
    }

    #[test]
    fn groups_predicate_checks_relation_arity_groups() {
        let (_, r, s, _) = Schema::sigma0();
        let u = UnaryPredicate::Groups {
            relation: r,
            arity: 2,
            groups: Box::new([PosGroup {
                positions: Box::new([0, 1]),
                constant: None,
            }]),
        };
        assert!(u.matches(&tup(r, [3i64, 3])));
        assert!(!u.matches(&tup(r, [3i64, 4])));
        assert!(!u.matches(&tup(s, [3i64, 3])));
    }

    #[test]
    fn canonical_keys_dedup_structural_forms() {
        use std::collections::HashSet;
        let (_, r, s, t) = Schema::sigma0();
        let cmp = |v: i64| UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Ge,
            value: Value::Int(v),
        };
        // Structurally identical predicates built independently key equal.
        let a = UnaryPredicate::Relation(s).and(cmp(5));
        let b = UnaryPredicate::Relation(s).and(cmp(5));
        assert_eq!(a.canonical_key(), b.canonical_key());
        let mut set = HashSet::new();
        for p in [
            UnaryPredicate::True,
            UnaryPredicate::Relation(r),
            UnaryPredicate::Relation(r), // duplicate
            UnaryPredicate::Relation(t),
            a,
            b, // duplicate
            cmp(5),
            cmp(6),
            UnaryPredicate::OneOf(Box::new([r, s])),
            UnaryPredicate::Atom(AtomPattern::any_vars(r, 2)),
        ] {
            set.insert(p.canonical_key());
        }
        assert_eq!(set.len(), 8, "two structural duplicates collapse");
    }

    #[test]
    fn custom_predicates_key_by_arc_identity() {
        let f: Arc<dyn Fn(&Tuple) -> bool + Send + Sync> = Arc::new(|_| true);
        let g: Arc<dyn Fn(&Tuple) -> bool + Send + Sync> = Arc::new(|_| true);
        let p1 = UnaryPredicate::Custom(f.clone());
        let p2 = UnaryPredicate::Custom(f);
        let p3 = UnaryPredicate::Custom(g);
        assert_eq!(p1.canonical_key(), p2.canonical_key());
        assert_ne!(p1.canonical_key(), p3.canonical_key());
    }

    #[test]
    fn rejects_relation_is_sound() {
        let (_, r, s, t) = Schema::sigma0();
        assert!(!UnaryPredicate::True.rejects_relation(r));
        assert!(UnaryPredicate::Relation(s).rejects_relation(r));
        assert!(!UnaryPredicate::Relation(s).rejects_relation(s));
        assert!(UnaryPredicate::OneOf(Box::new([r, s])).rejects_relation(t));
        assert!(!UnaryPredicate::OneOf(Box::new([r, s])).rejects_relation(s));
        let conj = UnaryPredicate::Relation(s).and(UnaryPredicate::Cmp {
            pos: 0,
            op: CmpOp::Ge,
            value: Value::Int(0),
        });
        assert!(conj.rejects_relation(r));
        assert!(!conj.rejects_relation(s));
        let custom = UnaryPredicate::Custom(Arc::new(|_| false));
        assert!(!custom.rejects_relation(r), "opaque closures never reject");
    }

    #[test]
    fn out_of_range_positions_are_undefined_not_panics() {
        let (_, _, _, t) = Schema::sigma0();
        let ex = KeyExtractor::projection(t, [3usize]);
        assert_eq!(ex.extract(&tup(t, [1i64])), None);
        let u = UnaryPredicate::Cmp {
            pos: 5,
            op: CmpOp::Eq,
            value: Value::Int(0),
        };
        assert!(!u.matches(&tup(t, [1i64])));
    }
}

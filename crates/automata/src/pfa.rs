//! Parallelized Finite Automata (Section 3).
//!
//! A PFA transition `(P, a, q) ∈ ∆ ⊆ 2^Q × Σ × Q` fires from a *set* of
//! source states: a run is a tree whose leaves (all at depth `n`) carry
//! initial states and where a node's children carry exactly the states of
//! some transition's source set. PFAs are the paper's vehicle for
//! introducing *parallelization* before lifting it to CER automata
//! ([`Pcea`](crate::pcea::Pcea)).
//!
//! [`Pfa::accepts`] runs the forward subset simulation from the proof of
//! Proposition 3.2 (`δ(P, a) = {q | ∃P′ ⊆ P. (P′, a, q) ∈ ∆}`), and
//! [`Pfa::to_dfa`] materializes that construction — at most `2^n` states.
//! [`Pfa::run_trees`] enumerates explicit run trees for small inputs,
//! serving as the oracle that the subset semantics is faithful.

use cer_common::hash::FxHashSet;
use std::fmt;

/// A PFA transition `(P, a, q)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PfaTransition {
    /// Source-state set `P` (sorted, possibly empty).
    pub sources: Box<[usize]>,
    /// Input symbol.
    pub symbol: u32,
    /// Target state.
    pub target: usize,
}

/// A parallelized finite automaton `(Q, Σ, ∆, I, F)`.
#[derive(Clone, Debug, Default)]
pub struct Pfa {
    num_states: usize,
    transitions: Vec<PfaTransition>,
    initial: Vec<usize>,
    finals: Vec<usize>,
}

/// An explicit PFA run tree: the state at this node plus one subtree per
/// child (children carry pairwise-distinct states).
#[derive(Clone, PartialEq, Eq)]
pub struct RunTree {
    /// State labeling the node.
    pub state: usize,
    /// Child subtrees (empty at leaves).
    pub children: Vec<RunTree>,
}

impl fmt::Debug for RunTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.children.is_empty() {
            write!(f, "{}", self.state)
        } else {
            write!(f, "{}{:?}", self.state, self.children)
        }
    }
}

impl Pfa {
    /// An automaton with `num_states` states and nothing else.
    pub fn new(num_states: usize) -> Self {
        Pfa {
            num_states,
            ..Self::default()
        }
    }

    /// Number of states `|Q|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The size `|P| = |Q| + Σ (|P| + 1)` of the paper.
    pub fn size(&self) -> usize {
        self.num_states
            + self
                .transitions
                .iter()
                .map(|t| t.sources.len() + 1)
                .sum::<usize>()
    }

    /// Add a transition `(P, a, q)`; `sources` is sorted and deduplicated.
    ///
    /// `sources` must be non-empty: in a PFA every leaf of a run tree sits
    /// at depth `n`, so a node produced by an `∅`-source transition (a
    /// childless inner node) can never occur in a valid run. Runs *start*
    /// at initial states instead. (PCEA differs: there `∅`-source
    /// transitions play the role of the initial function, because PCEA
    /// leaves may sit at any depth.)
    pub fn add_transition(&mut self, sources: impl Into<Vec<usize>>, symbol: u32, target: usize) {
        let mut sources = sources.into();
        sources.sort_unstable();
        sources.dedup();
        assert!(
            !sources.is_empty(),
            "PFA transitions need non-empty sources"
        );
        assert!(
            target < self.num_states && sources.iter().all(|&p| p < self.num_states),
            "state out of range"
        );
        self.transitions.push(PfaTransition {
            sources: sources.into(),
            symbol,
            target,
        });
    }

    /// Mark a state initial.
    pub fn add_initial(&mut self, q: usize) {
        assert!(q < self.num_states, "state out of range");
        if !self.initial.contains(&q) {
            self.initial.push(q);
        }
    }

    /// Mark a state final.
    pub fn add_final(&mut self, q: usize) {
        assert!(q < self.num_states, "state out of range");
        if !self.finals.contains(&q) {
            self.finals.push(q);
        }
    }

    /// All transitions.
    pub fn transitions(&self) -> &[PfaTransition] {
        &self.transitions
    }

    /// Embed an NFA: a PFA whose source sets are singletons (plus
    /// `∅`-source transitions replacing the initial function is *not*
    /// needed here — PFA keeps explicit initial states).
    pub fn from_nfa(nfa: &crate::nfa::Nfa) -> Pfa {
        let mut p = Pfa::new(nfa.num_states());
        for &q in nfa.initial() {
            p.add_initial(q);
        }
        for &q in nfa.finals() {
            p.add_final(q);
        }
        for &(a, s, b) in nfa.transitions() {
            p.add_transition(vec![a], s, b);
        }
        p
    }

    /// Forward subset simulation (proof of Proposition 3.2): start from
    /// `I`, apply `δ(P, a) = {q | ∃P′ ⊆ P. (P′, a, q) ∈ ∆}`, accept iff
    /// the final subset intersects `F`.
    pub fn accepts(&self, s: &[u32]) -> bool {
        let mut current: FxHashSet<usize> = self.initial.iter().copied().collect();
        for &a in s {
            let next: FxHashSet<usize> = self
                .transitions
                .iter()
                .filter(|t| t.symbol == a && t.sources.iter().all(|p| current.contains(p)))
                .map(|t| t.target)
                .collect();
            current = next;
        }
        self.finals.iter().any(|f| current.contains(f))
    }

    /// Materialize the Proposition 3.2 subset construction (reachable
    /// part). The result has at most `2^|Q|` states.
    pub fn to_dfa(&self) -> crate::dfa::Dfa {
        let alphabet: Vec<u32> = {
            let mut syms: Vec<u32> = self.transitions.iter().map(|t| t.symbol).collect();
            syms.sort_unstable();
            syms.dedup();
            syms
        };
        let start: Vec<usize> = {
            let mut i = self.initial.clone();
            i.sort_unstable();
            i.dedup();
            i
        };
        crate::dfa::Dfa::determinize(
            start,
            &alphabet,
            |set, a| {
                let mut next: Vec<usize> = self
                    .transitions
                    .iter()
                    .filter(|t| {
                        t.symbol == a && t.sources.iter().all(|p| set.binary_search(p).is_ok())
                    })
                    .map(|t| t.target)
                    .collect();
                next.sort_unstable();
                next.dedup();
                next
            },
            |set| self.finals.iter().any(|f| set.binary_search(f).is_ok()),
        )
    }

    /// Enumerate all *accepting* run trees over `s` (exponential; oracle
    /// for tests). Each returned tree is rooted at a final state, has all
    /// leaves at depth `|s|` labeled with initial states, and each inner
    /// node at depth `d` consumes symbol `s[|s| - 1 - d]`.
    pub fn run_trees(&self, s: &[u32]) -> Vec<RunTree> {
        self.finals
            .iter()
            .flat_map(|&f| self.trees_at(f, s))
            .collect()
    }

    /// All run subtrees rooted at `state` consuming the whole of `s`
    /// (leaves at depth `|s|` from this root).
    fn trees_at(&self, state: usize, s: &[u32]) -> Vec<RunTree> {
        if s.is_empty() {
            return if self.initial.contains(&state) {
                vec![RunTree {
                    state,
                    children: Vec::new(),
                }]
            } else {
                Vec::new()
            };
        }
        let (prefix, last) = s.split_at(s.len() - 1);
        let a = last[0];
        let mut out = Vec::new();
        for t in &self.transitions {
            if t.target != state || t.symbol != a {
                continue;
            }
            // One subtree per source state, each consuming the prefix.
            let choices: Vec<Vec<RunTree>> = t
                .sources
                .iter()
                .map(|&p| self.trees_at(p, prefix))
                .collect();
            if choices.iter().any(Vec::is_empty) {
                continue;
            }
            // Cross product of child choices.
            let mut combos: Vec<Vec<RunTree>> = vec![Vec::new()];
            for c in &choices {
                combos = combos
                    .into_iter()
                    .flat_map(|base| {
                        c.iter().map(move |tree| {
                            let mut b = base.clone();
                            b.push(tree.clone());
                            b
                        })
                    })
                    .collect();
            }
            out.extend(
                combos
                    .into_iter()
                    .map(|children| RunTree { state, children }),
            );
        }
        out
    }

    /// The paper's example `P0` (Figure 1, left) over `Σ = {T, S, R}`
    /// encoded as symbols `T=0, S=1, R=2`: strings containing a `T` and an
    /// `S` (in any order) before an `R`.
    pub fn paper_p0() -> Pfa {
        let (t, s, r) = (0u32, 1, 2);
        let mut p = Pfa::new(5);
        // States p0..p4 as in Figure 1.
        p.add_initial(0);
        p.add_initial(2);
        p.add_final(4);
        for a in [t, s, r] {
            p.add_transition(vec![0], a, 0); // p0 --Σ--> p0
            p.add_transition(vec![1], a, 1); // p1 --Σ--> p1
            p.add_transition(vec![2], a, 2); // p2 --Σ--> p2
            p.add_transition(vec![3], a, 3); // p3 --Σ--> p3
            p.add_transition(vec![4], a, 4); // p4 --Σ--> p4
        }
        p.add_transition(vec![0], t, 1); // upper branch reads T
        p.add_transition(vec![2], s, 3); // lower branch reads S
        p.add_transition(vec![1, 3], r, 4); // parallel join on R
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u32 = 0;
    const S: u32 = 1;
    const R: u32 = 2;

    #[test]
    fn paper_p0_language() {
        let p = Pfa::paper_p0();
        // T and S (any order) before an R.
        assert!(p.accepts(&[T, S, R]));
        assert!(p.accepts(&[S, T, R]));
        assert!(p.accepts(&[S, S, T, R, S]));
        assert!(!p.accepts(&[T, R]));
        assert!(!p.accepts(&[S, R]));
        assert!(!p.accepts(&[R, T, S]));
        assert!(!p.accepts(&[]));
    }

    #[test]
    fn subset_semantics_agrees_with_run_trees() {
        let p = Pfa::paper_p0();
        for len in 0..=5usize {
            let count = 3usize.pow(len as u32);
            for mut code in 0..count {
                let mut s = Vec::with_capacity(len);
                for _ in 0..len {
                    s.push((code % 3) as u32);
                    code /= 3;
                }
                let by_trees = !p.run_trees(&s).is_empty();
                assert_eq!(p.accepts(&s), by_trees, "disagree on {s:?}");
            }
        }
    }

    #[test]
    fn run_tree_shape_matches_figure_1() {
        let p = Pfa::paper_p0();
        let trees = p.run_trees(&[T, S, R]);
        assert!(!trees.is_empty());
        // Every accepting tree is rooted at p4 with two parallel branches.
        for tree in &trees {
            assert_eq!(tree.state, 4);
            assert_eq!(tree.children.len(), 2);
            let states: Vec<usize> = tree.children.iter().map(|c| c.state).collect();
            assert!(states.contains(&1) && states.contains(&3));
        }
    }

    #[test]
    fn determinization_bounded_and_equivalent() {
        let p = Pfa::paper_p0();
        let d = p.to_dfa();
        assert!(d.num_states() <= 1 << p.num_states());
        for len in 0..=6usize {
            let count = 3usize.pow(len as u32);
            for mut code in 0..count {
                let mut s = Vec::with_capacity(len);
                for _ in 0..len {
                    s.push((code % 3) as u32);
                    code /= 3;
                }
                assert_eq!(p.accepts(&s), d.accepts(&s), "disagree on {s:?}");
            }
        }
    }

    #[test]
    fn nfa_embedding_preserves_language() {
        let mut n = crate::nfa::Nfa::new(2);
        n.add_initial(0);
        n.add_final(1);
        n.add_transition(0, 7, 1);
        n.add_transition(1, 7, 1);
        let p = Pfa::from_nfa(&n);
        assert!(p.accepts(&[7]));
        assert!(p.accepts(&[7, 7, 7]));
        assert!(!p.accepts(&[]));
        assert!(!p.accepts(&[8]));
    }

    #[test]
    #[should_panic(expected = "non-empty sources")]
    fn empty_source_transitions_rejected() {
        // ∅-source transitions would make the subset simulation diverge
        // from run-tree semantics (their target node would be a childless
        // "inner" node), so construction rejects them.
        let mut p = Pfa::new(2);
        p.add_transition(Vec::<usize>::new(), 9, 1);
    }

    #[test]
    fn size_measure() {
        let mut p = Pfa::new(3);
        p.add_transition(vec![0, 1], 0, 2);
        p.add_transition(vec![2], 1, 0);
        // |Q| + (|P1| + 1) + (|P2| + 1) = 3 + 3 + 2.
        assert_eq!(p.size(), 8);
    }
}

//! Classical non-deterministic finite automata (Section 2 "Strings and
//! NFA").
//!
//! The paper uses NFAs as the yardstick for [`Pfa`](crate::pfa::Pfa):
//! every NFA is a PFA whose run trees are lines, and Proposition 3.2 shows
//! PFAs recognize exactly the regular languages. States are dense `usize`
//! indices and alphabet symbols are `u32`, which is all the constructions
//! need; callers keep their own symbol names.

use cer_common::hash::FxHashSet;

/// A non-deterministic finite automaton `(Q, Σ, ∆, I, F)`.
#[derive(Clone, Debug, Default)]
pub struct Nfa {
    num_states: usize,
    transitions: Vec<(usize, u32, usize)>,
    initial: Vec<usize>,
    finals: Vec<usize>,
}

impl Nfa {
    /// An empty automaton with `num_states` states and no transitions.
    pub fn new(num_states: usize) -> Self {
        Nfa {
            num_states,
            ..Self::default()
        }
    }

    /// Number of states `|Q|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Add a fresh state, returning its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Add a transition `(p, a, q) ∈ ∆`.
    pub fn add_transition(&mut self, p: usize, a: u32, q: usize) {
        assert!(
            p < self.num_states && q < self.num_states,
            "state out of range"
        );
        self.transitions.push((p, a, q));
    }

    /// Mark a state initial.
    pub fn add_initial(&mut self, q: usize) {
        assert!(q < self.num_states, "state out of range");
        if !self.initial.contains(&q) {
            self.initial.push(q);
        }
    }

    /// Mark a state final.
    pub fn add_final(&mut self, q: usize) {
        assert!(q < self.num_states, "state out of range");
        if !self.finals.contains(&q) {
            self.finals.push(q);
        }
    }

    /// The initial states `I`.
    pub fn initial(&self) -> &[usize] {
        &self.initial
    }

    /// The final states `F`.
    pub fn finals(&self) -> &[usize] {
        &self.finals
    }

    /// All transitions.
    pub fn transitions(&self) -> &[(usize, u32, usize)] {
        &self.transitions
    }

    /// Whether the automaton accepts the string `s` (subset simulation:
    /// `O(|s| · |∆|)`).
    pub fn accepts(&self, s: &[u32]) -> bool {
        let mut current: FxHashSet<usize> = self.initial.iter().copied().collect();
        for &a in s {
            if current.is_empty() {
                return false;
            }
            let mut next = FxHashSet::default();
            for &(p, b, q) in &self.transitions {
                if b == a && current.contains(&p) {
                    next.insert(q);
                }
            }
            current = next;
        }
        self.finals.iter().any(|f| current.contains(f))
    }

    /// Determinize via the subset construction (reachable part only).
    pub fn to_dfa(&self) -> crate::dfa::Dfa {
        let alphabet: Vec<u32> = {
            let mut syms: Vec<u32> = self.transitions.iter().map(|&(_, a, _)| a).collect();
            syms.sort_unstable();
            syms.dedup();
            syms
        };
        let start: Vec<usize> = {
            let mut i = self.initial.clone();
            i.sort_unstable();
            i.dedup();
            i
        };
        crate::dfa::Dfa::determinize(
            start,
            &alphabet,
            |set, a| {
                let mut next: Vec<usize> = self
                    .transitions
                    .iter()
                    .filter(|&&(p, b, _)| b == a && set.binary_search(&p).is_ok())
                    .map(|&(_, _, q)| q)
                    .collect();
                next.sort_unstable();
                next.dedup();
                next
            },
            |set| self.finals.iter().any(|f| set.binary_search(f).is_ok()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA for strings over {0,1} whose second-to-last symbol is 1.
    fn second_to_last_one() -> Nfa {
        let mut n = Nfa::new(3);
        n.add_initial(0);
        n.add_final(2);
        n.add_transition(0, 0, 0);
        n.add_transition(0, 1, 0);
        n.add_transition(0, 1, 1);
        n.add_transition(1, 0, 2);
        n.add_transition(1, 1, 2);
        n
    }

    #[test]
    fn accepts_matches_language() {
        let n = second_to_last_one();
        assert!(n.accepts(&[1, 0]));
        assert!(n.accepts(&[0, 1, 1]));
        assert!(!n.accepts(&[0, 0]));
        assert!(!n.accepts(&[1]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn determinization_preserves_language() {
        let n = second_to_last_one();
        let d = n.to_dfa();
        // Exhaustively compare on all strings up to length 6.
        for len in 0..=6usize {
            for bits in 0..(1u32 << len) {
                let s: Vec<u32> = (0..len).map(|i| (bits >> i) & 1).collect();
                assert_eq!(n.accepts(&s), d.accepts(&s), "disagree on {s:?}");
            }
        }
        // Classic bound: this NFA needs 2^2 = 4 DFA states.
        assert_eq!(d.num_states(), 4);
    }

    #[test]
    fn no_initial_state_rejects_everything() {
        let mut n = Nfa::new(1);
        n.add_final(0);
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn empty_string_accepted_iff_initial_final_overlap() {
        let mut n = Nfa::new(2);
        n.add_initial(0);
        n.add_final(0);
        assert!(n.accepts(&[]));
        let mut m = Nfa::new(2);
        m.add_initial(0);
        m.add_final(1);
        assert!(!m.accepts(&[]));
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn transition_bounds_checked() {
        let mut n = Nfa::new(1);
        n.add_transition(0, 0, 1);
    }
}

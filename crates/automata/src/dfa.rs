//! Deterministic finite automata, the target of the subset constructions
//! for NFA (§2) and PFA (Proposition 3.2).
//!
//! The DFA is represented with a dense transition table over the alphabet
//! actually used, plus a generic [`Dfa::determinize`] driver shared by
//! [`Nfa::to_dfa`](crate::nfa::Nfa::to_dfa) and
//! [`Pfa::to_dfa`](crate::pfa::Pfa::to_dfa): both constructions explore
//! only the *reachable* subsets, which is what makes the determinization
//! experiment (E4) measurable.

use cer_common::hash::FxHashMap;

/// A deterministic finite automaton over `u32` symbols.
///
/// The transition function is partial (missing entries are a sink
/// rejection), matching the paper's definition of DFA as a partial
/// function `∆ : Q × Σ → Q` with `|I| = 1`.
#[derive(Clone, Debug)]
pub struct Dfa {
    num_states: usize,
    start: usize,
    /// `transitions[q]` maps a symbol to the successor state.
    transitions: Vec<FxHashMap<u32, usize>>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Generic subset-construction driver.
    ///
    /// `start` is the initial subset (sorted, deduplicated), `alphabet`
    /// the symbols to explore, `step(set, a)` the image of a subset under
    /// a symbol (must return a sorted, deduplicated vector) and
    /// `is_final` decides acceptance of a subset. Only subsets reachable
    /// from `start` become DFA states.
    pub fn determinize(
        start: Vec<usize>,
        alphabet: &[u32],
        mut step: impl FnMut(&[usize], u32) -> Vec<usize>,
        mut is_final: impl FnMut(&[usize]) -> bool,
    ) -> Dfa {
        let mut index: FxHashMap<Vec<usize>, usize> = FxHashMap::default();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        let mut transitions: Vec<FxHashMap<u32, usize>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        let intern = |set: Vec<usize>,
                      subsets: &mut Vec<Vec<usize>>,
                      transitions: &mut Vec<FxHashMap<u32, usize>>,
                      accepting: &mut Vec<bool>,
                      index: &mut FxHashMap<Vec<usize>, usize>|
         -> usize {
            if let Some(&id) = index.get(&set) {
                return id;
            }
            let id = subsets.len();
            index.insert(set.clone(), id);
            subsets.push(set);
            transitions.push(FxHashMap::default());
            accepting.push(false);
            id
        };

        let start_id = intern(
            start,
            &mut subsets,
            &mut transitions,
            &mut accepting,
            &mut index,
        );
        let mut work = vec![start_id];
        while let Some(id) = work.pop() {
            accepting[id] = is_final(&subsets[id]);
            for &a in alphabet {
                let next = step(&subsets[id], a);
                let next_id = intern(
                    next,
                    &mut subsets,
                    &mut transitions,
                    &mut accepting,
                    &mut index,
                );
                if next_id == transitions.len() - 1 && transitions[next_id].is_empty() {
                    // Freshly interned: enqueue for exploration.
                    work.push(next_id);
                }
                transitions[id].insert(a, next_id);
            }
        }
        // `is_final` may not have been applied to states popped last.
        for (id, set) in subsets.iter().enumerate() {
            accepting[id] = is_final(set);
        }
        Dfa {
            num_states: subsets.len(),
            start: start_id,
            transitions,
            accepting,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting[q]
    }

    /// Apply the (partial) transition function.
    pub fn step(&self, q: usize, a: u32) -> Option<usize> {
        self.transitions[q].get(&a).copied()
    }

    /// Whether the automaton accepts `s`.
    pub fn accepts(&self, s: &[u32]) -> bool {
        let mut q = self.start;
        for &a in s {
            match self.step(q, a) {
                Some(p) => q = p,
                None => return false,
            }
        }
        self.accepting[q]
    }

    /// Moore's partition-refinement minimization.
    ///
    /// Not needed by the paper's results, but lets experiment E4 report
    /// both the reachable-subset size and the canonical minimal size of
    /// the determinized PFA.
    pub fn minimize(&self) -> Dfa {
        let alphabet: Vec<u32> = {
            let mut syms: Vec<u32> = self
                .transitions
                .iter()
                .flat_map(|m| m.keys().copied())
                .collect();
            syms.sort_unstable();
            syms.dedup();
            syms
        };
        // Completion: treat missing transitions as a virtual sink (class
        // usize::MAX in signatures below).
        let mut class: Vec<usize> = self.accepting.iter().map(|&acc| usize::from(acc)).collect();
        loop {
            let mut sig_index: FxHashMap<(usize, Vec<usize>), usize> = FxHashMap::default();
            let mut next_class = vec![0usize; self.num_states];
            for q in 0..self.num_states {
                let sig: Vec<usize> = alphabet
                    .iter()
                    .map(|&a| self.step(q, a).map_or(usize::MAX, |p| class[p]))
                    .collect();
                let n = sig_index.len();
                let id = *sig_index.entry((class[q], sig)).or_insert(n);
                next_class[q] = id;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        let num_classes = class.iter().max().map_or(0, |m| m + 1);
        let mut transitions = vec![FxHashMap::default(); num_classes];
        let mut accepting = vec![false; num_classes];
        for q in 0..self.num_states {
            accepting[class[q]] = self.accepting[q];
            for (&a, &p) in &self.transitions[q] {
                transitions[class[q]].insert(a, class[p]);
            }
        }
        Dfa {
            num_states: num_classes,
            start: class[self.start],
            transitions,
            accepting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;

    fn parity_nfa() -> Nfa {
        // Even number of 1s.
        let mut n = Nfa::new(2);
        n.add_initial(0);
        n.add_final(0);
        n.add_transition(0, 0, 0);
        n.add_transition(0, 1, 1);
        n.add_transition(1, 0, 1);
        n.add_transition(1, 1, 0);
        n
    }

    #[test]
    fn dfa_accepts_parity() {
        let d = parity_nfa().to_dfa();
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[1, 1]));
        assert!(d.accepts(&[1, 0, 1]));
        assert!(!d.accepts(&[1]));
        assert!(!d.accepts(&[0, 1, 0]));
    }

    #[test]
    fn minimization_shrinks_and_preserves() {
        // Build a redundant NFA for "contains a 1" with duplicate states.
        let mut n = Nfa::new(4);
        n.add_initial(0);
        n.add_transition(0, 0, 0);
        n.add_transition(0, 1, 1);
        n.add_transition(0, 1, 2);
        for q in [1usize, 2] {
            n.add_transition(q, 0, q);
            n.add_transition(q, 1, 3);
            n.add_transition(3, 0, q);
            n.add_final(q);
        }
        n.add_final(3);
        n.add_transition(3, 1, 3);
        let d = n.to_dfa();
        let m = d.minimize();
        assert!(m.num_states() <= d.num_states());
        assert_eq!(m.num_states(), 2, "canonical 'contains a 1' DFA");
        for len in 0..=5usize {
            for bits in 0..(1u32 << len) {
                let s: Vec<u32> = (0..len).map(|i| (bits >> i) & 1).collect();
                assert_eq!(d.accepts(&s), m.accepts(&s), "disagree on {s:?}");
            }
        }
    }

    #[test]
    fn partial_transition_rejects() {
        // A DFA accepting exactly "0": symbol 1 from start is undefined.
        let d = Dfa {
            num_states: 2,
            start: 0,
            transitions: vec![[(0u32, 1usize)].into_iter().collect(), FxHashMap::default()],
            accepting: vec![false, true],
        };
        assert!(d.accepts(&[0]));
        assert!(!d.accepts(&[1]));
        assert!(!d.accepts(&[0, 0]));
    }
}

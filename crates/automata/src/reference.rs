//! Reference (oracle) semantics for PCEA: explicit run-tree enumeration.
//!
//! `⟦P⟧_n(S)` is defined in Section 3 as the set of valuations of
//! accepting run trees at position `n`. This module materializes that
//! definition by exhaustive enumeration — exponential in general, which is
//! exactly why the paper develops the streaming algorithm of Section 5.
//! The streaming engine (`cer-core`) and the baselines are all tested
//! against this oracle on randomized streams.
//!
//! The module also checks the *unambiguity* conditions of Section 3 on a
//! concrete stream prefix: (1) every accepting run is simple (no position
//! marked twice with overlapping labels by different nodes), and (2) no
//! two distinct accepting runs share a valuation. Unambiguity is defined
//! over *all* streams; checking it on sampled streams gives a sound
//! refutation procedure and a practical validation for compiled HCQs.

use crate::pcea::{Pcea, StateId};
use crate::valuation::{LabelSet, Valuation};
use cer_common::hash::FxHashMap;
use cer_common::Tuple;
use std::rc::Rc;

/// A node of an explicit PCEA run tree: configuration `(q, i, L)` plus
/// children (each at a strictly smaller position).
#[derive(Debug, PartialEq, Eq)]
pub struct RunNode {
    /// State `q` of the configuration.
    pub state: StateId,
    /// Stream position `i` read at this node.
    pub pos: u64,
    /// Labels `L` marking position `i`.
    pub labels: LabelSet,
    /// Child subtrees, sorted by state for canonical comparison.
    pub children: Vec<Rc<RunNode>>,
}

impl RunNode {
    /// The valuation `ν_τ` of the subtree rooted here.
    pub fn valuation(&self, num_labels: usize) -> Valuation {
        let mut v = Valuation::empty(num_labels);
        self.collect(&mut v);
        v
    }

    fn collect(&self, v: &mut Valuation) {
        v.insert(self.labels, self.pos);
        for c in &self.children {
            c.collect(v);
        }
    }

    /// Whether the run is *simple*: any two different nodes with the same
    /// position carry disjoint label sets.
    pub fn is_simple(&self) -> bool {
        let mut seen: FxHashMap<u64, u64> = FxHashMap::default();
        self.simple_walk(&mut seen)
    }

    fn simple_walk(&self, seen: &mut FxHashMap<u64, u64>) -> bool {
        let mask = seen.entry(self.pos).or_insert(0);
        if *mask & self.labels.0 != 0 {
            return false;
        }
        *mask |= self.labels.0;
        self.children.iter().all(|c| c.simple_walk(seen))
    }

    /// Number of nodes (counting shared subtrees once per path).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }
}

/// Exhaustive run-tree evaluation of a PCEA over a finite stream prefix.
///
/// Construction enumerates, for every position `i` and state `q`, all run
/// subtrees rooted at `(q, i, ·)`; subtrees are shared via `Rc`, but the
/// number of distinct trees can still be exponential — this is a test
/// oracle, not an engine.
pub struct ReferenceEval<'a> {
    pcea: &'a Pcea,
    tuples: &'a [Tuple],
    /// `memo[i][q]`: run subtrees rooted at state `q` reading position `i`.
    memo: Vec<Vec<Vec<Rc<RunNode>>>>,
}

impl<'a> ReferenceEval<'a> {
    /// Evaluate `pcea` over the given stream prefix.
    ///
    /// Panics if more than `MAX_TREES_PER_CELL` subtrees accumulate for a
    /// single `(state, position)` pair — a guard against accidentally
    /// running the oracle on a stream too dense for exhaustive semantics.
    pub fn new(pcea: &'a Pcea, tuples: &'a [Tuple]) -> Self {
        let mut eval = ReferenceEval {
            pcea,
            tuples,
            memo: Vec::with_capacity(tuples.len()),
        };
        for i in 0..tuples.len() {
            eval.fill_position(i);
        }
        eval
    }

    /// Guard on the per-cell tree count.
    pub const MAX_TREES_PER_CELL: usize = 200_000;

    fn fill_position(&mut self, i: usize) {
        let t = &self.tuples[i];
        let mut row: Vec<Vec<Rc<RunNode>>> = vec![Vec::new(); self.pcea.num_states()];
        for tr in self.pcea.transitions() {
            if !tr.unary.matches(t) {
                continue;
            }
            // Candidate subtrees per source state: any earlier position
            // whose root joins with the current tuple under B(p).
            let mut cands: Vec<Vec<Rc<RunNode>>> = Vec::with_capacity(tr.sources.len());
            let mut feasible = true;
            for (p, b) in tr.sources.iter().zip(tr.binary.iter()) {
                let mut c = Vec::new();
                for j in 0..i {
                    if b.satisfied(&self.tuples[j], t) {
                        c.extend(self.memo[j][p.index()].iter().cloned());
                    }
                }
                if c.is_empty() {
                    feasible = false;
                    break;
                }
                cands.push(c);
            }
            if !feasible {
                continue;
            }
            // Cross product of per-source choices.
            let mut combos: Vec<Vec<Rc<RunNode>>> = vec![Vec::new()];
            for c in &cands {
                let mut next = Vec::with_capacity(combos.len() * c.len());
                for base in &combos {
                    for tree in c {
                        let mut b = base.clone();
                        b.push(Rc::clone(tree));
                        next.push(b);
                    }
                }
                combos = next;
            }
            for mut children in combos {
                children.sort_by_key(|c| c.state);
                row[tr.target.index()].push(Rc::new(RunNode {
                    state: tr.target,
                    pos: i as u64,
                    labels: tr.labels,
                    children,
                }));
                assert!(
                    row[tr.target.index()].len() <= Self::MAX_TREES_PER_CELL,
                    "reference oracle exploded; use a sparser stream"
                );
            }
        }
        self.memo.push(row);
    }

    /// All accepting runs at position `n` (runs whose root reads `t_n`
    /// and lands in a final state), duplicates (identical trees produced
    /// by duplicate transitions) removed.
    pub fn accepting_runs_at(&self, n: usize) -> Vec<Rc<RunNode>> {
        let mut out: Vec<Rc<RunNode>> = Vec::new();
        if n >= self.memo.len() {
            return out;
        }
        for q in self.pcea.finals() {
            for tree in &self.memo[n][q.index()] {
                if !out.iter().any(|o| **o == **tree) {
                    out.push(Rc::clone(tree));
                }
            }
        }
        out
    }

    /// The paper's output set `⟦P⟧_n(S)`: valuations of accepting runs at
    /// `n`, as a duplicate-free sorted vector.
    pub fn outputs_at(&self, n: usize) -> Vec<Valuation> {
        let mut vs: Vec<Valuation> = self
            .accepting_runs_at(n)
            .iter()
            .map(|r| r.valuation(self.pcea.num_labels()))
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// `⟦P⟧^w_n(S)`: outputs at `n` whose span fits the window
    /// (`n − min(ν) ≤ w`).
    pub fn windowed_outputs_at(&self, n: usize, w: u64) -> Vec<Valuation> {
        self.outputs_at(n)
            .into_iter()
            .filter(|v| {
                v.min_pos()
                    .is_none_or(|m| (n as u64).saturating_sub(m) <= w)
            })
            .collect()
    }

    /// Outputs at every position, windowed: the ground truth for the
    /// streaming evaluation problem `EvalPCEA[σ]`.
    pub fn all_windowed_outputs(&self, w: u64) -> Vec<(usize, Vec<Valuation>)> {
        (0..self.tuples.len())
            .map(|n| (n, self.windowed_outputs_at(n, w)))
            .collect()
    }

    /// Check the unambiguity conditions on this stream prefix:
    /// every accepting run simple, and runs ↦ valuations injective.
    ///
    /// Returns `Err` with a human-readable reason on violation.
    pub fn check_unambiguous(&self) -> Result<(), String> {
        for n in 0..self.tuples.len() {
            let runs = self.accepting_runs_at(n);
            for r in &runs {
                if !r.is_simple() {
                    return Err(format!("non-simple accepting run at position {n}"));
                }
            }
            let mut vals: Vec<Valuation> = runs
                .iter()
                .map(|r| r.valuation(self.pcea.num_labels()))
                .collect();
            let total = vals.len();
            vals.sort();
            vals.dedup();
            if vals.len() != total {
                return Err(format!(
                    "two distinct accepting runs at position {n} share a valuation"
                ));
            }
        }
        Ok(())
    }
}

/// Stream-fuzzing unambiguity refutation (towards the paper's second
/// future-work item, a disambiguation procedure).
///
/// Unambiguity quantifies over *all* streams; this samples `num_streams`
/// random streams of `len` tuples over `schema` with a small value
/// domain (dense joins maximize run collisions) and checks the
/// conditions on each. `Err` is a definite refutation with a witness
/// description; `Ok` is evidence, not proof.
pub fn fuzz_unambiguous(
    pcea: &Pcea,
    schema: &cer_common::Schema,
    len: usize,
    num_streams: usize,
    seed: u64,
) -> Result<(), String> {
    // A small deterministic xorshift so cer-automata needs no rand dep.
    let mut state = seed | 1;
    let mut next = |bound: u64| -> u64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound.max(1)
    };
    let relations: Vec<_> = schema.relations().collect();
    if relations.is_empty() {
        return Ok(());
    }
    for round in 0..num_streams {
        let stream: Vec<Tuple> = (0..len)
            .map(|_| {
                let rel = relations[next(relations.len() as u64) as usize];
                let values = (0..schema.arity(rel))
                    .map(|_| cer_common::Value::Int(next(3) as i64))
                    .collect();
                Tuple::new(rel, values)
            })
            .collect();
        ReferenceEval::new(pcea, &stream)
            .check_unambiguous()
            .map_err(|e| format!("stream #{round}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccea::paper_c0;
    use crate::pcea::paper_p0;
    use crate::valuation::Label;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    fn val(pairs: &[(u32, &[u64])]) -> Valuation {
        let mut v = Valuation::empty(1);
        for (l, ps) in pairs {
            for &p in *ps {
                v.insert(LabelSet::singleton(Label(*l)), p);
            }
        }
        v
    }

    #[test]
    fn example_3_3_two_run_trees_at_position_5() {
        // Running P0 over S0 yields exactly ντ0 = {●↦{1,3,5}} and
        // ντ1 = {●↦{0,1,5}} at position 5.
        let (_, r, s, t) = Schema::sigma0();
        let p = paper_p0(r, s, t);
        let stream = sigma0_prefix(r, s, t);
        let eval = ReferenceEval::new(&p, &stream);
        let got = eval.outputs_at(5);
        let want = {
            let mut w = vec![val(&[(0, &[1, 3, 5])]), val(&[(0, &[0, 1, 5])])];
            w.sort();
            w
        };
        assert_eq!(got, want);
    }

    #[test]
    fn ccea_c0_single_output_on_s0() {
        // Example 2.1: C0 over S0 accepts T(2),S(2,11),R(2,11) = {1,3,5}
        // at position 5 (plus the variant using the S at position 0).
        let (_, r, s, t) = Schema::sigma0();
        let p = paper_c0(r, s, t).to_pcea();
        let stream = sigma0_prefix(r, s, t);
        let eval = ReferenceEval::new(&p, &stream);
        let got = eval.outputs_at(5);
        // Two runs: T(2)@1 then S(2,11)@3 then R(2,11)@5, and the chain
        // cannot use S@0 because T@1 comes after it in CCEA order.
        assert_eq!(got, vec![val(&[(0, &[1, 3, 5])])]);
        // No outputs at other positions.
        for n in [0usize, 1, 2, 3, 4, 6, 7] {
            assert!(eval.outputs_at(n).is_empty(), "unexpected output at {n}");
        }
    }

    #[test]
    fn pcea_strictly_more_expressive_on_s0() {
        // The PCEA P0 sees the S(2,11) at position 0 *before* T(2)@1 —
        // the CCEA C0 cannot (Proposition 3.4's intuition).
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let pcea_out = ReferenceEval::new(&paper_p0(r, s, t), &stream).outputs_at(5);
        let ccea_out = ReferenceEval::new(&paper_c0(r, s, t).to_pcea(), &stream).outputs_at(5);
        assert_eq!(pcea_out.len(), 2);
        assert_eq!(ccea_out.len(), 1);
        assert!(pcea_out.contains(&ccea_out[0]));
    }

    #[test]
    fn window_filters_by_span() {
        let (_, r, s, t) = Schema::sigma0();
        let p = paper_p0(r, s, t);
        let stream = sigma0_prefix(r, s, t);
        let eval = ReferenceEval::new(&p, &stream);
        // At n=5 the two outputs have min 1 and 0: spans 4 and 5.
        assert_eq!(eval.windowed_outputs_at(5, 5).len(), 2);
        assert_eq!(eval.windowed_outputs_at(5, 4).len(), 1);
        assert_eq!(eval.windowed_outputs_at(5, 3).len(), 0);
    }

    #[test]
    fn paper_p0_is_unambiguous_on_s0() {
        let (_, r, s, t) = Schema::sigma0();
        let p = paper_p0(r, s, t);
        let stream = sigma0_prefix(r, s, t);
        ReferenceEval::new(&p, &stream).check_unambiguous().unwrap();
    }

    #[test]
    fn ambiguous_automaton_detected() {
        // Two duplicate initial transitions into *different* states, both
        // final: same valuation witnessed by two distinct runs.
        use crate::pcea::PceaBuilder;
        use crate::predicate::UnaryPredicate;
        let (_, _, _, t) = Schema::sigma0();
        let dot = LabelSet::singleton(Label(0));
        let mut b = PceaBuilder::new(1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
        b.add_initial_transition(UnaryPredicate::Relation(t), dot, q1);
        b.mark_final(q0);
        b.mark_final(q1);
        let p = b.build();
        let stream = vec![cer_common::tuple::tup(t, [1i64])];
        let err = ReferenceEval::new(&p, &stream)
            .check_unambiguous()
            .unwrap_err();
        assert!(err.contains("share a valuation"), "{err}");
    }

    #[test]
    fn non_simple_run_detected() {
        // A two-source transition whose branches can mark the same
        // position with the same label.
        use crate::pcea::PceaBuilder;
        use crate::predicate::{EqPredicate, KeyExtractor, UnaryPredicate};
        let (_, _r, s, t) = Schema::sigma0();
        let dot = LabelSet::singleton(Label(0));
        let mut b = PceaBuilder::new(1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
        b.add_initial_transition(UnaryPredicate::Relation(t), dot, q1);
        let any_t = |other: cer_common::RelationId| {
            EqPredicate::new(
                KeyExtractor::projection(t, Vec::new()),
                KeyExtractor::projection(other, Vec::new()),
            )
        };
        b.add_transition(
            vec![(q0, any_t(s)), (q1, any_t(s))],
            UnaryPredicate::Relation(s),
            dot,
            q2,
        );
        b.mark_final(q2);
        let p = b.build();
        // One T then one S: both branches must reuse position 0.
        let stream = vec![
            cer_common::tuple::tup(t, [1i64]),
            cer_common::tuple::tup(s, [1i64, 2]),
        ];
        let err = ReferenceEval::new(&p, &stream)
            .check_unambiguous()
            .unwrap_err();
        assert!(err.contains("non-simple"), "{err}");
    }

    #[test]
    fn run_node_count_and_valuation() {
        let (_, r, s, t) = Schema::sigma0();
        let p = paper_p0(r, s, t);
        let stream = sigma0_prefix(r, s, t);
        let eval = ReferenceEval::new(&p, &stream);
        let runs = eval.accepting_runs_at(5);
        assert_eq!(runs.len(), 2);
        for run in &runs {
            assert_eq!(run.node_count(), 3);
            assert_eq!(run.valuation(1).weight(), 3);
            assert!(run.is_simple());
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use crate::pcea::{paper_p0, PceaBuilder};
    use crate::predicate::UnaryPredicate;
    use crate::valuation::Label;
    use cer_common::Schema;

    #[test]
    fn fuzz_accepts_unambiguous_p0() {
        let (schema, r, s, t) = Schema::sigma0();
        fuzz_unambiguous(&paper_p0(r, s, t), &schema, 8, 20, 42).unwrap();
    }

    #[test]
    fn fuzz_refutes_ambiguous_automaton() {
        let (schema, _, _, t) = Schema::sigma0();
        let dot = LabelSet::singleton(Label(0));
        let mut b = PceaBuilder::new(1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
        b.add_initial_transition(UnaryPredicate::Relation(t), dot, q1);
        b.mark_final(q0);
        b.mark_final(q1);
        let err = fuzz_unambiguous(&b.build(), &schema, 6, 50, 7).unwrap_err();
        assert!(err.contains("share a valuation"), "{err}");
    }
}

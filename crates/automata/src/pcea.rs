//! Parallelized Complex Event Automata (Section 3).
//!
//! A PCEA transition `(P, U, B, L, q) ∈ 2^Q × U × B^Q × (2^Ω ∖ {∅}) × Q`
//! fires on the current tuple when the tuple satisfies the unary predicate
//! `U` and, for every source state `p ∈ P`, the stored run at `p` joins
//! with the current tuple under the equality predicate `B(p)`. Transitions
//! with `P = ∅` start fresh runs (they play the role of CCEA's initial
//! function). Every fired transition marks the current position with the
//! non-empty label set `L`.
//!
//! The module provides the automaton structure and a [`PceaBuilder`]; the
//! *semantics* lives in two places: [`reference`](crate::reference) gives
//! the exponential run-tree semantics `⟦P⟧_n(S)` used as an oracle, and
//! `cer-core` gives the streaming algorithm of Theorem 5.1.

use crate::predicate::{EqPredicate, UnaryPredicate};
use crate::valuation::LabelSet;
use std::fmt;

/// A dense identifier for a PCEA state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A PCEA transition `(P, U, B, L, q)`.
///
/// `binary[k]` is the equality predicate `B(sources[k])`; the paper's `B`
/// is a partial function `Q ⇀ Beq` and here it is total on `P` (a run can
/// only be gathered if its join condition is stated).
#[derive(Clone, Debug)]
pub struct Transition {
    /// Source-state set `P`, sorted and duplicate-free. Empty for initial
    /// transitions.
    pub sources: Box<[StateId]>,
    /// The unary predicate `U` on the current tuple.
    pub unary: UnaryPredicate,
    /// Per-source equality predicates, aligned with `sources`.
    pub binary: Box<[EqPredicate]>,
    /// The non-empty label set `L` marking the current position.
    pub labels: LabelSet,
    /// Target state `q`.
    pub target: StateId,
}

/// A parallelized complex event automaton `(Q, U, B, Ω, ∆, F)`.
#[derive(Clone, Debug, Default)]
pub struct Pcea {
    num_states: usize,
    num_labels: usize,
    transitions: Vec<Transition>,
    is_final: Vec<bool>,
}

impl Pcea {
    /// Number of states `|Q|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Size of the label alphabet `|Ω|`.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The paper's size measure `|P| = |Q| + Σ_{(P,U,B,L,q)} (|P| + |L|)`.
    pub fn size(&self) -> usize {
        self.num_states
            + self
                .transitions
                .iter()
                .map(|t| t.sources.len() + t.labels.len())
                .sum::<usize>()
    }

    /// The transition relation `∆`.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Whether `q ∈ F`.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.is_final[q.index()]
    }

    /// Iterate over final states.
    pub fn finals(&self) -> impl Iterator<Item = StateId> + '_ {
        self.is_final
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(i, _)| StateId(i as u32))
    }

    /// All states, in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.num_states as u32).map(StateId)
    }

    /// The relations whose tuples can fire any transition, or `None`
    /// when some transition's unary predicate is not confined to known
    /// relations (the automaton must then see every tuple). Used by the
    /// multi-query runtime to route stream tuples.
    pub fn relations(&self) -> Option<Vec<cer_common::RelationId>> {
        let mut out: Vec<cer_common::RelationId> = Vec::new();
        for tr in &self.transitions {
            let rs = tr.unary.relations()?;
            for r in rs {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        Some(out)
    }

    /// Whether `other` shares this automaton's *skeleton*: same state
    /// count, same label alphabet, same finals, and transition-for-
    /// transition the same sources, target and label set. Predicates
    /// (unary filters, join keys) are free to differ.
    ///
    /// The skeleton is exactly the part of the automaton that the
    /// streaming engine's accumulated state is keyed on — `DS_w` nodes
    /// carry label sets and target-state node lists, and the look-up
    /// table `H` is keyed by transition index and source slot — so a
    /// skeleton-compatible recompiled query can take over a
    /// predecessor's live state (`Runtime::replace` in `cer-core`).
    pub fn skeleton_compatible(&self, other: &Pcea) -> bool {
        self.num_states == other.num_states
            && self.num_labels == other.num_labels
            && self.is_final == other.is_final
            && self.transitions.len() == other.transitions.len()
            && self
                .transitions
                .iter()
                .zip(&other.transitions)
                .all(|(a, b)| {
                    a.sources == b.sources && a.target == b.target && a.labels == b.labels
                })
    }

    /// Whether outputs are preserved under key-partitioned sharding on
    /// the tuple attribute at `pos`: every join predicate must project
    /// that attribute at a common key index on both sides
    /// ([`EqPredicate::preserves_partition`]), so every pair of joined
    /// tuples — and hence every complete match — shares one partition
    /// value.
    pub fn supports_key_partition(&self, pos: usize) -> bool {
        self.transitions
            .iter()
            .all(|tr| tr.binary.iter().all(|b| b.preserves_partition(pos)))
    }
}

mod wire_impls {
    //! Checkpoint wire encodings: a PCEA round-trips whenever every
    //! transition's unary predicate is a closed form (see the
    //! `predicate` module's wire impls for the one exception).

    use super::*;
    use cer_common::wire::{Wire, WireError, WireReader, WireWriter};

    impl Wire for StateId {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            w.put_u32(self.0);
            Ok(())
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(StateId(r.get_u32()?))
        }
    }

    impl Wire for Transition {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            self.sources.encode(w)?;
            self.unary.encode(w)?;
            self.binary.encode(w)?;
            self.labels.encode(w)?;
            self.target.encode(w)
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(Transition {
                sources: Wire::decode(r)?,
                unary: Wire::decode(r)?,
                binary: Wire::decode(r)?,
                labels: Wire::decode(r)?,
                target: Wire::decode(r)?,
            })
        }
    }

    impl Wire for Pcea {
        fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
            self.num_states.encode(w)?;
            self.num_labels.encode(w)?;
            self.transitions.encode(w)?;
            self.is_final.encode(w)
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            let num_states = usize::decode(r)?;
            let num_labels = usize::decode(r)?;
            let transitions = Vec::<Transition>::decode(r)?;
            let is_final = Vec::<bool>::decode(r)?;
            if is_final.len() != num_states {
                return Err(WireError::Corrupt("finals length != state count"));
            }
            let state_ok = |q: &StateId| q.index() < num_states;
            for tr in &transitions {
                if !state_ok(&tr.target)
                    || !tr.sources.iter().all(state_ok)
                    || tr.sources.len() != tr.binary.len()
                    || tr.labels.is_empty()
                {
                    return Err(WireError::Corrupt("malformed transition"));
                }
            }
            Ok(Pcea {
                num_states,
                num_labels,
                transitions,
                is_final,
            })
        }
    }
}

/// Incremental constructor for [`Pcea`].
///
/// ```
/// use cer_automata::pcea::PceaBuilder;
/// use cer_automata::predicate::{EqPredicate, UnaryPredicate};
/// use cer_automata::valuation::{Label, LabelSet};
/// use cer_common::Schema;
///
/// let (_, r, s, t) = Schema::sigma0();
/// let dot = LabelSet::singleton(Label(0));
/// let mut b = PceaBuilder::new(1);
/// let q0 = b.add_state();
/// let q1 = b.add_state();
/// b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
/// b.add_transition(
///     vec![(q0, EqPredicate::on_positions(t, [0usize], s, [0usize]))],
///     UnaryPredicate::Relation(s),
///     dot,
///     q1,
/// );
/// b.mark_final(q1);
/// let pcea = b.build();
/// assert_eq!(pcea.num_states(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PceaBuilder {
    num_states: usize,
    num_labels: usize,
    transitions: Vec<Transition>,
    finals: Vec<StateId>,
}

impl PceaBuilder {
    /// Start a builder for an automaton with `num_labels` output labels.
    pub fn new(num_labels: usize) -> Self {
        assert!(
            num_labels <= crate::valuation::MAX_LABELS,
            "at most {} labels supported",
            crate::valuation::MAX_LABELS
        );
        PceaBuilder {
            num_labels,
            ..Self::default()
        }
    }

    /// Add a fresh state.
    pub fn add_state(&mut self) -> StateId {
        self.num_states += 1;
        StateId(self.num_states as u32 - 1)
    }

    /// Add `n` fresh states, returning the first id.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Add a transition `(P, U, B, L, q)` with per-source join predicates.
    ///
    /// Panics if `labels` is empty (the paper requires `L ∈ 2^Ω ∖ {∅}`),
    /// if a source is duplicated, or if any state is out of range.
    pub fn add_transition(
        &mut self,
        sources: Vec<(StateId, EqPredicate)>,
        unary: UnaryPredicate,
        labels: LabelSet,
        target: StateId,
    ) {
        assert!(!labels.is_empty(), "transition label set must be non-empty");
        assert!(
            labels.iter().all(|l| l.index() < self.num_labels),
            "label out of range"
        );
        let mut sources = sources;
        sources.sort_by_key(|(p, _)| *p);
        assert!(
            sources.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate source state in transition"
        );
        assert!(
            target.index() < self.num_states
                && sources.iter().all(|(p, _)| p.index() < self.num_states),
            "state out of range"
        );
        let (srcs, bins): (Vec<StateId>, Vec<EqPredicate>) = sources.into_iter().unzip();
        self.transitions.push(Transition {
            sources: srcs.into(),
            binary: bins.into(),
            unary,
            labels,
            target,
        });
    }

    /// Add an initial transition `(∅, U, ∅, L, q)`.
    pub fn add_initial_transition(
        &mut self,
        unary: UnaryPredicate,
        labels: LabelSet,
        target: StateId,
    ) {
        self.add_transition(Vec::new(), unary, labels, target);
    }

    /// Mark a state final.
    pub fn mark_final(&mut self, q: StateId) {
        assert!(q.index() < self.num_states, "state out of range");
        if !self.finals.contains(&q) {
            self.finals.push(q);
        }
    }

    /// Finish construction.
    pub fn build(self) -> Pcea {
        let mut is_final = vec![false; self.num_states];
        for f in self.finals {
            is_final[f.index()] = true;
        }
        Pcea {
            num_states: self.num_states,
            num_labels: self.num_labels,
            transitions: self.transitions,
            is_final,
        }
    }
}

/// Build the paper's example PCEA `P0` (Figure 1, right) over σ0:
/// `T` and `S` tuples joined with a later `R` tuple on the predicates
/// `(Tx, Rxy)` and `(Sxy, Rxy)`. One label `●`.
///
/// Returns the automaton; states are `(q0, q1, q2)` in index order.
pub fn paper_p0(
    r: cer_common::RelationId,
    s: cer_common::RelationId,
    t: cer_common::RelationId,
) -> Pcea {
    use crate::valuation::Label;
    let dot = LabelSet::singleton(Label(0));
    let mut b = PceaBuilder::new(1);
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
    b.add_initial_transition(UnaryPredicate::Relation(s), dot, q1);
    b.add_transition(
        vec![
            (q0, EqPredicate::on_positions(t, [0usize], r, [0usize])),
            (
                q1,
                EqPredicate::on_positions(s, [0usize, 1], r, [0usize, 1]),
            ),
        ],
        UnaryPredicate::Relation(r),
        dot,
        q2,
    );
    b.mark_final(q2);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::Schema;

    #[test]
    fn builder_constructs_paper_p0() {
        let (_, r, s, t) = Schema::sigma0();
        let p = paper_p0(r, s, t);
        assert_eq!(p.num_states(), 3);
        assert_eq!(p.num_labels(), 1);
        assert_eq!(p.transitions().len(), 3);
        assert_eq!(p.finals().collect::<Vec<_>>(), vec![StateId(2)]);
        // |Q| + Σ (|P| + |L|) = 3 + (0+1) + (0+1) + (2+1).
        assert_eq!(p.size(), 8);
    }

    #[test]
    fn transition_sources_sorted_and_aligned() {
        let (_, r, s, t) = Schema::sigma0();
        let mut b = PceaBuilder::new(1);
        let q0 = b.add_state();
        let q1 = b.add_state();
        let q2 = b.add_state();
        let bt = EqPredicate::on_positions(t, [0usize], r, [0usize]);
        let bs = EqPredicate::on_positions(s, [0usize], r, [0usize]);
        // Insert sources in reverse order; builder sorts them.
        b.add_transition(
            vec![(q1, bs.clone()), (q0, bt.clone())],
            UnaryPredicate::Relation(r),
            LabelSet::singleton(crate::valuation::Label(0)),
            q2,
        );
        let p = b.build();
        let tr = &p.transitions()[0];
        assert_eq!(tr.sources.as_ref(), &[q0, q1]);
        // binary[0] belongs to q0 (the T-side predicate).
        assert!(tr.binary[0]
            .left
            .extract(&cer_common::tuple::tup(t, [3i64]))
            .is_some());
        assert!(tr.binary[1]
            .left
            .extract(&cer_common::tuple::tup(s, [3i64, 4]))
            .is_some());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_label_set_rejected() {
        let mut b = PceaBuilder::new(1);
        let q = b.add_state();
        b.add_initial_transition(UnaryPredicate::True, LabelSet::EMPTY, q);
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn duplicate_sources_rejected() {
        let mut b = PceaBuilder::new(1);
        let q = b.add_state();
        let p = b.add_state();
        b.add_transition(
            vec![(q, EqPredicate::default()), (q, EqPredicate::default())],
            UnaryPredicate::True,
            LabelSet::singleton(crate::valuation::Label(0)),
            p,
        );
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn labels_bounded_by_alphabet() {
        let mut b = PceaBuilder::new(1);
        let q = b.add_state();
        b.add_initial_transition(
            UnaryPredicate::True,
            LabelSet::singleton(crate::valuation::Label(5)),
            q,
        );
    }

    #[test]
    fn states_and_finals_iterate() {
        let mut b = PceaBuilder::new(1);
        let states = b.add_states(4);
        b.mark_final(states[1]);
        b.mark_final(states[3]);
        b.mark_final(states[3]); // idempotent
        let p = b.build();
        assert_eq!(p.states().count(), 4);
        assert_eq!(p.finals().collect::<Vec<_>>(), vec![states[1], states[3]]);
        assert!(p.is_final(states[1]));
        assert!(!p.is_final(states[0]));
    }
}

//! The serving daemon: bind a TCP address and run until a client sends
//! `Shutdown` (or the process is killed).
//!
//! ```text
//! cer_served [--addr HOST:PORT] [--shards N] [--data-dir DIR]
//! ```
//!
//! With `--data-dir` the daemon serves durably: on startup it recovers
//! whatever `DIR` holds (checkpoints plus WAL replay), and afterwards
//! every ingested batch and query change is written ahead to the log,
//! so a `kill -9` loses nothing that was acknowledged.

use cer_core::RuntimeConfig;
use cer_serve::{ServeConfig, Server};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut shards = 4usize;
    let mut data_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage("--addr needs a value"),
            },
            "--shards" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => shards = n,
                None => return usage("--shards needs a number"),
            },
            "--data-dir" => match args.next() {
                Some(d) => data_dir = Some(d),
                None => return usage("--data-dir needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: cer_served [--addr HOST:PORT] [--shards N] [--data-dir DIR]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let mut config = ServeConfig::from(RuntimeConfig::new(shards));
    if let Some(dir) = &data_dir {
        config = config.with_data_dir(dir);
    }
    let server = match Server::bind(addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cer_served: cannot start on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "cer_served: listening on {} ({} shard{}{})",
        server.local_addr(),
        shards,
        if shards == 1 { "" } else { "s" },
        match &data_dir {
            Some(d) => format!(", durable in {d}"),
            None => String::new(),
        }
    );
    let stats = server.run_until_shutdown();
    let positions: u64 = stats
        .per_query
        .iter()
        .map(|(_, s)| s.positions)
        .max()
        .unwrap_or(0);
    eprintln!(
        "cer_served: shut down with {} standing quer{} after {} positions",
        stats.per_query.len(),
        if stats.per_query.len() == 1 {
            "y"
        } else {
            "ies"
        },
        positions
    );
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cer_served: {msg}");
    eprintln!("usage: cer_served [--addr HOST:PORT] [--shards N] [--data-dir DIR]");
    ExitCode::FAILURE
}

//! Load generator for the serving layer.
//!
//! Each connection declares the schema, submits its own standing query
//! (alternating between the HCQ and pattern front-ends), subscribes,
//! ingests `--events` tuples in `--batch`-sized frames, fences with
//! drain, and counts the matches pushed back. With no `--addr` an
//! in-process server on an ephemeral loopback port is used, so the
//! binary doubles as a self-contained smoke test:
//!
//! ```text
//! cer_loadgen [--addr HOST:PORT] [--connections N] [--events N] [--batch N]
//!             [--rescale N@k]
//! ```
//!
//! `--rescale N@k` makes connection 0 live-reshard the server every `k`
//! batches, toggling between `N` shards and the server's starting count
//! (so both grow and shrink moves are exercised). The exact-match
//! assertion still holds: a rescale must not lose, duplicate or reorder
//! matches.

use cer_common::tuple::tup;
use cer_core::window::WindowPolicy;
use cer_core::{BackpressurePolicy, RuntimeConfig};
use cer_serve::{Client, Frontend, ServeConfig, Server};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    connections: usize,
    events: u64,
    batch: usize,
    /// `Some((shards, every))`: toggle the server between `shards`
    /// workers and its starting count every `every` batches (conn 0).
    rescale: Option<(usize, u64)>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        connections: 2,
        events: 20_000,
        batch: 256,
        rescale: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--addr" => out.addr = Some(take("--addr")?),
            "--connections" => {
                out.connections = take("--connections")?
                    .parse()
                    .map_err(|_| "--connections needs a number".to_string())?
            }
            "--events" => {
                out.events = take("--events")?
                    .parse()
                    .map_err(|_| "--events needs a number".to_string())?
            }
            "--batch" => {
                out.batch = take("--batch")?
                    .parse()
                    .map_err(|_| "--batch needs a number".to_string())?
            }
            "--rescale" => {
                let spec = take("--rescale")?;
                let (shards, every) = spec
                    .split_once('@')
                    .ok_or("--rescale needs the form N@k".to_string())?;
                let shards: usize = shards
                    .parse()
                    .map_err(|_| "--rescale target must be a number".to_string())?;
                let every: u64 = every
                    .parse()
                    .map_err(|_| "--rescale cadence must be a number".to_string())?;
                if shards == 0 || every == 0 {
                    return Err("--rescale target and cadence must be positive".to_string());
                }
                out.rescale = Some((shards, every));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if out.connections == 0 || out.events == 0 || out.batch == 0 {
        return Err("--connections, --events and --batch must be positive".to_string());
    }
    Ok(out)
}

/// What one connection accomplished.
struct ConnReport {
    ingested: u64,
    matches: u64,
    rescales: u64,
}

/// Drive one connection end to end. Every `--events` tuples form
/// repeating T/S/R triples that each complete one match for the
/// standing query, so the expected match count is `events / 3`.
/// Connection 0 additionally fires `--rescale` moves mid-stream.
fn run_connection(
    addr: &str,
    conn_id: usize,
    events: u64,
    batch: usize,
    rescale: Option<(usize, u64)>,
) -> Result<ConnReport, Box<dyn std::error::Error + Send + Sync>> {
    let mut client = Client::connect(addr)?;
    // Per-connection relation names: all connections share one stream,
    // so same-named relations would make every query match every
    // connection's triples.
    let t = client.declare_relation(&format!("T{conn_id}"), 1)?;
    let s = client.declare_relation(&format!("S{conn_id}"), 2)?;
    let r = client.declare_relation(&format!("R{conn_id}"), 2)?;

    // Alternate front-ends across connections: both compile to PCEAs
    // that complete on a T, S, R triple agreeing on x (and y for S/R).
    let (frontend, text) = if conn_id.is_multiple_of(2) {
        (
            Frontend::Hcq,
            format!("Q(x, y) <- T{conn_id}(x), S{conn_id}(x, y), R{conn_id}(x, y)"),
        )
    } else {
        (
            Frontend::Pattern,
            format!("T{conn_id}(x) && S{conn_id}(x, y) ; R{conn_id}(x, y)"),
        )
    };
    let query = client.submit_query(
        &format!("loadgen-{conn_id}"),
        frontend,
        &text,
        WindowPolicy::Count(1 << 20),
        None,
    )?;
    client.subscribe(Some(query), 1 << 16, BackpressurePolicy::Block)?;

    let mut ingested = 0u64;
    let mut pending = Vec::with_capacity(batch);
    // Give each connection its own key space so queries don't cross-match.
    let base = (conn_id as i64 + 1) * 1_000_000;
    let mut triple = 0i64;
    // Mid-run resharding: toggle between the requested count and the
    // server's starting count so both directions get exercised.
    let home_shards = client.stats()?.shards as usize;
    let mut batches = 0u64;
    let mut rescales = 0u64;
    let mut at_target = false;
    while ingested < events {
        pending.clear();
        while pending.len() < batch && ingested < events {
            let x = base + triple;
            match ingested % 3 {
                0 => pending.push(tup(t, [x])),
                1 => pending.push(tup(s, [x, x + 7])),
                _ => {
                    pending.push(tup(r, [x, x + 7]));
                    triple += 1;
                }
            }
            ingested += 1;
        }
        client.ingest(pending.clone())?;
        batches += 1;
        if let Some((target, every)) = rescale {
            if batches.is_multiple_of(every) {
                let to = if at_target { home_shards } else { target };
                client.rescale(to)?;
                at_target = !at_target;
                rescales += 1;
            }
        }
    }
    client.drain()?;

    let mut matches = 0u64;
    while client.next_event(Duration::from_millis(200))?.is_some() {
        matches += 1;
    }
    client.unsubscribe()?;
    client.deregister(query)?;
    Ok(ConnReport {
        ingested,
        matches,
        rescales,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("cer_loadgen: {msg}");
            }
            eprintln!(
                "usage: cer_loadgen [--addr HOST:PORT] [--connections N] [--events N] [--batch N] [--rescale N@k]"
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    // No --addr: serve in-process on an ephemeral port.
    let local = if args.addr.is_none() {
        match Server::bind("127.0.0.1:0", ServeConfig::from(RuntimeConfig::new(4))) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cer_loadgen: cannot start in-process server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match (&args.addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    eprintln!(
        "cer_loadgen: {} connection(s) x {} events (batch {}) against {}",
        args.connections, args.events, args.batch, addr
    );

    let started = Instant::now();
    let handles: Vec<_> = (0..args.connections)
        .map(|conn_id| {
            let addr = addr.clone();
            let (events, batch) = (args.events, args.batch);
            // Only one connection drives rescales; every connection
            // must survive them.
            let rescale = if conn_id == 0 { args.rescale } else { None };
            std::thread::spawn(move || run_connection(&addr, conn_id, events, batch, rescale))
        })
        .collect();

    let mut total_ingested = 0u64;
    let mut total_matches = 0u64;
    let mut total_rescales = 0u64;
    let mut failed = false;
    for (conn_id, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(report)) => {
                eprintln!(
                    "  conn {conn_id}: ingested {} tuples, received {} matches, {} rescales",
                    report.ingested, report.matches, report.rescales
                );
                total_ingested += report.ingested;
                total_matches += report.matches;
                total_rescales += report.rescales;
            }
            Ok(Err(e)) => {
                eprintln!("  conn {conn_id}: FAILED: {e}");
                failed = true;
            }
            Err(_) => {
                eprintln!("  conn {conn_id}: panicked");
                failed = true;
            }
        }
    }
    let elapsed = started.elapsed();

    if let Some(server) = local {
        server.stop();
    }

    let secs = elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "cer_loadgen: {total_ingested} tuples, {total_matches} matches, {total_rescales} rescales in {:.3}s ({:.0} tuples/s end-to-end)",
        elapsed.as_secs_f64(),
        total_ingested as f64 / secs
    );
    if args.rescale.is_some() && total_rescales == 0 {
        eprintln!("cer_loadgen: --rescale requested but no rescale fired (raise --events or lower the cadence)");
        failed = true;
    }
    // Each T/S/R triple yields exactly one match per owning query.
    let expected = args.connections as u64 * (args.events / 3);
    if total_matches != expected {
        eprintln!("cer_loadgen: expected {expected} matches, got {total_matches}");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

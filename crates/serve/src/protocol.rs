//! The length-framed request/response protocol, over [`cer_common::wire`].
//!
//! Every message travels in one frame:
//!
//! ```text
//! ┌─────────────┬───────────────────────────────┐
//! │ len: u32 LE │ payload: len bytes (Wire)     │
//! └─────────────┴───────────────────────────────┘
//! ```
//!
//! `len` counts payload bytes only (not itself), must be ≥ 1 (the
//! payload always starts with a message tag), and must not exceed the
//! receiver's frame cap ([`DEFAULT_MAX_FRAME`] unless configured
//! otherwise) — a cap violation is a protocol error *before* any
//! allocation, so a hostile length prefix cannot balloon memory. The
//! payload is a [`Request`] or [`Response`] encoded with the same
//! bounds-checked [`Wire`] codec the engine uses for snapshots: decoding
//! arbitrary bytes returns [`WireError`]s, never panics, and trailing
//! bytes after a complete message are rejected as corruption.
//!
//! Requests are answered in order with exactly one [`Response`] each —
//! except [`Request::Subscribe`], after which the server *also*
//! interleaves unsolicited [`Response::Event`] frames onto the
//! connection as matches complete (the client side of this protocol
//! buffers them aside; see `Client`). Every failure is reported as
//! [`Response::Error`] carrying a stable
//! [`ErrorCode`](cer_core::ErrorCode) discriminant plus a human-readable
//! message; the connection stays usable afterwards.

use cer_common::wire::{Wire, WireError, WireReader, WireWriter};
use cer_common::{RelationId, Tuple};
use cer_core::runtime::{MatchEvent, Partition, QueryId};
use cer_core::window::WindowPolicy;
use cer_core::BackpressurePolicy;
use std::io::{self, Read, Write};

/// Version tag exchanged in [`Request::Hello`]; bumped on incompatible
/// protocol changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on one frame's payload size (16 MiB). A `len` prefix
/// above the cap is rejected before any allocation.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

// ---------------------------------------------------------------------
// Framing

/// Write one frame: `len` prefix plus `payload`, then flush.
///
/// The caller is responsible for `payload.len() <= max_frame` on its
/// side; the function only refuses payloads whose length cannot be
/// represented at all.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over 4 GiB"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload from a stream.
///
/// * `Ok(Some(payload))` — a complete frame;
/// * `Ok(None)` — clean EOF *at a frame boundary* (the peer closed);
/// * `Err(_)` — an I/O error, EOF mid-frame (`UnexpectedEof`), a frame
///   over `max_frame` (`InvalidData`), or an empty frame
///   (`InvalidData`). Read timeouts surface as the platform's
///   `WouldBlock`/`TimedOut` error for the caller to treat as "no frame
///   yet".
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            // A timeout with part of the prefix already read must keep
            // the bytes: retry the read so a slow peer is not corrupted.
            Err(e) if filled > 0 && would_block(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    check_frame_len(len, max_frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match r.read(&mut payload[at..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                ))
            }
            Ok(n) => at += n,
            Err(e) if would_block(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Validate a frame length prefix against the cap. Pure — shared by the
/// stream reader and [`parse_frame`], and the target of the fuzz tests.
pub fn check_frame_len(len: usize, max_frame: usize) -> Result<(), WireError> {
    if len == 0 {
        return Err(WireError::Corrupt("empty frame"));
    }
    if len > max_frame {
        return Err(WireError::Corrupt("frame over the receiver's cap"));
    }
    Ok(())
}

/// Parse one frame out of a byte buffer (the pure, non-blocking twin of
/// [`read_frame`], used by tests and poll-style callers): returns the
/// payload and the unconsumed rest, `None` when the buffer does not yet
/// hold a complete frame, or a [`WireError`] for a frame that can never
/// become valid (zero-length or over the cap).
#[allow(clippy::type_complexity)]
pub fn parse_frame(buf: &[u8], max_frame: usize) -> Result<Option<(&[u8], &[u8])>, WireError> {
    let Some(len_buf) = buf.get(..4) else {
        return Ok(None);
    };
    let len = u32::from_le_bytes(len_buf.try_into().expect("4-byte slice")) as usize;
    check_frame_len(len, max_frame)?;
    match buf.get(4..4 + len) {
        Some(payload) => Ok(Some((payload, &buf[4 + len..]))),
        None => Ok(None),
    }
}

/// Encode a message into a frame payload.
pub fn encode_message<T: Wire>(msg: &T) -> Result<Vec<u8>, WireError> {
    let mut w = WireWriter::new();
    msg.encode(&mut w)?;
    Ok(w.into_bytes())
}

/// Decode a frame payload into a message, rejecting trailing bytes.
pub fn decode_message<T: Wire>(payload: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(payload);
    let msg = T::decode(&mut r)?;
    if !r.is_exhausted() {
        return Err(WireError::Corrupt("trailing bytes after message"));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------
// Messages

/// Which query front-end parses a [`Request::SubmitQuery`]'s text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frontend {
    /// The HCQ front-end (`Q(x, y) <- T(x), S(x, y)` rule syntax,
    /// compiled via the paper's Theorem 4.1 construction).
    Hcq,
    /// The CER pattern language (`T(x) ; R(x, _)` operator syntax).
    Pattern,
}

/// A client→server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open the conversation; the server echoes its own version. Not
    /// mandatory, but lets clients fail fast on a version skew.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Declare (or look up) a relation in the server's schema.
    /// Idempotent: re-declaring with the same arity returns the
    /// existing id; a different arity is an error.
    DeclareRelation {
        /// Relation name, e.g. `"TEMP"`.
        name: String,
        /// Number of attributes.
        arity: usize,
    },
    /// Parse, compile and register a standing query.
    SubmitQuery {
        /// Name echoed in stats and errors.
        name: String,
        /// Which language `text` is written in.
        frontend: Frontend,
        /// The query text.
        text: String,
        /// Sliding-window policy.
        window: WindowPolicy,
        /// Shard placement; `None` uses the server runtime's
        /// [`default_partition`](cer_core::RuntimeConfig::default_partition).
        partition: Option<Partition>,
        /// GC cadence (0 = automatic).
        gc_every: u64,
    },
    /// Append a batch of tuples to the stream.
    IngestBatch {
        /// The tuples, in stream order.
        tuples: Vec<Tuple>,
    },
    /// Start pushing [`Response::Event`] frames for matching queries
    /// onto this connection. One subscription per connection; the
    /// backpressure policy is the subscription's own.
    Subscribe {
        /// `Some(id)` for one query's events, `None` for all.
        query: Option<QueryId>,
        /// Event channel capacity; 0 means the server default.
        capacity: usize,
        /// What happens when this subscriber lags.
        policy: BackpressurePolicy,
    },
    /// Stop the event stream started by `Subscribe`.
    Unsubscribe,
    /// Remove a standing query.
    Deregister {
        /// The query to remove.
        id: QueryId,
    },
    /// A compact numeric summary ([`StatsSummary`]).
    Stats,
    /// The full Prometheus text exposition of the runtime's metrics.
    MetricsText,
    /// An epoch-consistent snapshot of the runtime, as bytes
    /// (`Snapshot::to_bytes`).
    Snapshot,
    /// Fence the pipeline: returns once everything ingested before the
    /// call has been evaluated and delivered.
    Drain,
    /// Liveness probe.
    Ping,
    /// Gracefully shut the whole server down (every connection, then
    /// the runtime).
    Shutdown,
    /// Live-reshard the runtime to `shards` workers in place
    /// ([`Runtime::rescale`](cer_core::runtime::Runtime::rescale)): an
    /// epoch fence moves every query's state to a new worker set with
    /// no serialize round-trip. Ingest and subscriptions stay live.
    Rescale {
        /// The target worker count (1..=64).
        shards: usize,
    },
    /// Enable or disable the server's autoscale controller (a
    /// background thread polling load signals through
    /// [`Controller`](cer_core::Controller) hysteresis and rescaling
    /// when a streak confirms). Replies with
    /// [`Response::AutoscaleStatus`].
    SetAutoscale {
        /// `true` starts the control loop, `false` pauses it (the
        /// controller's streaks reset on re-enable).
        enabled: bool,
    },
    /// The controller's current status
    /// ([`Response::AutoscaleStatus`]).
    AutoscaleStatus,
    /// Cut an incremental checkpoint to the server's data directory
    /// ([`Runtime::checkpoint`](cer_core::runtime::Runtime::checkpoint));
    /// WAL segments below the cut are truncated. Fails with
    /// [`ErrorCode::NotDurable`](cer_core::ErrorCode) on a server
    /// started without `--data-dir`.
    Checkpoint,
    /// The server's durability status ([`Response::Durability`]):
    /// WAL health and size, last checkpoint, chain length.
    DurabilityStatus,
}

/// A server→client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Hello`].
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Reply to [`Request::DeclareRelation`].
    RelationDeclared {
        /// The relation's id, stable for the server's lifetime.
        id: RelationId,
    },
    /// Reply to [`Request::SubmitQuery`].
    QueryAccepted {
        /// The registered query's id.
        id: QueryId,
    },
    /// Reply to [`Request::IngestBatch`].
    Ingested {
        /// First stamped position of the batch.
        start: u64,
        /// One past the last stamped position.
        end: u64,
        /// Tuples shed under `DropNewest` ingest backpressure.
        dropped: u64,
    },
    /// Reply to [`Request::Subscribe`].
    Subscribed,
    /// Reply to [`Request::Unsubscribe`].
    Unsubscribed,
    /// Reply to [`Request::Deregister`].
    Deregistered,
    /// Reply to [`Request::Stats`].
    Stats(StatsSummary),
    /// Reply to [`Request::MetricsText`].
    MetricsText {
        /// The Prometheus text exposition.
        text: String,
    },
    /// Reply to [`Request::Snapshot`].
    Snapshot {
        /// `Snapshot::to_bytes` output.
        bytes: Vec<u8>,
    },
    /// Reply to [`Request::Drain`].
    Drained,
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Shutdown`]; the server closes every
    /// connection shortly after sending it.
    ShuttingDown,
    /// Any request that failed. The connection stays usable.
    Error {
        /// [`cer_core::ErrorCode`] discriminant
        /// (`ErrorCode::from_u16` recovers the variant).
        code: u16,
        /// Human-readable context.
        message: String,
    },
    /// An unsolicited pushed match (after [`Request::Subscribe`]).
    Event(MatchEvent),
    /// Reply to [`Request::Rescale`].
    Rescaled {
        /// Worker count before the move.
        from: u64,
        /// Worker count after the move.
        to: u64,
        /// Fence-to-resume wall time, in nanoseconds.
        nanos: u64,
    },
    /// Reply to [`Request::SetAutoscale`] and
    /// [`Request::AutoscaleStatus`].
    AutoscaleStatus(AutoscaleSummary),
    /// Reply to [`Request::Checkpoint`].
    CheckpointDone {
        /// Epoch position the checkpoint cut at.
        position: u64,
        /// The checkpoint's epoch counter (dense, one per checkpoint).
        epoch: u64,
        /// Bytes written (before the manifest).
        bytes: u64,
        /// `true` for a full checkpoint, `false` for a delta.
        full: bool,
    },
    /// Reply to [`Request::DurabilityStatus`].
    Durability(DurabilitySummary),
}

/// The compact numeric reply to [`Request::DurabilityStatus`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilitySummary {
    /// `false` when a WAL append failed and logging stopped (the server
    /// keeps serving from memory — alert on this).
    pub healthy: bool,
    /// WAL segment files on disk (sealed + active).
    pub wal_segments: u64,
    /// Bytes appended to the WAL since this process attached it.
    pub wal_bytes: u64,
    /// Records appended to the WAL since this process attached it.
    pub wal_records: u64,
    /// Epoch of the latest committed checkpoint (`None` before the
    /// first).
    pub last_checkpoint_epoch: Option<u64>,
    /// Stream position of the latest committed checkpoint.
    pub last_checkpoint_position: Option<u64>,
    /// Checkpoints a recovery would have to chain (1 after a full).
    pub chain_len: u64,
}

/// The compact numeric reply to [`Request::SetAutoscale`] and
/// [`Request::AutoscaleStatus`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AutoscaleSummary {
    /// Whether the control loop is running.
    pub enabled: bool,
    /// Current worker shard count.
    pub shards: u64,
    /// Rescales performed since the server started (controller-driven
    /// and explicit [`Request::Rescale`] alike).
    pub rescales: u64,
    /// Consecutive hot observations (scale-up streak).
    pub hot_streak: u64,
    /// Consecutive cold observations (scale-down streak).
    pub cold_streak: u64,
    /// Ticks of post-rescale cooldown remaining.
    pub cooldown: u64,
}

/// The compact numeric reply to [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSummary {
    /// Worker shard count.
    pub shards: u64,
    /// Currently registered (live) queries.
    pub queries: u64,
    /// The next global stream position.
    pub next_position: u64,
    /// Tuples shed by ingest backpressure since start.
    pub dropped: u64,
    /// Journal events overwritten before being drained.
    pub events_overwritten: u64,
}

// ---------------------------------------------------------------------
// Wire impls

fn put_policy(w: &mut WireWriter, p: BackpressurePolicy) {
    w.put_u8(match p {
        BackpressurePolicy::Block => 0,
        BackpressurePolicy::DropNewest => 1,
    });
}

fn get_flag(r: &mut WireReader<'_>, ctx: &'static str) -> Result<bool, WireError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Corrupt(ctx)),
    }
}

fn get_policy(r: &mut WireReader<'_>) -> Result<BackpressurePolicy, WireError> {
    match r.get_u8()? {
        0 => Ok(BackpressurePolicy::Block),
        1 => Ok(BackpressurePolicy::DropNewest),
        _ => Err(WireError::Corrupt("unknown backpressure policy tag")),
    }
}

impl Wire for Frontend {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u8(match self {
            Frontend::Hcq => 0,
            Frontend::Pattern => 1,
        });
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Frontend::Hcq),
            1 => Ok(Frontend::Pattern),
            _ => Err(WireError::Corrupt("unknown frontend tag")),
        }
    }
}

impl Wire for Request {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            Request::Hello { version } => {
                w.put_u8(0);
                w.put_u32(*version);
            }
            Request::DeclareRelation { name, arity } => {
                w.put_u8(1);
                w.put_str(name);
                w.put_len(*arity);
            }
            Request::SubmitQuery {
                name,
                frontend,
                text,
                window,
                partition,
                gc_every,
            } => {
                w.put_u8(2);
                w.put_str(name);
                frontend.encode(w)?;
                w.put_str(text);
                window.encode(w)?;
                partition.encode(w)?;
                w.put_u64(*gc_every);
            }
            Request::IngestBatch { tuples } => {
                w.put_u8(3);
                tuples.encode(w)?;
            }
            Request::Subscribe {
                query,
                capacity,
                policy,
            } => {
                w.put_u8(4);
                query.map(|q| q.0).encode(w)?;
                w.put_len(*capacity);
                put_policy(w, *policy);
            }
            Request::Unsubscribe => w.put_u8(5),
            Request::Deregister { id } => {
                w.put_u8(6);
                w.put_u32(id.0);
            }
            Request::Stats => w.put_u8(7),
            Request::MetricsText => w.put_u8(8),
            Request::Snapshot => w.put_u8(9),
            Request::Drain => w.put_u8(10),
            Request::Ping => w.put_u8(11),
            Request::Shutdown => w.put_u8(12),
            Request::Rescale { shards } => {
                w.put_u8(13);
                w.put_len(*shards);
            }
            Request::SetAutoscale { enabled } => {
                w.put_u8(14);
                w.put_u8(u8::from(*enabled));
            }
            Request::AutoscaleStatus => w.put_u8(15),
            Request::Checkpoint => w.put_u8(16),
            Request::DurabilityStatus => w.put_u8(17),
        }
        Ok(())
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Request::Hello {
                version: r.get_u32()?,
            },
            1 => Request::DeclareRelation {
                name: r.get_str()?,
                arity: r.get_len()?,
            },
            2 => Request::SubmitQuery {
                name: r.get_str()?,
                frontend: Frontend::decode(r)?,
                text: r.get_str()?,
                window: WindowPolicy::decode(r)?,
                partition: Option::<Partition>::decode(r)?,
                gc_every: r.get_u64()?,
            },
            3 => Request::IngestBatch {
                tuples: Vec::<Tuple>::decode(r)?,
            },
            4 => Request::Subscribe {
                query: Option::<u32>::decode(r)?.map(QueryId),
                capacity: r.get_len()?,
                policy: get_policy(r)?,
            },
            5 => Request::Unsubscribe,
            6 => Request::Deregister {
                id: QueryId(r.get_u32()?),
            },
            7 => Request::Stats,
            8 => Request::MetricsText,
            9 => Request::Snapshot,
            10 => Request::Drain,
            11 => Request::Ping,
            12 => Request::Shutdown,
            13 => Request::Rescale {
                shards: r.get_len()?,
            },
            14 => Request::SetAutoscale {
                enabled: match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Corrupt("autoscale flag out of range")),
                },
            },
            15 => Request::AutoscaleStatus,
            16 => Request::Checkpoint,
            17 => Request::DurabilityStatus,
            _ => return Err(WireError::Corrupt("unknown request tag")),
        })
    }
}

impl Wire for StatsSummary {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64(self.shards);
        w.put_u64(self.queries);
        w.put_u64(self.next_position);
        w.put_u64(self.dropped);
        w.put_u64(self.events_overwritten);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StatsSummary {
            shards: r.get_u64()?,
            queries: r.get_u64()?,
            next_position: r.get_u64()?,
            dropped: r.get_u64()?,
            events_overwritten: r.get_u64()?,
        })
    }
}

impl Wire for Response {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            Response::Hello { version } => {
                w.put_u8(0);
                w.put_u32(*version);
            }
            Response::RelationDeclared { id } => {
                w.put_u8(1);
                id.encode(w)?;
            }
            Response::QueryAccepted { id } => {
                w.put_u8(2);
                w.put_u32(id.0);
            }
            Response::Ingested {
                start,
                end,
                dropped,
            } => {
                w.put_u8(3);
                w.put_u64(*start);
                w.put_u64(*end);
                w.put_u64(*dropped);
            }
            Response::Subscribed => w.put_u8(4),
            Response::Unsubscribed => w.put_u8(5),
            Response::Deregistered => w.put_u8(6),
            Response::Stats(s) => {
                w.put_u8(7);
                s.encode(w)?;
            }
            Response::MetricsText { text } => {
                w.put_u8(8);
                w.put_str(text);
            }
            Response::Snapshot { bytes } => {
                w.put_u8(9);
                w.put_bytes(bytes);
            }
            Response::Drained => w.put_u8(10),
            Response::Pong => w.put_u8(11),
            Response::ShuttingDown => w.put_u8(12),
            Response::Error { code, message } => {
                w.put_u8(13);
                w.put_u32(u32::from(*code));
                w.put_str(message);
            }
            Response::Event(ev) => {
                w.put_u8(14);
                w.put_u64(ev.position);
                w.put_u32(ev.query.0);
                ev.valuation.encode(w)?;
            }
            Response::Rescaled { from, to, nanos } => {
                w.put_u8(15);
                w.put_u64(*from);
                w.put_u64(*to);
                w.put_u64(*nanos);
            }
            Response::AutoscaleStatus(s) => {
                w.put_u8(16);
                w.put_u8(u8::from(s.enabled));
                w.put_u64(s.shards);
                w.put_u64(s.rescales);
                w.put_u64(s.hot_streak);
                w.put_u64(s.cold_streak);
                w.put_u64(s.cooldown);
            }
            Response::CheckpointDone {
                position,
                epoch,
                bytes,
                full,
            } => {
                w.put_u8(17);
                w.put_u64(*position);
                w.put_u64(*epoch);
                w.put_u64(*bytes);
                w.put_u8(u8::from(*full));
            }
            Response::Durability(s) => {
                w.put_u8(18);
                w.put_u8(u8::from(s.healthy));
                w.put_u64(s.wal_segments);
                w.put_u64(s.wal_bytes);
                w.put_u64(s.wal_records);
                s.last_checkpoint_epoch.encode(w)?;
                s.last_checkpoint_position.encode(w)?;
                w.put_u64(s.chain_len);
            }
        }
        Ok(())
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Response::Hello {
                version: r.get_u32()?,
            },
            1 => Response::RelationDeclared {
                id: RelationId::decode(r)?,
            },
            2 => Response::QueryAccepted {
                id: QueryId(r.get_u32()?),
            },
            3 => Response::Ingested {
                start: r.get_u64()?,
                end: r.get_u64()?,
                dropped: r.get_u64()?,
            },
            4 => Response::Subscribed,
            5 => Response::Unsubscribed,
            6 => Response::Deregistered,
            7 => Response::Stats(StatsSummary::decode(r)?),
            8 => Response::MetricsText { text: r.get_str()? },
            9 => Response::Snapshot {
                bytes: r.get_bytes()?.to_vec(),
            },
            10 => Response::Drained,
            11 => Response::Pong,
            12 => Response::ShuttingDown,
            13 => {
                let code32 = r.get_u32()?;
                let code = u16::try_from(code32)
                    .map_err(|_| WireError::Corrupt("error code out of u16 range"))?;
                Response::Error {
                    code,
                    message: r.get_str()?,
                }
            }
            14 => Response::Event(MatchEvent {
                position: r.get_u64()?,
                query: QueryId(r.get_u32()?),
                valuation: cer_automata::valuation::Valuation::decode(r)?,
            }),
            15 => Response::Rescaled {
                from: r.get_u64()?,
                to: r.get_u64()?,
                nanos: r.get_u64()?,
            },
            16 => Response::AutoscaleStatus(AutoscaleSummary {
                enabled: match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Corrupt("autoscale flag out of range")),
                },
                shards: r.get_u64()?,
                rescales: r.get_u64()?,
                hot_streak: r.get_u64()?,
                cold_streak: r.get_u64()?,
                cooldown: r.get_u64()?,
            }),
            17 => Response::CheckpointDone {
                position: r.get_u64()?,
                epoch: r.get_u64()?,
                bytes: r.get_u64()?,
                full: get_flag(r, "checkpoint full flag out of range")?,
            },
            18 => Response::Durability(DurabilitySummary {
                healthy: get_flag(r, "durability health flag out of range")?,
                wal_segments: r.get_u64()?,
                wal_bytes: r.get_u64()?,
                wal_records: r.get_u64()?,
                last_checkpoint_epoch: Option::<u64>::decode(r)?,
                last_checkpoint_position: Option::<u64>::decode(r)?,
                chain_len: r.get_u64()?,
            }),
            _ => return Err(WireError::Corrupt("unknown response tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::tuple::tup;

    #[test]
    fn frame_roundtrip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"d").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"abc"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"d"
        );
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_and_empty_frames_are_rejected() {
        // Oversized: length prefix above the cap.
        let mut buf = 100u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 100]);
        let err = read_frame(&mut io::Cursor::new(&buf), 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(matches!(parse_frame(&buf, 10), Err(WireError::Corrupt(_))));
        // Empty: zero-length payload.
        let buf = 0u32.to_le_bytes().to_vec();
        let err = read_frame(&mut io::Cursor::new(&buf), 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // EOF mid-frame.
        let mut buf = 8u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut io::Cursor::new(&buf), 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // parse_frame reports "incomplete", not an error, for the same.
        assert!(parse_frame(&buf, 10).unwrap().is_none());
    }

    #[test]
    fn request_roundtrip_all_ops() {
        let reqs = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::DeclareRelation {
                name: "TEMP".into(),
                arity: 2,
            },
            Request::SubmitQuery {
                name: "q".into(),
                frontend: Frontend::Hcq,
                text: "Q(x) <- T(x)".into(),
                window: WindowPolicy::Count(8),
                partition: Some(Partition::ByKey { pos: 0 }),
                gc_every: 4,
            },
            Request::IngestBatch {
                tuples: vec![tup(RelationId(0), [1i64, 2])],
            },
            Request::Subscribe {
                query: Some(QueryId(3)),
                capacity: 128,
                policy: BackpressurePolicy::DropNewest,
            },
            Request::Unsubscribe,
            Request::Deregister { id: QueryId(1) },
            Request::Stats,
            Request::MetricsText,
            Request::Snapshot,
            Request::Drain,
            Request::Ping,
            Request::Shutdown,
            Request::Rescale { shards: 4 },
            Request::SetAutoscale { enabled: true },
            Request::AutoscaleStatus,
            Request::Checkpoint,
            Request::DurabilityStatus,
        ];
        for req in reqs {
            let bytes = encode_message(&req).unwrap();
            assert_eq!(decode_message::<Request>(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip_all_ops() {
        use cer_automata::valuation::Valuation;
        let resps = vec![
            Response::Hello {
                version: PROTOCOL_VERSION,
            },
            Response::RelationDeclared { id: RelationId(7) },
            Response::QueryAccepted { id: QueryId(2) },
            Response::Ingested {
                start: 10,
                end: 20,
                dropped: 1,
            },
            Response::Subscribed,
            Response::Unsubscribed,
            Response::Deregistered,
            Response::Stats(StatsSummary {
                shards: 4,
                queries: 2,
                next_position: 99,
                dropped: 0,
                events_overwritten: 3,
            }),
            Response::MetricsText {
                text: "# HELP x\n".into(),
            },
            Response::Snapshot {
                bytes: vec![1, 2, 3],
            },
            Response::Drained,
            Response::Pong,
            Response::ShuttingDown,
            Response::Error {
                code: 21,
                message: "no such query".into(),
            },
            Response::Event(MatchEvent {
                position: 5,
                query: QueryId(0),
                valuation: Valuation::empty(2),
            }),
            Response::Rescaled {
                from: 2,
                to: 4,
                nanos: 12_345,
            },
            Response::AutoscaleStatus(AutoscaleSummary {
                enabled: true,
                shards: 4,
                rescales: 2,
                hot_streak: 1,
                cold_streak: 0,
                cooldown: 3,
            }),
            Response::CheckpointDone {
                position: 1_000,
                epoch: 3,
                bytes: 4_096,
                full: false,
            },
            Response::Durability(DurabilitySummary {
                healthy: true,
                wal_segments: 2,
                wal_bytes: 1 << 20,
                wal_records: 512,
                last_checkpoint_epoch: Some(3),
                last_checkpoint_position: Some(1_000),
                chain_len: 2,
            }),
            Response::Durability(DurabilitySummary::default()),
        ];
        for resp in resps {
            let bytes = encode_message(&resp).unwrap();
            assert_eq!(
                decode_message::<Response>(&bytes).unwrap(),
                resp,
                "{resp:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut bytes = encode_message(&Request::Ping).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_message::<Request>(&bytes),
            Err(WireError::Corrupt(_))
        ));
    }
}

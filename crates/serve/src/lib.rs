//! # cer-serve: a std-only TCP front door for the runtime
//!
//! This crate turns a [`cer_core::Runtime`] into a network service
//! without pulling in an async runtime: a thread-per-connection
//! [`Server`] speaks a length-framed binary protocol built on
//! [`cer_common::wire`], and a blocking [`Client`] drives it.
//!
//! ```text
//!   +-----------+   [u32 LE len][payload]    +-----------------+
//!   |  Client   | <------------------------> |     Server      |
//!   | (blocking)|   Request ->, <- Response  | (thread / conn) |
//!   +-----------+   <- Event (pushed)        +--------+--------+
//!                                                     |
//!                                            IngestHandle + Runtime
//! ```
//!
//! Everything a client can do maps onto one [`protocol::Request`] op:
//! declare relations, submit standing queries in either front-end
//! language ([`Frontend::Hcq`] or [`Frontend::Pattern`]), ingest tuple
//! batches, subscribe to pushed [`MatchEvent`](cer_core::runtime::MatchEvent)
//! frames with a chosen backpressure policy, fetch stats / Prometheus
//! metrics / snapshots, fence with drain, live-reshard the worker set
//! ([`protocol::Request::Rescale`]) or hand the shard count to the
//! server's autoscale controller
//! ([`protocol::Request::SetAutoscale`]), and shut the server down
//! gracefully. Server-side failures travel as
//! [`protocol::Response::Error`] carrying the stable
//! [`cer_core::ErrorCode`] — malformed input never kills the server or
//! the connection.
//!
//! ## Quick start
//!
//! ```no_run
//! use cer_serve::{Client, Frontend, ServeConfig, Server};
//! use cer_core::window::WindowPolicy;
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.declare_relation("temp", 2).unwrap();
//! client
//!     .submit_query(
//!         "hot",
//!         Frontend::Hcq,
//!         "Hot(s, x) <- temp(s, x)",
//!         WindowPolicy::Count(1024),
//!         None,
//!     )
//!     .unwrap();
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    AutoscaleSummary, Frontend, Request, Response, StatsSummary, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server};

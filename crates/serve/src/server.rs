//! The thread-per-connection TCP server in front of a
//! [`Runtime`].
//!
//! Architecture (std-only, no async runtime):
//!
//! * one **accept thread** blocks on [`TcpListener::accept`] and spawns
//!   a handler thread per connection;
//! * each **connection thread** loops `read_frame → decode → handle →
//!   write_frame`, with a short read timeout so it can observe the
//!   server-wide shutdown flag between frames;
//! * a connection that subscribes gets a **pusher thread** that drains
//!   its [`Subscription`](cer_core::ingest::Subscription) and writes
//!   [`Response::Event`] frames; pusher
//!   and handler share the socket through a mutex taken per whole
//!   frame, so frames never interleave;
//! * the **control plane** (submit/deregister/stats/snapshot/drain)
//!   goes through one `Mutex<Runtime>`; the **hot path** (ingest) uses
//!   a cloned lock-free [`IngestHandle`], so concurrent producers never
//!   serialize on the control-plane lock.
//!
//! Graceful shutdown ([`Request::Shutdown`] or [`Server::stop`]) sets a
//! flag, wakes the accept loop with a self-connection, joins every
//! connection (their read timeouts bound the latency), and finally
//! shuts the runtime down, returning its final [`RuntimeStats`].
//!
//! Every failure a request can hit — schema conflicts, parse/compile
//! rejections, unknown queries, wire corruption — maps through
//! [`cer_core::Error::code`] onto the stable
//! [`ErrorCode`](cer_core::error::ErrorCode) table that
//! [`Response::Error`] carries; the connection survives all of them.

use crate::protocol::{
    decode_message, encode_message, read_frame, write_frame, AutoscaleSummary, DurabilitySummary,
    Frontend, Request, Response, StatsSummary, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use cer_common::Schema;
use cer_core::ingest::{IngestHandle, SubscriptionFilter};
use cer_core::runtime::{QuerySpec, Runtime, RuntimeStats};
use cer_core::{AutoscalePolicy, Controller, Error, RuntimeConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Construction-time knobs of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The runtime underneath the listener — one config value carries
    /// the whole engine setup ([`RuntimeConfig`]).
    pub runtime: RuntimeConfig,
    /// Per-frame payload cap, both directions.
    pub max_frame: usize,
    /// Subscription channel capacity used when a
    /// [`Request::Subscribe`] asks for capacity 0 ("server default").
    pub default_sub_capacity: usize,
    /// Socket read timeout: how often idle connection (and pusher)
    /// threads wake to observe the shutdown flag. Bounds shutdown
    /// latency, not request latency.
    pub poll_interval: Duration,
    /// Hysteresis policy for the autoscale controller (the loop itself
    /// starts paused; [`Request::SetAutoscale`] turns it on).
    pub autoscale: AutoscalePolicy,
    /// How often the (enabled) autoscale controller samples load
    /// signals. Streak thresholds in [`ServeConfig::autoscale`] are
    /// counted in these ticks.
    pub autoscale_interval: Duration,
    /// Data directory for durability. `Some(dir)` opens the runtime
    /// with [`Runtime::open_durable`]: recover whatever `dir` holds
    /// (checkpoints + WAL) or initialize it fresh, then log every
    /// replayable operation and accept [`Request::Checkpoint`]. `None`
    /// (the default) serves purely in memory.
    pub data_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            runtime: RuntimeConfig::default(),
            max_frame: DEFAULT_MAX_FRAME,
            default_sub_capacity: 1 << 16,
            poll_interval: Duration::from_millis(50),
            autoscale: AutoscalePolicy::default(),
            autoscale_interval: Duration::from_millis(100),
            data_dir: None,
        }
    }
}

impl ServeConfig {
    /// Serve durably out of `dir` (see [`ServeConfig::data_dir`]).
    pub fn with_data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }
}

impl From<RuntimeConfig> for ServeConfig {
    fn from(runtime: RuntimeConfig) -> Self {
        ServeConfig {
            runtime,
            ..Self::default()
        }
    }
}

struct Shared {
    /// `None` only after the server took the runtime out for shutdown.
    runtime: Mutex<Option<Runtime>>,
    schema: Mutex<Schema>,
    /// Cloned once at bind: ingest never touches the `runtime` mutex.
    ingest: IngestHandle,
    shutdown: AtomicBool,
    /// Whether the autoscale control loop is running. The controller
    /// thread exists for the server's whole life and idles while this
    /// is false.
    autoscale_on: AtomicBool,
    /// The hysteresis controller's streak state, shared between the
    /// control loop and status requests. Lock order: `controller`
    /// before `runtime`, always.
    controller: Mutex<Controller>,
    config: ServeConfig,
    addr: SocketAddr,
}

/// A listening server. Bind with [`Server::bind`], stop with
/// [`Server::stop`] (or remotely via [`Request::Shutdown`] +
/// [`Server::run_until_shutdown`]).
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    autoscaler: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind a listener (use port 0 for an ephemeral port) over a fresh
    /// runtime built from `config.runtime`.
    pub fn bind(addr: impl ToSocketAddrs, config: impl Into<ServeConfig>) -> io::Result<Server> {
        let config = config.into();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let runtime = match &config.data_dir {
            Some(dir) => Runtime::open_durable(dir.clone(), config.runtime)
                .map_err(|e| io::Error::other(e.to_string()))?,
            None => Runtime::new(config.runtime),
        };
        let ingest = runtime.ingest_handle();
        let shared = Arc::new(Shared {
            runtime: Mutex::new(Some(runtime)),
            schema: Mutex::new(Schema::new()),
            ingest,
            shutdown: AtomicBool::new(false),
            autoscale_on: AtomicBool::new(false),
            controller: Mutex::new(Controller::new(config.autoscale)),
            config,
            addr,
        });
        let accept_shared = shared.clone();
        let accept = thread::Builder::new()
            .name("cer-serve-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        let scale_shared = shared.clone();
        let autoscaler = thread::Builder::new()
            .name("cer-serve-autoscale".into())
            .spawn(move || autoscale_loop(scale_shared))?;
        Ok(Server {
            shared,
            accept: Some(accept),
            autoscaler: Some(autoscaler),
        })
    }

    /// The bound address (resolves the actual port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a shutdown has been requested (locally or by a client).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Park until some client sends [`Request::Shutdown`] (or another
    /// thread calls for shutdown), then stop and return the runtime's
    /// final stats.
    pub fn run_until_shutdown(self) -> RuntimeStats {
        while !self.is_shutting_down() {
            thread::sleep(self.shared.config.poll_interval);
        }
        self.stop()
    }

    /// Graceful shutdown: close the listener and every connection, then
    /// drain and stop the runtime, returning its final stats.
    pub fn stop(mut self) -> RuntimeStats {
        let conns = self.begin_stop();
        for c in conns {
            let _ = c.join();
        }
        let runtime = self
            .shared
            .runtime
            .lock()
            .expect("runtime mutex poisoned")
            .take()
            .expect("server stopped twice");
        runtime.shutdown()
    }

    /// Raise the flag, wake the accept loop, and join it, returning the
    /// live connection handles.
    fn begin_stop(&mut self) -> Vec<JoinHandle<()>> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.autoscaler.take() {
            let _ = h.join();
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
        match self.accept.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `stop` disarms by taking `accept`; an un-stopped server still
        // joins its threads so tests cannot leak listeners.
        if self.accept.is_some() {
            for c in self.begin_stop() {
                let _ = c.join();
            }
            if let Some(rt) = self
                .shared
                .runtime
                .lock()
                .expect("runtime mutex poisoned")
                .take()
            {
                rt.shutdown();
            }
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) -> Vec<JoinHandle<()>> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn_shared = shared.clone();
                if let Ok(handle) = thread::Builder::new()
                    .name("cer-serve-conn".into())
                    .spawn(move || handle_connection(conn_shared, stream))
                {
                    conns.push(handle);
                }
                // Opportunistically reap finished connections so a
                // long-lived server does not accumulate dead handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    conns
}

/// The autoscale control loop: one tick per `autoscale_interval`,
/// sleeping in `poll_interval` slices so shutdown never waits out a
/// long interval. Each tick (while enabled) feeds current load signals
/// through the shared [`Controller`] and rescales on a confirmed
/// streak; a failed rescale leaves the flag up and retries next tick.
fn autoscale_loop(shared: Arc<Shared>) {
    let slice = shared
        .config
        .poll_interval
        .min(shared.config.autoscale_interval);
    let mut slept = Duration::ZERO;
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(slice);
        slept += slice;
        if slept < shared.config.autoscale_interval {
            continue;
        }
        slept = Duration::ZERO;
        if !shared.autoscale_on.load(Ordering::SeqCst) {
            continue;
        }
        let mut controller = shared.controller.lock().expect("controller mutex poisoned");
        let mut guard = shared.runtime.lock().expect("runtime mutex poisoned");
        if let Some(runtime) = guard.as_mut() {
            let _ = runtime.autoscale_tick(&mut controller);
        }
    }
}

/// Build the [`Response::AutoscaleStatus`] reply under the shared lock
/// order (controller, then runtime).
fn autoscale_status(shared: &Shared) -> Result<Response, Error> {
    let controller = shared.controller.lock().expect("controller mutex poisoned");
    let guard = shared.runtime.lock().expect("runtime mutex poisoned");
    let runtime = guard
        .as_ref()
        .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
    let (hot, cold, cooldown) = controller.streaks();
    Ok(Response::AutoscaleStatus(AutoscaleSummary {
        enabled: shared.autoscale_on.load(Ordering::SeqCst),
        shards: runtime.num_shards() as u64,
        rescales: runtime.rescale_counters().rescales,
        hot_streak: u64::from(hot),
        cold_streak: u64::from(cold),
        cooldown: u64::from(cooldown),
    }))
}

/// The per-connection subscription: a stop flag shared with the pusher
/// thread plus the pusher's handle.
struct ActiveSubscription {
    stop: Arc<AtomicBool>,
    pusher: JoinHandle<()>,
}

impl ActiveSubscription {
    fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.pusher.join();
    }
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut read_half = stream;
    let mut subscription: Option<ActiveSubscription> = None;

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let payload = match read_frame(&mut read_half, shared.config.max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => break, // peer closed
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break, // corrupt framing or dead socket
        };
        let response = match decode_message::<Request>(&payload) {
            Err(wire) => error_response(&Error::Wire(wire)),
            Ok(request) => handle_request(&shared, &writer, &mut subscription, request)
                .unwrap_or_else(|e| error_response(&e)),
        };
        if send(&writer, &response).is_err() {
            break;
        }
    }
    if let Some(sub) = subscription.take() {
        sub.stop();
    }
}

fn error_response(e: &Error) -> Response {
    Response::Error {
        code: e.code().as_u16(),
        message: e.to_string(),
    }
}

fn send(writer: &Arc<Mutex<TcpStream>>, response: &Response) -> io::Result<()> {
    let payload = encode_message(response)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
    let mut w = writer.lock().expect("connection writer poisoned");
    write_frame(&mut *w, &payload)
}

fn handle_request(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    subscription: &mut Option<ActiveSubscription>,
    request: Request,
) -> Result<Response, Error> {
    match request {
        Request::Hello { version: _ } => Ok(Response::Hello {
            version: PROTOCOL_VERSION,
        }),
        Request::DeclareRelation { name, arity } => {
            let mut schema = shared.schema.lock().expect("schema mutex poisoned");
            let id = schema.add_relation(&name, arity).map_err(Error::Data)?;
            Ok(Response::RelationDeclared { id })
        }
        Request::SubmitQuery {
            name,
            frontend,
            text,
            window,
            partition,
            gc_every,
        } => {
            let pcea = {
                let mut schema = shared.schema.lock().expect("schema mutex poisoned");
                compile_query_text(&mut schema, frontend, &text)?
            };
            let partition = partition.unwrap_or(shared.config.runtime.default_partition);
            let spec = QuerySpec::new(name, pcea, window)
                .with_partition(partition)
                .with_gc_every(gc_every);
            let mut guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_mut()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            let id = runtime.register(spec).map_err(Error::Runtime)?;
            Ok(Response::QueryAccepted { id })
        }
        Request::IngestBatch { tuples } => {
            // Validate against the schema before stamping: a remote
            // client's malformed tuple must not reach the evaluators.
            {
                let schema = shared.schema.lock().expect("schema mutex poisoned");
                for t in &tuples {
                    validate_tuple(&schema, t)?;
                }
            }
            let receipt = shared.ingest.push_batch(&tuples).map_err(Error::Ingest)?;
            Ok(Response::Ingested {
                start: receipt.positions.start,
                end: receipt.positions.end,
                dropped: receipt.dropped,
            })
        }
        Request::Subscribe {
            query,
            capacity,
            policy,
        } => {
            if subscription.is_some() {
                return Err(Error::Protocol(
                    "connection already has a subscription".into(),
                ));
            }
            let capacity = if capacity == 0 {
                shared.config.default_sub_capacity
            } else {
                capacity
            };
            let sub = {
                let guard = shared.runtime.lock().expect("runtime mutex poisoned");
                let runtime = guard
                    .as_ref()
                    .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
                let filter = match query {
                    Some(id) => {
                        if runtime.query_name(id).is_none() {
                            return Err(Error::Runtime(
                                cer_core::runtime::RuntimeError::UnknownQuery { id },
                            ));
                        }
                        SubscriptionFilter::Query(id)
                    }
                    None => SubscriptionFilter::All,
                };
                runtime.subscribe_with(filter, capacity, policy)
            };
            let stop = Arc::new(AtomicBool::new(false));
            let pusher_stop = stop.clone();
            let pusher_shared = shared.clone();
            let pusher_writer = writer.clone();
            let pusher = thread::Builder::new()
                .name("cer-serve-push".into())
                .spawn(move || {
                    let tick = pusher_shared.config.poll_interval;
                    while !pusher_stop.load(Ordering::SeqCst)
                        && !pusher_shared.shutdown.load(Ordering::SeqCst)
                    {
                        if let Some(event) = sub.recv_timeout(tick) {
                            if send(&pusher_writer, &Response::Event(event)).is_err() {
                                break;
                            }
                        }
                    }
                })
                .map_err(|e| Error::Protocol(format!("cannot spawn pusher thread: {e}")))?;
            *subscription = Some(ActiveSubscription { stop, pusher });
            Ok(Response::Subscribed)
        }
        Request::Unsubscribe => match subscription.take() {
            Some(sub) => {
                sub.stop();
                Ok(Response::Unsubscribed)
            }
            None => Err(Error::Protocol("no subscription on this connection".into())),
        },
        Request::Deregister { id } => {
            let mut guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_mut()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            runtime.deregister(id).map_err(Error::Runtime)?;
            Ok(Response::Deregistered)
        }
        Request::Stats => {
            let guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_ref()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            Ok(Response::Stats(StatsSummary {
                shards: runtime.num_shards() as u64,
                queries: runtime.num_queries() as u64,
                next_position: runtime.next_position(),
                dropped: shared.ingest.total_dropped(),
                events_overwritten: runtime.events_overwritten(),
            }))
        }
        Request::MetricsText => {
            let guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_ref()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            Ok(Response::MetricsText {
                text: runtime.metrics_text(),
            })
        }
        Request::Snapshot => {
            let mut guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_mut()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            let snapshot = runtime.snapshot().map_err(Error::Snapshot)?;
            let bytes = snapshot.to_bytes().map_err(Error::Snapshot)?;
            Ok(Response::Snapshot { bytes })
        }
        Request::Drain => {
            let guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_ref()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            runtime.drain();
            Ok(Response::Drained)
        }
        Request::Ping => Ok(Response::Pong),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `run_until_shutdown`/`stop` can
            // join it promptly.
            let _ = TcpStream::connect(shared.addr);
            Ok(Response::ShuttingDown)
        }
        Request::Rescale { shards } => {
            let mut guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_mut()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            let from = runtime.num_shards() as u64;
            runtime.rescale(shards).map_err(Error::Runtime)?;
            Ok(Response::Rescaled {
                from,
                to: shards as u64,
                nanos: runtime.rescale_counters().last_rescale_nanos,
            })
        }
        Request::SetAutoscale { enabled } => {
            // Re-enabling starts from a clean controller so stale
            // streaks from a past epoch cannot trigger a move.
            if enabled && !shared.autoscale_on.swap(true, Ordering::SeqCst) {
                let mut controller = shared.controller.lock().expect("controller mutex poisoned");
                *controller = Controller::new(shared.config.autoscale);
            }
            if !enabled {
                shared.autoscale_on.store(false, Ordering::SeqCst);
            }
            autoscale_status(shared)
        }
        Request::AutoscaleStatus => autoscale_status(shared),
        Request::Checkpoint => {
            let mut guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_mut()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            let stats = runtime.checkpoint().map_err(Error::Durability)?;
            Ok(Response::CheckpointDone {
                position: stats.position,
                epoch: stats.epoch,
                bytes: stats.bytes,
                full: stats.full,
            })
        }
        Request::DurabilityStatus => {
            let guard = shared.runtime.lock().expect("runtime mutex poisoned");
            let runtime = guard
                .as_ref()
                .ok_or(Error::Ingest(cer_core::IngestError::RuntimeClosed))?;
            let status = runtime
                .durability_status()
                .ok_or(Error::Durability(cer_core::DurabilityError::NotDurable))?;
            Ok(Response::Durability(DurabilitySummary {
                healthy: status.healthy,
                wal_segments: status.wal_segments,
                wal_bytes: status.wal_bytes,
                wal_records: status.wal_records,
                last_checkpoint_epoch: status.last_checkpoint_epoch,
                last_checkpoint_position: status.last_checkpoint_position,
                chain_len: status.chain_len,
            }))
        }
    }
}

/// Parse and compile a submitted query through the requested front-end,
/// mapping both failure layers onto the unified error.
fn compile_query_text(
    schema: &mut Schema,
    frontend: Frontend,
    text: &str,
) -> Result<cer_automata::pcea::Pcea, Error> {
    match frontend {
        Frontend::Hcq => {
            let query = cer_cq::parser::parse_query(schema, text)
                .map_err(|e| Error::Parse(e.to_string()))?;
            let compiled = cer_cq::compile::compile_hcq(schema, &query)
                .map_err(|e| Error::Compile(e.to_string()))?;
            Ok(compiled.pcea)
        }
        Frontend::Pattern => {
            let expr =
                cer_lang::parse_pattern(schema, text).map_err(|e| Error::Parse(e.to_string()))?;
            let compiled = cer_lang::compile_pattern(schema, &expr)
                .map_err(|e| Error::Compile(e.to_string()))?;
            Ok(compiled.pcea)
        }
    }
}

/// A remote tuple must name a declared relation with the right arity.
fn validate_tuple(schema: &Schema, t: &cer_common::Tuple) -> Result<(), Error> {
    let rel = t.relation();
    if rel.index() >= schema.len() {
        return Err(Error::Data(cer_common::CommonError::UnknownRelation {
            name: format!("#{}", rel.0),
        }));
    }
    let expected = schema.arity(rel);
    if t.arity() != expected {
        return Err(Error::Data(cer_common::CommonError::ArityMismatch {
            relation: schema.name(rel).to_string(),
            expected,
            got: t.arity(),
        }));
    }
    Ok(())
}

//! A blocking client for the serving protocol.
//!
//! One [`Client`] owns one TCP connection. Requests are answered in
//! order, but after [`Client::subscribe`] the server interleaves
//! unsolicited [`Response::Event`] frames onto the same socket; the
//! client buffers those aside while waiting for a request's reply, and
//! [`Client::next_event`] drains them (buffer first, then the socket).
//!
//! A server-side failure arrives as [`ClientError::Remote`] carrying
//! the stable [`ErrorCode`] the server serialized — the connection
//! stays usable after it.

use crate::protocol::{
    decode_message, encode_message, read_frame, write_frame, AutoscaleSummary, DurabilitySummary,
    Frontend, Request, Response, StatsSummary, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use cer_common::wire::WireError;
use cer_common::{RelationId, Tuple};
use cer_core::runtime::{MatchEvent, Partition, QueryId};
use cer_core::window::WindowPolicy;
use cer_core::{BackpressurePolicy, ErrorCode};
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (or closed mid-conversation).
    Io(io::Error),
    /// A frame decoded to garbage.
    Wire(WireError),
    /// The server reported an error for the request.
    Remote {
        /// The decoded code, `None` if this client build does not know
        /// it (newer server).
        code: Option<ErrorCode>,
        /// The raw wire discriminant.
        raw_code: u16,
        /// The server's message.
        message: String,
    },
    /// The server answered with a response type the request cannot
    /// produce — a protocol bug on one side.
    Unexpected(Response),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote {
                code,
                raw_code,
                message,
            } => match code {
                Some(c) => write!(f, "server error [{c}]: {message}"),
                None => write!(f, "server error [unknown code {raw_code}]: {message}"),
            },
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a [`Server`](crate::server::Server).
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    /// Events that arrived while waiting for a request's reply.
    pending_events: VecDeque<MatchEvent>,
}

impl Client {
    /// Connect and exchange [`Request::Hello`]. Fails fast on a
    /// protocol-version skew.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            pending_events: VecDeque::new(),
        };
        match client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::Hello { version } => Err(ClientError::Remote {
                code: None,
                raw_code: 0,
                message: format!("server protocol version {version}, client {PROTOCOL_VERSION}"),
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Override the frame cap (must match the server's to make use of
    /// larger batches).
    pub fn set_max_frame(&mut self, max_frame: usize) {
        self.max_frame = max_frame;
    }

    /// Declare (or look up) a relation.
    pub fn declare_relation(
        &mut self,
        name: &str,
        arity: usize,
    ) -> Result<RelationId, ClientError> {
        match self.call(&Request::DeclareRelation {
            name: name.to_string(),
            arity,
        })? {
            Response::RelationDeclared { id } => Ok(id),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Submit a standing query in the given front-end language.
    pub fn submit_query(
        &mut self,
        name: &str,
        frontend: Frontend,
        text: &str,
        window: WindowPolicy,
        partition: Option<Partition>,
    ) -> Result<QueryId, ClientError> {
        match self.call(&Request::SubmitQuery {
            name: name.to_string(),
            frontend,
            text: text.to_string(),
            window,
            partition,
            gc_every: 0,
        })? {
            Response::QueryAccepted { id } => Ok(id),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Ingest a batch; returns `(first_position, one_past_last, dropped)`.
    pub fn ingest(&mut self, tuples: Vec<Tuple>) -> Result<(u64, u64, u64), ClientError> {
        match self.call(&Request::IngestBatch { tuples })? {
            Response::Ingested {
                start,
                end,
                dropped,
            } => Ok((start, end, dropped)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Start the event stream (one subscription per connection).
    /// `capacity` 0 uses the server default.
    pub fn subscribe(
        &mut self,
        query: Option<QueryId>,
        capacity: usize,
        policy: BackpressurePolicy,
    ) -> Result<(), ClientError> {
        match self.call(&Request::Subscribe {
            query,
            capacity,
            policy,
        })? {
            Response::Subscribed => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Stop the event stream. Events already in flight stay readable
    /// via [`next_event`](Self::next_event)'s buffer.
    pub fn unsubscribe(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Unsubscribe)? {
            Response::Unsubscribed => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Remove a standing query.
    pub fn deregister(&mut self, id: QueryId) -> Result<(), ClientError> {
        match self.call(&Request::Deregister { id })? {
            Response::Deregistered => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The server's compact stats summary.
    pub fn stats(&mut self) -> Result<StatsSummary, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The server's Prometheus text exposition.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::MetricsText)? {
            Response::MetricsText { text } => Ok(text),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// An epoch-consistent snapshot of the server's runtime
    /// (`Snapshot::from_bytes` recovers it).
    pub fn snapshot(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot { bytes } => Ok(bytes),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fence the pipeline: returns once everything ingested before the
    /// call was evaluated and delivered (including to this
    /// connection's subscription channel, though events may still be in
    /// flight on the socket).
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Drain)? {
            Response::Drained => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Live-reshard the server's runtime to `shards` workers; returns
    /// `(from, to, fence_to_resume_nanos)`. Ingest, queries and this
    /// connection's subscription all survive the move.
    pub fn rescale(&mut self, shards: usize) -> Result<(u64, u64, u64), ClientError> {
        match self.call(&Request::Rescale { shards })? {
            Response::Rescaled { from, to, nanos } => Ok((from, to, nanos)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Start or pause the server's autoscale control loop; returns the
    /// status after the change.
    pub fn set_autoscale(&mut self, enabled: bool) -> Result<AutoscaleSummary, ClientError> {
        match self.call(&Request::SetAutoscale { enabled })? {
            Response::AutoscaleStatus(s) => Ok(s),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The autoscale controller's current status.
    pub fn autoscale_status(&mut self) -> Result<AutoscaleSummary, ClientError> {
        match self.call(&Request::AutoscaleStatus)? {
            Response::AutoscaleStatus(s) => Ok(s),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Ask a durable server to cut a checkpoint now; returns
    /// `(position, epoch, bytes, full)` of the checkpoint written.
    /// Fails with [`ErrorCode::NotDurable`] on an in-memory server.
    pub fn checkpoint(&mut self) -> Result<(u64, u64, u64, bool), ClientError> {
        match self.call(&Request::Checkpoint)? {
            Response::CheckpointDone {
                position,
                epoch,
                bytes,
                full,
            } => Ok((position, epoch, bytes, full)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Health and volume counters of a durable server's WAL and
    /// checkpoint chain. Fails with [`ErrorCode::NotDurable`] on an
    /// in-memory server.
    pub fn durability_status(&mut self) -> Result<DurabilitySummary, ClientError> {
        match self.call(&Request::DurabilityStatus)? {
            Response::Durability(s) => Ok(s),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The next pushed match event: from the local buffer if one is
    /// queued, else waiting up to `timeout` on the socket. `Ok(None)`
    /// on timeout or a cleanly closed connection.
    pub fn next_event(&mut self, timeout: Duration) -> Result<Option<MatchEvent>, ClientError> {
        if let Some(ev) = self.pending_events.pop_front() {
            return Ok(Some(ev));
        }
        // A zero timeout would mean "block forever" to the socket API.
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let outcome = match read_frame(&mut self.stream, self.max_frame) {
            Ok(Some(payload)) => match decode_message::<Response>(&payload)? {
                Response::Event(ev) => Ok(Some(ev)),
                other => Err(ClientError::Unexpected(other)),
            },
            Ok(None) => Ok(None),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        };
        self.stream.set_read_timeout(None)?;
        outcome
    }

    /// One request/response round-trip, buffering any [`Response::Event`]
    /// frames that arrive first and unwrapping [`Response::Error`] into
    /// [`ClientError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = encode_message(request)?;
        write_frame(&mut self.stream, &payload)?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_frame)?.ok_or_else(|| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-call",
                ))
            })?;
            match decode_message::<Response>(&frame)? {
                Response::Event(ev) => self.pending_events.push_back(ev),
                Response::Error { code, message } => {
                    return Err(ClientError::Remote {
                        code: ErrorCode::from_u16(code),
                        raw_code: code,
                        message,
                    })
                }
                other => return Ok(other),
            }
        }
    }
}

//! The enumeration data structure `DS_w` (Section 5).
//!
//! `DS_w` represents bags of valuations compactly: each node carries a
//! pair `(L, i)` (labels marking position `i`), a *product* list `prod`
//! (the bag `⟦n⟧_prod = {{ν_{L,i}}} ⊕ ⨁_{n′∈prod} ⟦n′⟧`), and two *union*
//! links `uleft`/`uright` (`⟦n⟧ = ⟦n⟧_prod ∪ ⟦uleft⟧ ∪ ⟦uright⟧`). The
//! per-node value `max-start(n) = max{min(ν) | ν ∈ ⟦n⟧_prod}` supports
//! sliding-window pruning: the bag `⟦n⟧^w_i` is non-empty iff
//! `i − max-start(n) ≤ w`, and the heap condition (‡)
//! (`max-start(n) ≥ max-start(uleft/uright(n))`) makes the check
//! hereditary.
//!
//! Nodes live in an arena and are never mutated (full persistence, as
//! Proposition 5.3 requires): [`EnumStructure::union`] is a persistent
//! *leftist max-heap meld* on `max-start`, copying `O(log n)` nodes per
//! call — the same bound as the paper's direction-bit balanced tree, with
//! a heap invariant that is easier to verify. Melding also drops subtrees
//! that have slid out of the window (the paper's
//! `|max-start(n1) − i(n2)| > w ⇒ union(n1,n2) = n2` case), which bounds
//! live union-tree sizes by `O(k·w)`.

use cer_automata::valuation::LabelSet;

/// Index of a node in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

/// The bottom node `⊥` (empty bag).
pub const BOTTOM: NodeId = NodeId(u32::MAX);

impl NodeId {
    /// Whether this is `⊥`.
    #[inline]
    pub fn is_bottom(self) -> bool {
        self == BOTTOM
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immutable `DS_w` node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Labels `L(n)` marking position `i(n)`.
    pub labels: LabelSet,
    /// Stream position `i(n)`.
    pub pos: u64,
    /// `max{min(ν) | ν ∈ ⟦n⟧_prod}`.
    pub max_start: u64,
    /// Leftist rank (s-value) of the union tree rooted here.
    pub rank: u32,
    /// Product children.
    pub prod: Box<[NodeId]>,
    /// Left union link.
    pub uleft: NodeId,
    /// Right union link.
    pub uright: NodeId,
}

/// The arena of `DS_w` nodes.
#[derive(Clone, Debug, Default)]
pub struct EnumStructure {
    nodes: Vec<Node>,
}

impl EnumStructure {
    /// An empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes ever allocated (until compaction).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// `max-start` with `⊥ ↦ 0` (never in any window).
    #[inline]
    pub fn max_start(&self, id: NodeId) -> u64 {
        if id.is_bottom() {
            0
        } else {
            self.nodes[id.index()].max_start
        }
    }

    #[inline]
    fn rank(&self, id: NodeId) -> u32 {
        if id.is_bottom() {
            0
        } else {
            self.nodes[id.index()].rank
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        assert!(self.nodes.len() < u32::MAX as usize, "arena full");
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// The paper's `extend(L, i, N)`: a fresh node `n_e` with
    /// `⟦n_e⟧ = {{ν_{L,i}}} ⊕ ⨁_{n∈N} ⟦n⟧` and
    /// `max-start(n_e) = min(i, min_N max-start)`. Runs in `O(|N|)`.
    ///
    /// Requires `pos(n) < i` for every `n ∈ N` (runs only gather strictly
    /// earlier runs).
    pub fn extend(&mut self, labels: LabelSet, pos: u64, prod: &[NodeId]) -> NodeId {
        debug_assert!(
            prod.iter().all(|&n| self.node(n).pos < pos),
            "extend gathers strictly earlier nodes"
        );
        let max_start = prod
            .iter()
            .map(|&n| self.max_start(n))
            .min()
            .map_or(pos, |m| m.min(pos));
        self.push(Node {
            labels,
            pos,
            max_start,
            rank: 1,
            prod: prod.into(),
            uleft: BOTTOM,
            uright: BOTTOM,
        })
    }

    /// The paper's `union(n1, n2)`: a node `n_u` with
    /// `⟦n_u⟧^w_i = ⟦n1⟧^w_i ∪ ⟦n2⟧^w_i`, fully persistent.
    ///
    /// Implemented as a leftist max-heap meld on `max-start`; subtrees
    /// whose `max-start` has fallen below `window_lo` (i.e. `< i − w`)
    /// are dropped, so only live nodes are retained. `O(log(k·w))` copies
    /// per call.
    pub fn union(&mut self, n1: NodeId, n2: NodeId, window_lo: u64) -> NodeId {
        self.meld(n1, n2, window_lo)
    }

    fn meld(&mut self, a: NodeId, b: NodeId, lo: u64) -> NodeId {
        // Expired subtrees are empty under every future window: by (‡)
        // all their descendants are expired too.
        let a = if !a.is_bottom() && self.max_start(a) < lo {
            BOTTOM
        } else {
            a
        };
        let b = if !b.is_bottom() && self.max_start(b) < lo {
            BOTTOM
        } else {
            b
        };
        if a.is_bottom() {
            return b;
        }
        if b.is_bottom() {
            return a;
        }
        // Root = larger max-start (condition ‡).
        let (top, other) = if self.max_start(a) >= self.max_start(b) {
            (a, b)
        } else {
            (b, a)
        };
        let new_right = self.meld(self.nodes[top.index()].uright, other, lo);
        let old_left = self.nodes[top.index()].uleft;
        // Leftist property: rank(left) ≥ rank(right).
        let (uleft, uright) = if self.rank(old_left) >= self.rank(new_right) {
            (old_left, new_right)
        } else {
            (new_right, old_left)
        };
        let t = &self.nodes[top.index()];
        let node = Node {
            labels: t.labels,
            pos: t.pos,
            max_start: t.max_start,
            rank: self.rank(uright) + 1,
            prod: t.prod.clone(),
            uleft,
            uright,
        };
        self.push(node)
    }

    /// Checkpoint encoding of the whole arena (see [`crate::checkpoint`]).
    /// Node links encode as raw indices with `⊥` as `u32::MAX`; the
    /// arena is append-only and children always precede parents, which
    /// is what [`decode`](Self::decode) validates.
    pub(crate) fn encode(
        &self,
        w: &mut cer_common::wire::WireWriter,
    ) -> Result<(), cer_common::wire::WireError> {
        use cer_common::wire::Wire;
        w.put_len(self.nodes.len());
        for n in &self.nodes {
            n.labels.encode(w)?;
            w.put_u64(n.pos);
            w.put_u64(n.max_start);
            w.put_u32(n.rank);
            w.put_len(n.prod.len());
            for c in n.prod.iter() {
                w.put_u32(c.0);
            }
            w.put_u32(n.uleft.0);
            w.put_u32(n.uright.0);
        }
        Ok(())
    }

    /// Decode an arena encoded by [`encode`](Self::encode), validating
    /// that every link points at an earlier node (or `⊥`) so a corrupt
    /// snapshot cannot build cycles or dangling references.
    pub(crate) fn decode(
        r: &mut cer_common::wire::WireReader<'_>,
    ) -> Result<Self, cer_common::wire::WireError> {
        use cer_common::wire::{Wire, WireError};
        let n = r.get_len()?;
        if n >= u32::MAX as usize {
            return Err(WireError::Corrupt("arena too large"));
        }
        let mut nodes = Vec::with_capacity(n.min(1 << 16));
        for i in 0..n {
            let labels = cer_automata::valuation::LabelSet::decode(r)?;
            let pos = r.get_u64()?;
            let max_start = r.get_u64()?;
            let rank = r.get_u32()?;
            let link = |raw: u32| -> Result<NodeId, WireError> {
                if raw != u32::MAX && raw as usize >= i {
                    return Err(WireError::Corrupt("node link not strictly earlier"));
                }
                Ok(NodeId(raw))
            };
            let n_prod = r.get_len()?;
            let mut prod = Vec::with_capacity(n_prod.min(64));
            for _ in 0..n_prod {
                let c = link(r.get_u32()?)?;
                if c.is_bottom() {
                    return Err(WireError::Corrupt("bottom product child"));
                }
                prod.push(c);
            }
            let uleft = link(r.get_u32()?)?;
            let uright = link(r.get_u32()?)?;
            nodes.push(Node {
                labels,
                pos,
                max_start,
                rank,
                prod: prod.into(),
                uleft,
                uright,
            });
        }
        Ok(EnumStructure { nodes })
    }

    /// Append every node of `other` to this arena, remapping its
    /// internal links; returns the id offset to add to any external
    /// reference into `other` (`⊥` stays `⊥`). Used when merging the
    /// per-shard replicas of a key-partitioned query at restore time.
    pub(crate) fn absorb(&mut self, other: EnumStructure) -> u32 {
        let offset = u32::try_from(self.nodes.len()).expect("arena full");
        assert!(
            (self.nodes.len() + other.nodes.len()) < u32::MAX as usize,
            "arena full"
        );
        let shift = |id: NodeId| {
            if id.is_bottom() {
                id
            } else {
                NodeId(id.0 + offset)
            }
        };
        for mut n in other.nodes {
            for c in n.prod.iter_mut() {
                *c = shift(*c);
            }
            n.uleft = shift(n.uleft);
            n.uright = shift(n.uright);
            self.nodes.push(n);
        }
        offset
    }

    /// Check the structural invariants below `root`: heap condition (‡),
    /// leftist ranks, product children strictly earlier and live relative
    /// to their parent's `max-start`. Test support.
    pub fn check_invariants(&self, root: NodeId) -> Result<(), String> {
        if root.is_bottom() {
            return Ok(());
        }
        let n = self.node(root);
        for &u in [n.uleft, n.uright].iter() {
            if u.is_bottom() {
                continue;
            }
            if self.max_start(u) > n.max_start {
                return Err(format!(
                    "heap violation: child max-start {} > parent {}",
                    self.max_start(u),
                    n.max_start
                ));
            }
            self.check_invariants(u)?;
        }
        if self.rank(n.uleft) < self.rank(n.uright) {
            return Err("leftist violation: rank(left) < rank(right)".into());
        }
        if n.rank != self.rank(n.uright) + 1 {
            return Err(format!(
                "rank bookkeeping: {} != {} + 1",
                n.rank,
                self.rank(n.uright)
            ));
        }
        for &c in n.prod.iter() {
            if self.node(c).pos >= n.pos {
                return Err("product child not strictly earlier".into());
            }
            if self.max_start(c) < n.max_start {
                return Err("product child max-start below parent's".into());
            }
            self.check_invariants(c)?;
        }
        Ok(())
    }

    /// Rebuild the arena keeping only nodes reachable from `roots` whose
    /// `max-start ≥ window_lo`, remapping ids in place in `roots`.
    ///
    /// Union links to expired subtrees become `⊥` (their bags are empty
    /// in every window at or after the current position); leftist ranks
    /// are recomputed. Product children of a live node are always live
    /// (`max-start(parent) ≤ max-start(child)`), so products never dangle.
    pub fn compact(&mut self, roots: &mut [&mut NodeId], window_lo: u64) {
        let mut fresh = EnumStructure::new();
        let mut remap: cer_common::hash::FxHashMap<NodeId, NodeId> =
            cer_common::hash::FxHashMap::default();
        for r in roots.iter_mut() {
            **r = self.copy_live(**r, window_lo, &mut fresh, &mut remap);
        }
        *self = fresh;
    }

    fn copy_live(
        &self,
        id: NodeId,
        lo: u64,
        fresh: &mut EnumStructure,
        remap: &mut cer_common::hash::FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if id.is_bottom() || self.max_start(id) < lo {
            return BOTTOM;
        }
        if let Some(&new) = remap.get(&id) {
            return new;
        }
        let n = self.node(id).clone();
        let prod: Box<[NodeId]> = n
            .prod
            .iter()
            .map(|&c| self.copy_live(c, lo, fresh, remap))
            .collect();
        debug_assert!(prod.iter().all(|c| !c.is_bottom()), "live product child");
        let mut uleft = self.copy_live(n.uleft, lo, fresh, remap);
        let mut uright = self.copy_live(n.uright, lo, fresh, remap);
        if fresh.rank(uleft) < fresh.rank(uright) {
            std::mem::swap(&mut uleft, &mut uright);
        }
        let new = fresh.push(Node {
            labels: n.labels,
            pos: n.pos,
            max_start: n.max_start,
            rank: fresh.rank(uright) + 1,
            prod,
            uleft,
            uright,
        });
        remap.insert(id, new);
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::valuation::{Label, LabelSet};

    fn l(i: u32) -> LabelSet {
        LabelSet::singleton(Label(i))
    }

    #[test]
    fn extend_computes_max_start() {
        let mut ds = EnumStructure::new();
        let a = ds.extend(l(0), 3, &[]);
        assert_eq!(ds.max_start(a), 3);
        let b = ds.extend(l(1), 7, &[a]);
        // min(7, max_start(a)) = 3.
        assert_eq!(ds.max_start(b), 3);
        let c = ds.extend(l(1), 9, &[]);
        let d = ds.extend(l(2), 10, &[b, c]);
        assert_eq!(ds.max_start(d), 3);
        ds.check_invariants(d).unwrap();
    }

    #[test]
    fn union_keeps_heap_and_leftist_invariants() {
        let mut ds = EnumStructure::new();
        let mut root = BOTTOM;
        for i in 0..50u64 {
            let n = ds.extend(l(0), i, &[]);
            root = ds.union(root, n, 0);
            ds.check_invariants(root).unwrap();
        }
        // Root must carry the largest max-start.
        assert_eq!(ds.max_start(root), 49);
    }

    #[test]
    fn union_is_persistent() {
        let mut ds = EnumStructure::new();
        let a = ds.extend(l(0), 1, &[]);
        let b = ds.extend(l(0), 2, &[]);
        let u1 = ds.union(a, b, 0);
        let snapshot_a = ds.node(a).clone();
        let c = ds.extend(l(0), 3, &[]);
        let _u2 = ds.union(u1, c, 0);
        // The original node is untouched by later unions.
        let now_a = ds.node(a);
        assert_eq!(now_a.pos, snapshot_a.pos);
        assert_eq!(now_a.uleft, snapshot_a.uleft);
        assert_eq!(now_a.uright, snapshot_a.uright);
    }

    #[test]
    fn union_drops_expired_subtrees() {
        let mut ds = EnumStructure::new();
        let old = ds.extend(l(0), 1, &[]);
        let new = ds.extend(l(0), 100, &[]);
        // Window low bound 50: the old node's bag is empty forever.
        let u = ds.union(old, new, 50);
        assert_eq!(u, new, "expired side dropped without copying");
    }

    #[test]
    fn meld_of_two_heaps() {
        let mut ds = EnumStructure::new();
        let mut h1 = BOTTOM;
        let mut h2 = BOTTOM;
        for i in 0..10u64 {
            let n = ds.extend(l(0), 2 * i, &[]);
            h1 = ds.union(h1, n, 0);
            let m = ds.extend(l(0), 2 * i + 1, &[]);
            h2 = ds.union(h2, m, 0);
        }
        let h = ds.union(h1, h2, 0);
        ds.check_invariants(h).unwrap();
        assert_eq!(ds.max_start(h), 19);
    }

    #[test]
    fn compact_preserves_live_and_drops_dead() {
        let mut ds = EnumStructure::new();
        let mut root = BOTTOM;
        for i in 0..100u64 {
            let n = ds.extend(l(0), i, &[]);
            root = ds.union(root, n, 0);
        }
        let before = ds.len();
        let mut r = root;
        ds.compact(&mut [&mut r], 90);
        assert!(ds.len() < before / 2, "dead nodes reclaimed");
        ds.check_invariants(r).unwrap();
        assert_eq!(ds.max_start(r), 99);
    }

    #[test]
    fn compact_remaps_shared_subtrees_once() {
        let mut ds = EnumStructure::new();
        let shared = ds.extend(l(0), 5, &[]);
        let a = ds.extend(l(1), 6, &[shared]);
        let b = ds.extend(l(1), 7, &[shared]);
        let mut ra = a;
        let mut rb = b;
        ds.compact(&mut [&mut ra, &mut rb], 0);
        assert_eq!(ds.len(), 3, "shared child copied once");
        assert_eq!(ds.node(ra).prod[0], ds.node(rb).prod[0]);
    }

    #[test]
    fn arena_roundtrips_and_absorb_remaps() {
        let mut ds = EnumStructure::new();
        let mut root = BOTTOM;
        for i in 0..20u64 {
            let n = ds.extend(l((i % 3) as u32), i, &[]);
            root = ds.union(root, n, 0);
        }
        let mut w = cer_common::wire::WireWriter::new();
        ds.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = cer_common::wire::WireReader::new(&bytes);
        let decoded = EnumStructure::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(decoded.len(), ds.len());
        decoded.check_invariants(root).unwrap();
        assert_eq!(decoded.max_start(root), ds.max_start(root));

        // Absorb a second arena: its root keeps its structure at the
        // offset id.
        let mut other = EnumStructure::new();
        let a = other.extend(l(0), 100, &[]);
        let b = other.extend(l(1), 101, &[a]);
        let offset = ds.absorb(other);
        let b2 = NodeId(b.0 + offset);
        ds.check_invariants(b2).unwrap();
        assert_eq!(ds.node(b2).prod[0], NodeId(a.0 + offset));
        assert_eq!(ds.max_start(b2), 100);
        // The original root is untouched.
        ds.check_invariants(root).unwrap();
    }

    #[test]
    fn corrupt_arena_links_rejected() {
        // A forward link (node 0 pointing at node 1) must not decode.
        let mut ds = EnumStructure::new();
        let a = ds.extend(l(0), 1, &[]);
        let b = ds.extend(l(0), 2, &[]);
        let _ = ds.union(a, b, 0);
        let mut w = cer_common::wire::WireWriter::new();
        ds.encode(&mut w).unwrap();
        let mut bytes = w.into_bytes();
        // Rewrite node 0's uleft (last 8 bytes of its record) to a
        // forward reference by brute force: flip every u32-aligned
        // window to 2 and require that at least one mutation is caught
        // as a corrupt link while none panics.
        let mut caught = false;
        for k in (0..bytes.len() - 3).step_by(4) {
            let orig = [bytes[k], bytes[k + 1], bytes[k + 2], bytes[k + 3]];
            bytes[k..k + 4].copy_from_slice(&2u32.to_le_bytes());
            let mut r = cer_common::wire::WireReader::new(&bytes);
            if let Err(cer_common::wire::WireError::Corrupt(_)) = EnumStructure::decode(&mut r) {
                caught = true;
            }
            bytes[k..k + 4].copy_from_slice(&orig);
        }
        assert!(caught, "some mutation must trip the link validator");
    }

    #[test]
    fn bottom_handling() {
        let mut ds = EnumStructure::new();
        assert_eq!(ds.union(BOTTOM, BOTTOM, 0), BOTTOM);
        let a = ds.extend(l(0), 1, &[]);
        assert_eq!(ds.union(BOTTOM, a, 0), a);
        assert_eq!(ds.union(a, BOTTOM, 0), a);
        assert_eq!(ds.max_start(BOTTOM), 0);
        ds.check_invariants(BOTTOM).unwrap();
    }
}

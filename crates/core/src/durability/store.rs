//! Incremental checkpoints on disk, chained by a manifest.
//!
//! Each [`Runtime::checkpoint`](crate::runtime::Runtime::checkpoint)
//! writes one `ckpt-<epoch>.ck` file through a streaming
//! [`io::Write`] sink — the snapshot is never materialized as one
//! buffer; the largest allocation is a single state blob. Blobs are
//! **chunk-delta encoded** against the previous epoch: the GC-compacted
//! arena encode is stable across epochs for untouched regions, so a
//! mostly-idle query costs a few literal chunks instead of its full
//! state. Every `full_checkpoint_every` epochs a full (self-contained)
//! checkpoint rebases the chain, bounding both recovery work and the
//! chain the manifest must describe.
//!
//! The `MANIFEST` file is the commit point: it lists the current chain
//! (base + deltas) and each entry's stream position and WAL sequence
//! high-water. It is replaced atomically (write tmp → fsync → rename),
//! so a crash mid-checkpoint leaves the previous manifest — and the
//! previous recovery point — intact; orphaned checkpoint files are
//! swept on the next open.

use super::{io_err, DurabilityError};
use crate::checkpoint::{QueryRecord, Snapshot, SnapshotError};
use crate::runtime::QuerySpec;
use cer_common::crc::{crc32, Crc32};
use cer_common::wire::{Wire, WireError, WireReader, WireWriter};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &[u8; 8] = b"CERMANI\0";
const CKPT_MAGIC: &[u8; 8] = b"CERCKPT\0";
const VERSION: u32 = 1;
/// `base_epoch` sentinel for a full (self-contained) checkpoint.
const NO_BASE: u64 = u64::MAX;
/// Delta granularity: blobs are compared in aligned chunks this large.
const CHUNK: usize = 1024;

const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;
const OP_COPY: u8 = 0;
const OP_LITERAL: u8 = 1;
const OP_END: u8 = 2;

/// One manifest entry: a checkpoint file and the cut it captured.
#[derive(Clone, Debug)]
pub(crate) struct ChainEntry {
    pub epoch: u64,
    pub position: u64,
    pub wal_seq: u64,
    pub full: bool,
    pub file: String,
}

/// Blobs of the last written/loaded epoch, keyed by `(query id, blob
/// index)` — the delta base for the next checkpoint.
type BaseMap = HashMap<(u32, usize), Vec<u8>>;

/// The on-disk checkpoint chain for one data directory.
pub(crate) struct CheckpointStore {
    ckpt_dir: PathBuf,
    manifest: PathBuf,
    full_every: u64,
    next_epoch: u64,
    chain: Vec<ChainEntry>,
    base: BaseMap,
}

/// An [`io::Write`] adapter that counts bytes and folds them into a
/// running CRC-32 on the way through — the checkpoint file's trailer
/// checksum without a second pass or a materialized buffer.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
    bytes: u64,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: Crc32::new(),
            bytes: 0,
        }
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn ckpt_file_name(epoch: u64) -> String {
    format!("ckpt-{epoch:08x}.ck")
}

/// Chunk-delta encode `blob` against `base` into `out` (which is then
/// streamed to the sink). Falls back to a full encoding when there is
/// no base or the delta would not be smaller.
fn encode_blob(out: &mut WireWriter, base: Option<&[u8]>, blob: &[u8]) {
    if let Some(base) = base {
        let mut delta = WireWriter::new();
        delta.put_u8(KIND_DELTA);
        delta.put_u64(blob.len() as u64);
        let mut off = 0usize;
        let mut copy_run = 0u32;
        let mut lit_start: Option<usize> = None;
        while off < blob.len() {
            let clen = CHUNK.min(blob.len() - off);
            let same = base.len() >= off + clen && base[off..off + clen] == blob[off..off + clen];
            if same {
                if let Some(s) = lit_start.take() {
                    delta.put_u8(OP_LITERAL);
                    delta.put_bytes(&blob[s..off]);
                }
                copy_run += 1;
            } else {
                if copy_run > 0 {
                    delta.put_u8(OP_COPY);
                    delta.put_u32(copy_run);
                    copy_run = 0;
                }
                if lit_start.is_none() {
                    lit_start = Some(off);
                }
            }
            off += clen;
        }
        if copy_run > 0 {
            delta.put_u8(OP_COPY);
            delta.put_u32(copy_run);
        }
        if let Some(s) = lit_start {
            delta.put_u8(OP_LITERAL);
            delta.put_bytes(&blob[s..]);
        }
        delta.put_u8(OP_END);
        if delta.len() < blob.len() + 5 {
            out.put_bytes(&delta.into_bytes());
            return;
        }
    }
    let mut full = WireWriter::new();
    full.put_u8(KIND_FULL);
    full.put_bytes(blob);
    out.put_bytes(&full.into_bytes());
}

/// Decode one blob written by [`encode_blob`], reconstructing copy runs
/// from `base`.
fn decode_blob(r: &mut WireReader, base: Option<&[u8]>) -> Result<Vec<u8>, DurabilityError> {
    let enc = r.get_bytes().map_err(DurabilityError::from)?;
    let mut er = WireReader::new(enc);
    match er.get_u8().map_err(DurabilityError::from)? {
        KIND_FULL => {
            let bytes = er.get_bytes().map_err(DurabilityError::from)?.to_vec();
            if !er.is_exhausted() {
                return Err(DurabilityError::WalCorrupt("trailing bytes in full blob"));
            }
            Ok(bytes)
        }
        KIND_DELTA => {
            let base = base.ok_or(DurabilityError::WalCorrupt(
                "delta blob without a base blob",
            ))?;
            let new_len = er.get_u64().map_err(DurabilityError::from)? as usize;
            let mut out = Vec::with_capacity(new_len.min(1 << 26));
            loop {
                match er.get_u8().map_err(DurabilityError::from)? {
                    OP_COPY => {
                        let n = er.get_u32().map_err(DurabilityError::from)?;
                        for _ in 0..n {
                            let off = out.len();
                            let clen = CHUNK.min(new_len.saturating_sub(off));
                            if clen == 0 || base.len() < off + clen {
                                return Err(DurabilityError::WalCorrupt(
                                    "delta copy run out of bounds",
                                ));
                            }
                            out.extend_from_slice(&base[off..off + clen]);
                        }
                    }
                    OP_LITERAL => {
                        let bytes = er.get_bytes().map_err(DurabilityError::from)?;
                        out.extend_from_slice(bytes);
                    }
                    OP_END => break,
                    _ => return Err(DurabilityError::WalCorrupt("unknown delta op")),
                }
            }
            if out.len() != new_len || !er.is_exhausted() {
                return Err(DurabilityError::WalCorrupt(
                    "delta blob did not reconstruct to its recorded length",
                ));
            }
            Ok(out)
        }
        _ => Err(DurabilityError::WalCorrupt("unknown blob encoding kind")),
    }
}

impl CheckpointStore {
    /// Open (or initialize) the checkpoint chain under `root`. Returns
    /// the store and the reconstructed latest [`Snapshot`], if any.
    pub fn open(
        root: &Path,
        full_every: u64,
    ) -> Result<(CheckpointStore, Option<Snapshot>), DurabilityError> {
        let ckpt_dir = root.join("ckpt");
        std::fs::create_dir_all(&ckpt_dir).map_err(|e| io_err("create ckpt dir", e))?;
        let manifest = root.join("MANIFEST");
        let mut store = CheckpointStore {
            ckpt_dir,
            manifest,
            full_every: full_every.max(1),
            next_epoch: 0,
            chain: Vec::new(),
            base: HashMap::new(),
        };
        if !store.manifest.exists() {
            return Ok((store, None));
        }
        let chain = read_manifest(&store.manifest)?;
        let mut snap: Option<Snapshot> = None;
        for (i, entry) in chain.iter().enumerate() {
            if (i == 0) != entry.full {
                return Err(DurabilityError::WalCorrupt(
                    "manifest chain must start with exactly one full checkpoint",
                ));
            }
            let path = store.ckpt_dir.join(&entry.file);
            let (origin_shards, queries) = read_checkpoint(&path, entry, &store.base)?;
            store.base = blobs_of(&queries);
            snap = Some(Snapshot {
                position: entry.position,
                wal_seq: entry.wal_seq,
                origin_shards,
                queries,
            });
        }
        if let Some(last) = chain.last() {
            store.next_epoch = last.epoch + 1;
        }
        store.chain = chain;
        store.sweep_orphans();
        Ok((store, snap))
    }

    /// Delete checkpoint files the manifest does not reference —
    /// leftovers of a crash between file write and manifest rename.
    fn sweep_orphans(&self) {
        let Ok(entries) = std::fs::read_dir(&self.ckpt_dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("ckpt-") && !self.chain.iter().any(|c| c.file == name) {
                let _ = std::fs::remove_file(entry.path());
            }
            if name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    pub fn last_entry(&self) -> Option<&ChainEntry> {
        self.chain.last()
    }

    pub fn chain_len(&self) -> u64 {
        self.chain.len() as u64
    }

    /// Stream `snap` to disk as the next epoch and commit it to the
    /// manifest. Returns the checkpoint stats with
    /// `wal_segments_removed` left at 0 for the caller to fill in.
    pub fn write(&mut self, snap: &Snapshot) -> Result<super::CheckpointStats, DurabilityError> {
        let epoch = self.next_epoch;
        let full = self.chain.is_empty() || self.chain.len() as u64 >= self.full_every;
        let file_name = ckpt_file_name(epoch);
        let path = self.ckpt_dir.join(&file_name);

        let file = File::create(&path).map_err(|e| io_err("create checkpoint", e))?;
        let mut sink = CrcWriter::new(BufWriter::new(file));

        let mut header = WireWriter::new();
        for &b in CKPT_MAGIC {
            header.put_u8(b);
        }
        header.put_u32(VERSION);
        header.put_u64(epoch);
        header.put_u64(if full {
            NO_BASE
        } else {
            self.chain.last().map(|c| c.epoch).unwrap_or(NO_BASE)
        });
        header.put_u64(snap.position);
        header.put_u64(snap.wal_seq);
        header.put_len(snap.origin_shards);
        header.put_len(snap.queries.len());
        sink.write_all(&header.into_bytes())
            .map_err(|e| io_err("write checkpoint", e))?;

        let mut full_bytes = 0u64;
        for q in &snap.queries {
            let mut rec = WireWriter::new();
            rec.put_u32(q.id);
            rec.put_str(&q.name);
            q.spec
                .encode(&mut rec)
                .map_err(|e| DurabilityError::Snapshot(SnapshotError::Wire(e)))?;
            rec.put_len(q.blobs.len());
            sink.write_all(&rec.into_bytes())
                .map_err(|e| io_err("write checkpoint", e))?;
            for (idx, blob) in q.blobs.iter().enumerate() {
                full_bytes += blob.len() as u64;
                let base = if full {
                    None
                } else {
                    self.base.get(&(q.id, idx)).map(Vec::as_slice)
                };
                let mut enc = WireWriter::new();
                encode_blob(&mut enc, base, blob);
                sink.write_all(&enc.into_bytes())
                    .map_err(|e| io_err("write checkpoint", e))?;
            }
        }
        let crc = sink.crc.finish();
        let bytes = sink.bytes + 4;
        let mut buf = sink.inner;
        buf.write_all(&crc.to_le_bytes())
            .map_err(|e| io_err("write checkpoint", e))?;
        let file = buf
            .into_inner()
            .map_err(|e| io_err("write checkpoint", e.into_error()))?;
        file.sync_data()
            .map_err(|e| io_err("fsync checkpoint", e))?;

        let entry = ChainEntry {
            epoch,
            position: snap.position,
            wal_seq: snap.wal_seq,
            full,
            file: file_name,
        };
        let mut chain = if full { Vec::new() } else { self.chain.clone() };
        chain.push(entry);
        write_manifest(&self.manifest, &chain)?;

        // The manifest is the commit point: only now retire the old
        // chain's files (best effort — orphans are swept on open).
        if full {
            for old in &self.chain {
                let _ = std::fs::remove_file(self.ckpt_dir.join(&old.file));
            }
        }
        self.chain = chain;
        self.next_epoch = epoch + 1;
        self.base = blobs_of(&snap.queries);

        Ok(super::CheckpointStats {
            epoch,
            position: snap.position,
            bytes,
            full,
            delta_ratio_bp: bytes.saturating_mul(10_000) / full_bytes.max(1),
            wal_segments_removed: 0,
        })
    }
}

fn blobs_of(queries: &[QueryRecord]) -> BaseMap {
    let mut map = HashMap::new();
    for q in queries {
        for (idx, blob) in q.blobs.iter().enumerate() {
            map.insert((q.id, idx), blob.clone());
        }
    }
    map
}

fn read_manifest(path: &Path) -> Result<Vec<ChainEntry>, DurabilityError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read manifest", e))?;
    if bytes.len() < 4 {
        return Err(DurabilityError::WalCorrupt("manifest too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let expect = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(body) != expect {
        return Err(DurabilityError::WalCorrupt("manifest checksum mismatch"));
    }
    let mut r = WireReader::new(body);
    for &b in MANIFEST_MAGIC {
        if r.get_u8().map_err(DurabilityError::from)? != b {
            return Err(DurabilityError::WalCorrupt("bad manifest magic"));
        }
    }
    let version = r.get_u32().map_err(DurabilityError::from)?;
    if version != VERSION {
        return Err(DurabilityError::WalCorrupt("unknown manifest version"));
    }
    let n = r.get_len().map_err(DurabilityError::from)?;
    let mut chain = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        chain.push(ChainEntry {
            epoch: r.get_u64().map_err(DurabilityError::from)?,
            position: r.get_u64().map_err(DurabilityError::from)?,
            wal_seq: r.get_u64().map_err(DurabilityError::from)?,
            full: r.get_u8().map_err(DurabilityError::from)? != 0,
            file: r.get_str().map_err(DurabilityError::from)?,
        });
    }
    if !r.is_exhausted() {
        return Err(DurabilityError::WalCorrupt("trailing bytes in manifest"));
    }
    Ok(chain)
}

fn write_manifest(path: &Path, chain: &[ChainEntry]) -> Result<(), DurabilityError> {
    let mut w = WireWriter::new();
    for &b in MANIFEST_MAGIC {
        w.put_u8(b);
    }
    w.put_u32(VERSION);
    w.put_len(chain.len());
    for e in chain {
        w.put_u64(e.epoch);
        w.put_u64(e.position);
        w.put_u64(e.wal_seq);
        w.put_u8(e.full as u8);
        w.put_str(&e.file);
    }
    let mut bytes = w.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension("tmp");
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err("write manifest", e))?;
    f.write_all(&bytes)
        .map_err(|e| io_err("write manifest", e))?;
    f.sync_data().map_err(|e| io_err("fsync manifest", e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename manifest", e))?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read and validate one checkpoint file, reconstructing its blobs
/// against `base` (the previous epoch's blobs; empty for a full file).
fn read_checkpoint(
    path: &Path,
    entry: &ChainEntry,
    base: &BaseMap,
) -> Result<(usize, Vec<QueryRecord>), DurabilityError> {
    let mut file = File::open(path).map_err(|e| io_err("open checkpoint", e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read checkpoint", e))?;
    if bytes.len() < 4 {
        return Err(DurabilityError::WalCorrupt("checkpoint too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let expect = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(body) != expect {
        return Err(DurabilityError::WalCorrupt("checkpoint checksum mismatch"));
    }
    let mut r = WireReader::new(body);
    for &b in CKPT_MAGIC {
        if r.get_u8().map_err(DurabilityError::from)? != b {
            return Err(DurabilityError::WalCorrupt("bad checkpoint magic"));
        }
    }
    let version = r.get_u32().map_err(DurabilityError::from)?;
    if version != VERSION {
        return Err(DurabilityError::WalCorrupt("unknown checkpoint version"));
    }
    let epoch = r.get_u64().map_err(DurabilityError::from)?;
    let base_epoch = r.get_u64().map_err(DurabilityError::from)?;
    let position = r.get_u64().map_err(DurabilityError::from)?;
    let wal_seq = r.get_u64().map_err(DurabilityError::from)?;
    let origin_shards = r.get_len().map_err(DurabilityError::from)?;
    if epoch != entry.epoch
        || position != entry.position
        || wal_seq != entry.wal_seq
        || (base_epoch == NO_BASE) != entry.full
    {
        return Err(DurabilityError::WalCorrupt(
            "checkpoint header disagrees with the manifest",
        ));
    }
    let n = r.get_len().map_err(DurabilityError::from)?;
    let mut queries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let id = r.get_u32().map_err(DurabilityError::from)?;
        let name = r.get_str().map_err(DurabilityError::from)?;
        let spec = Option::<QuerySpec>::decode(&mut r)
            .map_err(|e: WireError| DurabilityError::Snapshot(SnapshotError::Wire(e)))?;
        let n_blobs = r.get_len().map_err(DurabilityError::from)?;
        let mut blobs = Vec::with_capacity(n_blobs.min(1 << 10));
        for idx in 0..n_blobs {
            let blob_base = if entry.full {
                None
            } else {
                base.get(&(id, idx)).map(Vec::as_slice)
            };
            blobs.push(decode_blob(&mut r, blob_base)?);
        }
        queries.push(QueryRecord {
            id,
            name,
            spec,
            blobs,
        });
    }
    if !r.is_exhausted() {
        return Err(DurabilityError::WalCorrupt("trailing bytes in checkpoint"));
    }
    Ok((origin_shards, queries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(base: Option<&[u8]>, blob: &[u8]) -> Vec<u8> {
        let mut w = WireWriter::new();
        encode_blob(&mut w, base, blob);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let out = decode_blob(&mut r, base).unwrap();
        assert!(r.is_exhausted());
        out
    }

    #[test]
    fn delta_roundtrips_across_shapes() {
        let base: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        // Identical, point edit, grow, shrink, disjoint, empty.
        let mut edited = base.clone();
        edited[4_321] ^= 0xFF;
        let mut grown = base.clone();
        grown.extend_from_slice(&[7u8; 3_000]);
        let shrunk = base[..2_500].to_vec();
        let disjoint: Vec<u8> = (0..10_000u32).map(|i| (i % 13) as u8).collect();
        for blob in [&base, &edited, &grown, &shrunk, &disjoint, &Vec::new()] {
            assert_eq!(&roundtrip(Some(&base), blob), blob);
            assert_eq!(&roundtrip(None, blob), blob);
        }
    }

    #[test]
    fn near_identical_blob_deltas_small() {
        let base: Vec<u8> = vec![42u8; 100_000];
        let mut blob = base.clone();
        blob[77_777] = 0;
        let mut w = WireWriter::new();
        encode_blob(&mut w, Some(&base), &blob);
        assert!(
            w.len() < 3 * CHUNK,
            "one edited chunk must not cost {} bytes",
            w.len()
        );
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("cer-mani-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST");
        let chain = vec![
            ChainEntry {
                epoch: 4,
                position: 1000,
                wal_seq: 12,
                full: true,
                file: ckpt_file_name(4),
            },
            ChainEntry {
                epoch: 5,
                position: 2000,
                wal_seq: 30,
                full: false,
                file: ckpt_file_name(5),
            },
        ];
        write_manifest(&path, &chain).unwrap();
        let back = read_manifest(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].position, 2000);
        assert_eq!(back[1].wal_seq, 30);
        assert!(!back[1].full);

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_manifest(&path).unwrap_err(),
            DurabilityError::WalCorrupt("manifest checksum mismatch")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Durability: a position-stamped write-ahead log, incremental disk
//! checkpoints, and crash recovery.
//!
//! Everything the runtime holds is in-memory state: arenas, `H`
//! tables, window clocks. This module makes that state survive a
//! `SIGKILL` by combining the two classic ingredients of ARIES-style
//! recovery — a redo log of everything ingested since the last
//! checkpoint, and periodic checkpoints that bound how much log must
//! be replayed:
//!
//! * `wal` — a segmented, CRC-framed, group-committed log of every
//!   stamped operation (tuple batches *and* query DDL);
//! * `store` — incremental checkpoints streamed to disk with a
//!   chunk-delta encoding against the previous epoch, chained by a
//!   manifest that also records the WAL truncation point;
//! * [`Runtime::recover`](crate::runtime::Runtime::recover) /
//!   [`Runtime::open_durable`](crate::runtime::Runtime::open_durable) —
//!   restore the latest checkpoint, replay the WAL suffix, resume.
//!
//! # Replay order soundness
//!
//! The striped sequencer ([`crate::ingest`]) already defines a total
//! order on *operations*: blocks are reserved under one lock, and each
//! shard's reorder stage releases them in block-id order. Positions
//! alone do not expose that order — control operations (register,
//! deregister, replace, snapshot fences) ride **zero-width** blocks,
//! so a registration at position `p` and a batch starting at `p` share
//! a stamp, and only the block order says which the shard workers saw
//! first.
//!
//! The WAL therefore orders records by a dedicated dense sequence
//! number, `wal_seq`, assigned *inside the same sequencer critical
//! section that reserves the block*. That gives three invariants:
//!
//! 1. **wal_seq order = block order.** Both are assigned under the one
//!    sequencer lock, so the log's order is exactly the order every
//!    shard worker observed.
//! 2. **Density.** Every logged operation takes exactly one `wal_seq`
//!    (operations that need no replay — barriers, snapshot fences,
//!    rescale fences — take none), so the group-commit stage can
//!    detect completeness by simple `+1` contiguity, and recovery can
//!    detect a gap as corruption rather than silently skipping.
//! 3. **Checkpoint alignment.** A checkpoint's epoch block reads the
//!    current `wal_seq` high-water `W` under its own reserve: every
//!    record with `seq < W` was reserved before the fence and is
//!    therefore *included* in the checkpointed state; every record
//!    with `seq ≥ W` is not. Replaying exactly the suffix `seq ≥ W`
//!    on top of the checkpoint reproduces the uninterrupted run —
//!    no record is applied twice or dropped.
//!
//! Because producers append to the log *after* their positions are
//! stamped, replaying batches through the ordinary ingest path
//! re-derives identical position stamps (checked record-by-record
//! during recovery), so the recovered runtime resumes stamping exactly
//! where the crashed one left off.
//!
//! # What is (and is not) durable
//!
//! A record is durable once its segment has been `fsync`ed — the
//! [`FsyncPolicy`] trades ingest latency against the tail of records
//! a crash may lose. Matches delivered to subscribers are *not*
//! journaled: recovery reproduces the runtime's state (and re-derives
//! any matches the replayed suffix completes), but push deliveries
//! that happened before the crash are gone with their sockets.
//! Queries whose predicates hold `Custom` closures cannot be encoded
//! and are rejected up front on durable runtimes
//! ([`crate::runtime::RuntimeError::UnserializableQuery`]).
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//! ├── MANIFEST              # checkpoint chain + WAL resume point (atomic rename)
//! ├── ckpt/
//! │   ├── ckpt-00000004.ck  # full checkpoint (chain base)
//! │   └── ckpt-00000005.ck  # chunk-delta vs epoch 4
//! └── wal/
//!     ├── wal-0000000000000000.log   # sealed segment, first wal_seq 0
//!     └── wal-00000000000003e8.log   # active segment, first wal_seq 1000
//! ```

mod store;
mod wal;

pub(crate) use store::CheckpointStore;
pub(crate) use wal::{
    encode_batch, encode_deregister, encode_register, encode_replace, replay_dir, Wal, WalOp,
    WalRecord,
};

use crate::checkpoint::SnapshotError;
use cer_common::wire::WireError;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// When the WAL calls `fsync` on its active segment.
///
/// Records always reach the kernel (`write(2)`) before the ingest call
/// returns — a process crash (`SIGKILL`) loses nothing under any
/// policy. The policy only governs what a *machine* crash can lose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record. Maximum durability,
    /// maximum latency.
    Always,
    /// `fsync` once every `n` appended records (group commit).
    EveryN(u32),
    /// `fsync` when at least `ms` milliseconds elapsed since the last
    /// sync, checked on each append.
    IntervalMs(u64),
}

/// Tuning knobs for the durability subsystem, carried on
/// [`RuntimeConfig`](crate::config::RuntimeConfig). The data directory
/// is *not* part of the config — it is the argument of
/// [`Runtime::open_durable`](crate::runtime::Runtime::open_durable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Group-commit policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Roll the active WAL segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Write a full (non-delta) checkpoint every this many epochs;
    /// bounds the chain a recovery must reconstruct.
    pub full_checkpoint_every: u64,
}

impl DurabilityConfig {
    pub fn new() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::EveryN(256),
            segment_bytes: 64 << 20,
            full_checkpoint_every: 8,
        }
    }

    /// Clamp nonsensical values instead of erroring, mirroring
    /// [`RuntimeConfig::validated`](crate::config::RuntimeConfig::validated).
    pub(crate) fn validated(mut self) -> Self {
        if let FsyncPolicy::EveryN(n) = &mut self.fsync {
            *n = (*n).max(1);
        }
        self.segment_bytes = self.segment_bytes.max(4 << 10);
        self.full_checkpoint_every = self.full_checkpoint_every.max(1);
        self
    }
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a durability operation failed. Every variant maps to a stable
/// [`ErrorCode`](crate::error::ErrorCode) via
/// [`Error::code`](crate::error::Error::code).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DurabilityError {
    /// An on-disk structure failed validation (bad magic, bad CRC on a
    /// checkpoint, undecodable record payload). The payload names the
    /// structure.
    WalCorrupt(&'static str),
    /// An I/O operation on a durability file failed. The `io::Error`
    /// is stringified so the error stays `Clone + Eq`.
    WalIo {
        /// What was being attempted (`"append"`, `"open segment"`, …).
        op: &'static str,
        /// The stringified `io::Error`.
        message: String,
    },
    /// `recover()` found no manifest and no WAL segments in the
    /// directory.
    ManifestMissing,
    /// Replay diverged from the log: a position stamp, query id or
    /// sequence number did not reproduce. The payload describes the
    /// divergence.
    RecoverMismatch(String),
    /// A durability operation was invoked on a runtime that was not
    /// opened through [`Runtime::open_durable`] /
    /// [`Runtime::recover`](crate::runtime::Runtime::recover).
    ///
    /// [`Runtime::open_durable`]: crate::runtime::Runtime::open_durable
    NotDurable,
    /// A checkpoint could not be captured or decoded (layered:
    /// snapshot errors keep their own codes).
    Snapshot(SnapshotError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::WalCorrupt(what) => {
                write!(f, "durability file corrupt: {what}")
            }
            DurabilityError::WalIo { op, message } => {
                write!(f, "durability i/o failed during {op}: {message}")
            }
            DurabilityError::ManifestMissing => {
                write!(f, "no manifest or wal segments found in data directory")
            }
            DurabilityError::RecoverMismatch(why) => {
                write!(f, "wal replay diverged from the log: {why}")
            }
            DurabilityError::NotDurable => {
                write!(f, "runtime was not opened with a data directory")
            }
            DurabilityError::Snapshot(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for DurabilityError {
    fn from(e: SnapshotError) -> Self {
        DurabilityError::Snapshot(e)
    }
}

impl From<WireError> for DurabilityError {
    fn from(e: WireError) -> Self {
        DurabilityError::Snapshot(SnapshotError::Wire(e))
    }
}

pub(crate) fn io_err(op: &'static str, e: std::io::Error) -> DurabilityError {
    DurabilityError::WalIo {
        op,
        message: e.to_string(),
    }
}

/// What [`Runtime::checkpoint`](crate::runtime::Runtime::checkpoint)
/// wrote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Epoch number of the checkpoint (monotonic per directory).
    pub epoch: u64,
    /// Stream position `P` of the epoch cut.
    pub position: u64,
    /// Bytes written to the checkpoint file.
    pub bytes: u64,
    /// Whether this was a full checkpoint (chain base) or a delta.
    pub full: bool,
    /// Delta compression achieved, in basis points: `bytes * 10_000 /
    /// uncompressed state size`. `10_000` means no savings.
    pub delta_ratio_bp: u64,
    /// WAL segments deleted by the post-checkpoint truncation.
    pub wal_segments_removed: u64,
}

/// Health and volume counters for a durable runtime, reported by
/// [`Runtime::durability_status`](crate::runtime::Runtime::durability_status)
/// and over the serve protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Data directory backing this runtime.
    pub dir: PathBuf,
    /// `false` after a WAL append hit an I/O error: the runtime keeps
    /// serving from memory but stopped logging (fail-open).
    pub healthy: bool,
    /// Segments currently on disk (sealed + active).
    pub wal_segments: u64,
    /// Total bytes appended to the WAL over this runtime's lifetime.
    pub wal_bytes: u64,
    /// Total records appended to the WAL over this runtime's lifetime.
    pub wal_records: u64,
    /// Epoch of the newest checkpoint, if any.
    pub last_checkpoint_epoch: Option<u64>,
    /// Position of the newest checkpoint, if any.
    pub last_checkpoint_position: Option<u64>,
    /// Checkpoints in the current chain (since the last full one).
    pub chain_len: u64,
}

/// Everything a durable [`Runtime`](crate::runtime::Runtime) keeps
/// besides its in-memory state.
pub(crate) struct DurabilityHandle {
    pub dir: PathBuf,
    pub wal: Arc<Wal>,
    pub store: CheckpointStore,
}

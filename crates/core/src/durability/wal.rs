//! The segmented write-ahead log.
//!
//! One append-only file per segment, named `wal-<first_seq>.log` by the
//! `wal_seq` of its first record. Each segment opens with a 16-byte
//! header (magic + first sequence number) followed by CRC-framed
//! records:
//!
//! ```text
//! ┌─────────┬──────────┬──────────────────────────────┐
//! │ u32 len │ u32 crc  │ payload (len bytes, wire fmt) │
//! └─────────┴──────────┴──────────────────────────────┘
//! payload := u64 wal_seq, u8 tag, op fields
//! ```
//!
//! Appends arrive keyed by the dense `wal_seq` assigned under the
//! sequencer lock, possibly out of order (producers race between the
//! reserve and the append). A pending map holds early arrivals; the
//! drain loop writes records to the file strictly in `wal_seq` order,
//! so byte order on disk *is* replay order — see the module docs of
//! [`super`] for why that order is the one the shard workers observed.
//!
//! Every drained record reaches the kernel via `write(2)` before the
//! producer's ingest call returns; `fsync` is batched per
//! [`FsyncPolicy`]. On an append I/O error the log **poisons**: the
//! pending map is cleared, later appends become no-ops, and the
//! runtime keeps serving from memory (fail-open) — durability stops at
//! the last record that hit the disk, and
//! [`DurabilityStatus::healthy`](super::DurabilityStatus) reports it.

use super::{io_err, DurabilityConfig, DurabilityError, FsyncPolicy};
use crate::runtime::QuerySpec;
use cer_common::crc::crc32;
use cer_common::wire::{Wire, WireReader, WireWriter};
use cer_common::Tuple;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Magic bytes opening every WAL segment (version baked into the tag).
const SEGMENT_MAGIC: &[u8; 8] = b"CERWAL1\0";
/// Segment header: magic + u64 first wal_seq.
const HEADER_LEN: u64 = 16;
/// Upper bound accepted for a single frame payload — anything larger
/// is treated as a torn length field.
const MAX_FRAME: u32 = 256 << 20;

/// One logged operation, decoded from a segment during replay.
#[derive(Clone, Debug)]
pub(crate) struct WalRecord {
    pub seq: u64,
    pub op: WalOp,
}

/// The operations that need replay. Barriers, snapshot fences and
/// rescale fences reserve sequencer blocks but change no durable state,
/// so they take no `wal_seq` and are never logged.
#[derive(Clone, Debug)]
pub(crate) enum WalOp {
    /// A producer batch stamped at positions `start..start + tuples.len()`.
    Batch { start: u64, tuples: Vec<Tuple> },
    /// `register` returned `id` at stream position `position`.
    Register {
        position: u64,
        id: u32,
        spec: QuerySpec,
    },
    /// `deregister(id)` at stream position `position`.
    Deregister { position: u64, id: u32 },
    /// `replace(id, spec)` at stream position `position`.
    Replace {
        position: u64,
        id: u32,
        spec: QuerySpec,
    },
}

const TAG_BATCH: u8 = 0;
const TAG_REGISTER: u8 = 1;
const TAG_DEREGISTER: u8 = 2;
const TAG_REPLACE: u8 = 3;

/// Encode a batch record payload. Tuple encoding is infallible for
/// every constructible [`Value`](cer_common::Value), but the wire
/// contract returns `Result`, so this does too.
pub(crate) fn encode_batch(
    seq: u64,
    start: u64,
    tuples: &[Tuple],
) -> Result<Vec<u8>, DurabilityError> {
    let mut w = WireWriter::new();
    w.put_u64(seq);
    w.put_u8(TAG_BATCH);
    w.put_u64(start);
    w.put_len(tuples.len());
    for t in tuples {
        t.encode(&mut w).map_err(DurabilityError::from)?;
    }
    Ok(w.into_bytes())
}

pub(crate) fn encode_register(
    seq: u64,
    position: u64,
    id: u32,
    spec: &QuerySpec,
) -> Result<Vec<u8>, DurabilityError> {
    let mut w = WireWriter::new();
    w.put_u64(seq);
    w.put_u8(TAG_REGISTER);
    w.put_u64(position);
    w.put_u32(id);
    spec.encode(&mut w).map_err(DurabilityError::from)?;
    Ok(w.into_bytes())
}

pub(crate) fn encode_deregister(seq: u64, position: u64, id: u32) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(seq);
    w.put_u8(TAG_DEREGISTER);
    w.put_u64(position);
    w.put_u32(id);
    w.into_bytes()
}

pub(crate) fn encode_replace(
    seq: u64,
    position: u64,
    id: u32,
    spec: &QuerySpec,
) -> Result<Vec<u8>, DurabilityError> {
    let mut w = WireWriter::new();
    w.put_u64(seq);
    w.put_u8(TAG_REPLACE);
    w.put_u64(position);
    w.put_u32(id);
    spec.encode(&mut w).map_err(DurabilityError::from)?;
    Ok(w.into_bytes())
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, DurabilityError> {
    let mut r = WireReader::new(payload);
    let seq = r.get_u64().map_err(DurabilityError::from)?;
    let tag = r.get_u8().map_err(DurabilityError::from)?;
    let op = match tag {
        TAG_BATCH => {
            let start = r.get_u64().map_err(DurabilityError::from)?;
            let tuples = Vec::<Tuple>::decode(&mut r).map_err(DurabilityError::from)?;
            WalOp::Batch { start, tuples }
        }
        TAG_REGISTER => WalOp::Register {
            position: r.get_u64().map_err(DurabilityError::from)?,
            id: r.get_u32().map_err(DurabilityError::from)?,
            spec: QuerySpec::decode(&mut r).map_err(DurabilityError::from)?,
        },
        TAG_DEREGISTER => WalOp::Deregister {
            position: r.get_u64().map_err(DurabilityError::from)?,
            id: r.get_u32().map_err(DurabilityError::from)?,
        },
        TAG_REPLACE => WalOp::Replace {
            position: r.get_u64().map_err(DurabilityError::from)?,
            id: r.get_u32().map_err(DurabilityError::from)?,
            spec: QuerySpec::decode(&mut r).map_err(DurabilityError::from)?,
        },
        _ => return Err(DurabilityError::WalCorrupt("unknown wal record tag")),
    };
    if !r.is_exhausted() {
        return Err(DurabilityError::WalCorrupt(
            "trailing bytes in wal record payload",
        ));
    }
    Ok(WalRecord { seq, op })
}

/// A sealed (or scanned) segment's record range: records
/// `first_seq..end_seq` live in `path`.
#[derive(Clone, Debug)]
pub(crate) struct SegmentInfo {
    pub first_seq: u64,
    pub end_seq: u64,
    pub path: PathBuf,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:016x}.log"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

struct ActiveSegment {
    file: File,
    path: PathBuf,
    first_seq: u64,
    /// Bytes written including the header.
    bytes: u64,
}

struct WalCore {
    active: Option<ActiveSegment>,
    /// The next `wal_seq` to be written to disk; records below it are
    /// durable (modulo fsync), records at or above it are pending.
    next_seq: u64,
    /// Early arrivals: encoded payloads keyed by `wal_seq`.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Checkpoint/rescale fences: seal the active segment before
    /// writing the first record with `seq >= mark`.
    roll_marks: BTreeSet<u64>,
    sealed: Vec<SegmentInfo>,
    /// Records written since the last fsync (for `EveryN`).
    unsynced: u32,
    last_sync: Instant,
}

/// What one append call did, for the caller's metrics.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct AppendReceipt {
    /// Bytes this call wrote to the file (possibly other producers'
    /// drained records).
    pub bytes: u64,
    /// Records this call wrote to the file.
    pub records: u64,
    /// Duration of the fsync this call performed, if its policy fired.
    pub fsync_nanos: Option<u64>,
}

/// The write-ahead log: see the [module docs](self).
pub(crate) struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    poisoned: AtomicBool,
    bytes_total: AtomicU64,
    records_total: AtomicU64,
    core: Mutex<WalCore>,
}

impl Wal {
    /// A log over `dir` with no open segment yet; call
    /// [`resume`](Self::resume) before appending.
    pub fn new(dir: PathBuf, cfg: &DurabilityConfig) -> Wal {
        Wal {
            dir,
            fsync: cfg.fsync,
            segment_bytes: cfg.segment_bytes,
            poisoned: AtomicBool::new(false),
            bytes_total: AtomicU64::new(0),
            records_total: AtomicU64::new(0),
            core: Mutex::new(WalCore {
                active: None,
                next_seq: 0,
                pending: BTreeMap::new(),
                roll_marks: BTreeSet::new(),
                sealed: Vec::new(),
                unsynced: 0,
                last_sync: Instant::now(),
            }),
        }
    }

    /// Open the active segment at `next_seq` and adopt the scanned
    /// `sealed` segments. The active file `wal-<next_seq>.log` is
    /// truncate-created: after a replay the segment with that name (if
    /// any) holds zero records, so overwriting it keeps repeated
    /// recoveries steady-state on disk.
    pub fn resume(
        &self,
        next_seq: u64,
        mut sealed: Vec<SegmentInfo>,
    ) -> Result<(), DurabilityError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| io_err("create wal dir", e))?;
        let path = segment_path(&self.dir, next_seq);
        sealed.retain(|s| s.path != path);
        sealed.sort_by_key(|s| s.first_seq);
        let active = open_segment(&path, next_seq)?;
        let mut core = self.core.lock().unwrap();
        core.active = Some(active);
        core.next_seq = next_seq;
        core.sealed = sealed;
        core.pending.clear();
        core.roll_marks.clear();
        core.unsynced = 0;
        core.last_sync = Instant::now();
        Ok(())
    }

    /// `false` after an append I/O error permanently disabled logging.
    pub fn healthy(&self) -> bool {
        !self.poisoned.load(Ordering::Relaxed)
    }

    /// Permanently disable logging (a record could not even be
    /// encoded): its consumed `wal_seq` will never arrive, so the
    /// pending map must not keep waiting for it.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
        self.core.lock().unwrap().pending.clear();
    }

    pub fn bytes_total(&self) -> u64 {
        self.bytes_total.load(Ordering::Relaxed)
    }

    pub fn records_total(&self) -> u64 {
        self.records_total.load(Ordering::Relaxed)
    }

    /// Segments currently on disk (sealed + active).
    pub fn segments(&self) -> u64 {
        let core = self.core.lock().unwrap();
        core.sealed.len() as u64 + core.active.is_some() as u64
    }

    /// Append the encoded payload for `seq`, then drain every
    /// contiguous pending record to the file and apply the fsync
    /// policy. No-op (empty receipt) once poisoned.
    pub fn append(&self, seq: u64, payload: Vec<u8>) -> Result<AppendReceipt, DurabilityError> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Ok(AppendReceipt::default());
        }
        let mut core = self.core.lock().unwrap();
        core.pending.insert(seq, payload);
        match self.drain(&mut core) {
            Ok(receipt) => {
                self.bytes_total.fetch_add(receipt.bytes, Ordering::Relaxed);
                self.records_total
                    .fetch_add(receipt.records, Ordering::Relaxed);
                Ok(receipt)
            }
            Err(e) => {
                // Fail open: stop logging, keep serving. The stamped
                // batch is already in flight to the shards and must
                // not be failed retroactively; clearing the pending
                // map keeps later (non-logged) sequences from wedging.
                self.poisoned.store(true, Ordering::Relaxed);
                core.pending.clear();
                Err(e)
            }
        }
    }

    /// Write every contiguous pending record in `wal_seq` order.
    fn drain(&self, core: &mut WalCore) -> Result<AppendReceipt, DurabilityError> {
        let mut receipt = AppendReceipt::default();
        while core
            .pending
            .first_key_value()
            .is_some_and(|(&s, _)| s == core.next_seq)
        {
            let seq = core.next_seq;
            let payload = core.pending.remove(&seq).unwrap();

            // Fence-aligned roll: seal before the first record at or
            // past a mark. Late marks (records past the fence already
            // drained by racing producers) seal immediately; the
            // straddling segment is kept by the truncation rule.
            let due = core.roll_marks.range(..=seq).copied().collect::<Vec<u64>>();
            let mut must_roll = false;
            for m in due {
                core.roll_marks.remove(&m);
                must_roll = true;
            }
            // Size-based roll, before the write so segments stay under
            // the limit (a single oversized record still fits alone).
            let frame_len = 8 + payload.len() as u64;
            if let Some(active) = &core.active {
                if active.bytes + frame_len > self.segment_bytes && active.bytes > HEADER_LEN {
                    must_roll = true;
                }
            }
            if must_roll {
                self.roll_now(core, seq)?;
            }

            let active = match &mut core.active {
                Some(a) => a,
                None => {
                    return Err(DurabilityError::WalIo {
                        op: "append",
                        message: "wal not resumed".into(),
                    })
                }
            };
            let mut frame = Vec::with_capacity(frame_len as usize);
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            frame.extend_from_slice(&payload);
            active
                .file
                .write_all(&frame)
                .map_err(|e| io_err("append", e))?;
            active.bytes += frame_len;
            core.next_seq += 1;
            core.unsynced += 1;
            receipt.bytes += frame_len;
            receipt.records += 1;
        }

        if receipt.records > 0 {
            let fire = match self.fsync {
                FsyncPolicy::Always => true,
                FsyncPolicy::EveryN(n) => core.unsynced >= n,
                FsyncPolicy::IntervalMs(ms) => {
                    core.last_sync.elapsed() >= Duration::from_millis(ms)
                }
            };
            if fire {
                receipt.fsync_nanos = Some(self.sync_active(core)?);
            }
        }
        Ok(receipt)
    }

    fn sync_active(&self, core: &mut WalCore) -> Result<u64, DurabilityError> {
        let started = Instant::now();
        if let Some(active) = &core.active {
            active.file.sync_data().map_err(|e| io_err("fsync", e))?;
        }
        core.unsynced = 0;
        core.last_sync = Instant::now();
        Ok(started.elapsed().as_nanos() as u64)
    }

    /// Force an fsync of the active segment (shutdown, pre-checkpoint).
    pub fn flush_sync(&self) -> Result<(), DurabilityError> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Ok(());
        }
        let mut core = self.core.lock().unwrap();
        if core.unsynced > 0 {
            self.sync_active(&mut core)?;
        }
        Ok(())
    }

    /// Seal the active segment and open a new one at `seq`.
    fn roll_now(&self, core: &mut WalCore, seq: u64) -> Result<(), DurabilityError> {
        if let Some(active) = core.active.take() {
            if active.bytes > HEADER_LEN {
                active
                    .file
                    .sync_data()
                    .map_err(|e| io_err("fsync on seal", e))?;
                core.sealed.push(SegmentInfo {
                    first_seq: active.first_seq,
                    end_seq: seq,
                    path: active.path,
                });
                core.unsynced = 0;
                core.active = Some(open_segment(&segment_path(&self.dir, seq), seq)?);
                return Ok(());
            }
            // Empty active segment: reuse it (its header already names
            // this sequence — resume truncate-created it there).
            core.active = Some(active);
        }
        Ok(())
    }

    /// Roll the active segment at the checkpoint/rescale fence whose
    /// `wal_seq` high-water is `seq`. If the drain cursor has not
    /// reached `seq` yet, the roll is deferred until it does.
    pub fn roll_at(&self, seq: u64) {
        if self.poisoned.load(Ordering::Relaxed) {
            return;
        }
        let mut core = self.core.lock().unwrap();
        if core.next_seq >= seq {
            let at = core.next_seq;
            let _ = self.roll_now(&mut core, at);
        } else {
            core.roll_marks.insert(seq);
        }
    }

    /// Delete sealed segments fully covered by a checkpoint at
    /// `wal_seq` high-water `seq` (every record durable in the
    /// checkpoint). Returns how many were removed; per-file removal
    /// errors leave the segment in place (retried next checkpoint).
    pub fn truncate_below(&self, seq: u64) -> u64 {
        let mut core = self.core.lock().unwrap();
        let mut removed = 0;
        core.sealed.retain(|s| {
            if s.end_seq <= seq && std::fs::remove_file(&s.path).is_ok() {
                removed += 1;
                false
            } else {
                true
            }
        });
        removed
    }
}

fn open_segment(path: &Path, first_seq: u64) -> Result<ActiveSegment, DurabilityError> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
        .map_err(|e| io_err("open segment", e))?;
    let mut header = [0u8; HEADER_LEN as usize];
    header[..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..].copy_from_slice(&first_seq.to_le_bytes());
    file.write_all(&header)
        .map_err(|e| io_err("write segment header", e))?;
    Ok(ActiveSegment {
        file,
        path: path.to_path_buf(),
        first_seq,
        bytes: HEADER_LEN,
    })
}

/// A torn tail found (and truncated away) during replay.
#[derive(Clone, Debug)]
pub(crate) struct TornTail {
    pub bytes_dropped: u64,
}

/// Outcome of scanning a WAL directory.
pub(crate) struct WalReplay {
    /// Every scanned segment with its record range, in order — feed to
    /// [`Wal::resume`] so truncation keeps working after recovery.
    pub segments: Vec<SegmentInfo>,
    /// First unused `wal_seq`; [`Wal::resume`] continues here.
    pub next_seq: u64,
    /// Torn tails truncated away (journaled by the caller).
    pub torn: Vec<TornTail>,
    /// Records passed to the callback (i.e. with `seq >= from_seq`).
    pub replayed: u64,
}

/// Scan `dir`'s segments in `wal_seq` order, truncating torn tails in
/// place, and feed every intact record with `seq >= from_seq` to `f`.
///
/// Contiguity is enforced: record sequences must increase by exactly 1
/// across frames *and* segment boundaries; a gap means a segment was
/// lost (not merely a tail torn) and fails with
/// [`DurabilityError::RecoverMismatch`].
pub(crate) fn replay_dir(
    dir: &Path,
    from_seq: u64,
    f: &mut dyn FnMut(WalRecord) -> Result<(), DurabilityError>,
) -> Result<WalReplay, DurabilityError> {
    let mut outcome = WalReplay {
        segments: Vec::new(),
        next_seq: from_seq,
        torn: Vec::new(),
        replayed: 0,
    };
    if !dir.exists() {
        return Ok(outcome);
    }
    let mut names: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| io_err("read wal dir", e))? {
        let entry = entry.map_err(|e| io_err("read wal dir", e))?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_segment_name) {
            names.push((seq, entry.path()));
        }
    }
    names.sort_by_key(|(seq, _)| *seq);

    let mut cursor: Option<u64> = None;
    for (name_seq, path) in names {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open segment", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read segment", e))?;

        if bytes.len() < HEADER_LEN as usize {
            // A create torn mid-header (or an empty file): no records
            // can exist past a missing header. Drop the file entirely.
            outcome.torn.push(TornTail {
                bytes_dropped: bytes.len() as u64,
            });
            std::fs::remove_file(&path).map_err(|e| io_err("remove torn segment", e))?;
            continue;
        }
        if &bytes[..8] != SEGMENT_MAGIC {
            return Err(DurabilityError::WalCorrupt("bad wal segment magic"));
        }
        let first_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if first_seq != name_seq {
            return Err(DurabilityError::WalCorrupt(
                "wal segment header disagrees with its file name",
            ));
        }
        match cursor {
            None => cursor = Some(first_seq),
            Some(c) if c == first_seq => {}
            Some(_) => {
                return Err(DurabilityError::RecoverMismatch(format!(
                    "wal segment {} does not continue the sequence",
                    path.display()
                )))
            }
        }

        let mut offset = HEADER_LEN as usize;
        let mut good = offset;
        loop {
            if bytes.len() < offset + 8 {
                break; // clean end or torn frame header
            }
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            if len > MAX_FRAME || bytes.len() < offset + 8 + len as usize {
                break; // torn length field or torn payload
            }
            let payload = &bytes[offset + 8..offset + 8 + len as usize];
            if crc32(payload) != crc {
                break; // torn payload bytes
            }
            // The frame is intact: an undecodable payload now is real
            // corruption, not a torn write.
            let record = decode_record(payload)?;
            let c = cursor.unwrap();
            if record.seq != c {
                return Err(DurabilityError::RecoverMismatch(format!(
                    "wal record sequence jumped from {c} to {}",
                    record.seq
                )));
            }
            cursor = Some(c + 1);
            if record.seq >= from_seq {
                f(record)?;
                outcome.replayed += 1;
            }
            offset += 8 + len as usize;
            good = offset;
        }
        if good < bytes.len() {
            file.set_len(good as u64)
                .map_err(|e| io_err("truncate torn tail", e))?;
            file.seek(SeekFrom::End(0))
                .map_err(|e| io_err("truncate torn tail", e))?;
            file.sync_data()
                .map_err(|e| io_err("truncate torn tail", e))?;
            outcome.torn.push(TornTail {
                bytes_dropped: (bytes.len() - good) as u64,
            });
        }
        outcome.segments.push(SegmentInfo {
            first_seq,
            end_seq: cursor.unwrap(),
            path,
        });
    }
    if let Some(c) = cursor {
        outcome.next_seq = c.max(from_seq);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::Value;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cer-wal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tuples(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(cer_common::RelationId(0), vec![Value::Int(i as i64)]))
            .collect()
    }

    fn collect(dir: &Path, from: u64) -> (Vec<u64>, WalReplay) {
        let mut seqs = Vec::new();
        let outcome = replay_dir(dir, from, &mut |rec| {
            seqs.push(rec.seq);
            Ok(())
        })
        .unwrap();
        (seqs, outcome)
    }

    #[test]
    fn append_out_of_order_drains_in_seq_order() {
        let dir = tmp("order");
        let wal = Wal::new(dir.clone(), &DurabilityConfig::new());
        wal.resume(0, Vec::new()).unwrap();
        let batch = tuples(2);
        // seq 1 arrives first: nothing can drain.
        let p1 = encode_batch(1, 2, &batch).unwrap();
        let r1 = wal.append(1, p1).unwrap();
        assert_eq!(r1.records, 0);
        // seq 0 arrives: both drain.
        let p0 = encode_batch(0, 0, &batch).unwrap();
        let r0 = wal.append(0, p0).unwrap();
        assert_eq!(r0.records, 2);
        drop(wal);
        let (seqs, outcome) = collect(&dir, 0);
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(outcome.next_seq, 2);
        assert!(outcome.torn.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replay() {
        let dir = tmp("torn");
        let wal = Wal::new(dir.clone(), &DurabilityConfig::new());
        wal.resume(0, Vec::new()).unwrap();
        for seq in 0..4u64 {
            let p = encode_batch(seq, seq * 3, &tuples(3)).unwrap();
            wal.append(seq, p).unwrap();
        }
        drop(wal);
        // Corrupt the tail: chop bytes off the last frame.
        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (seqs, outcome) = collect(&dir, 0);
        assert_eq!(seqs, vec![0, 1, 2], "the torn record is dropped");
        assert_eq!(outcome.next_seq, 3);
        assert_eq!(outcome.torn.len(), 1);
        // A second replay sees a clean log (tail was truncated away).
        let (seqs2, outcome2) = collect(&dir, 0);
        assert_eq!(seqs2, vec![0, 1, 2]);
        assert!(outcome2.torn.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_inside_tail_frame_is_detected_by_crc() {
        let dir = tmp("flip");
        let wal = Wal::new(dir.clone(), &DurabilityConfig::new());
        wal.resume(0, Vec::new()).unwrap();
        for seq in 0..2u64 {
            let p = encode_batch(seq, seq, &tuples(1)).unwrap();
            wal.append(seq, p).unwrap();
        }
        drop(wal);
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let (seqs, outcome) = collect(&dir, 0);
        assert_eq!(seqs, vec![0]);
        assert_eq!(outcome.torn.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roll_and_truncate_respect_straddlers() {
        let dir = tmp("roll");
        let wal = Wal::new(dir.clone(), &DurabilityConfig::new());
        wal.resume(0, Vec::new()).unwrap();
        for seq in 0..3u64 {
            wal.append(seq, encode_batch(seq, seq, &tuples(1)).unwrap())
                .unwrap();
        }
        // Fence at seq 3: seals [0,3), opens wal-3.
        wal.roll_at(3);
        assert_eq!(wal.segments(), 2);
        for seq in 3..5u64 {
            wal.append(seq, encode_batch(seq, seq, &tuples(1)).unwrap())
                .unwrap();
        }
        // Checkpoint at 3 deletes the fully-covered segment only.
        assert_eq!(wal.truncate_below(3), 1);
        assert_eq!(wal.segments(), 1);
        drop(wal);
        let (seqs, _) = collect(&dir, 3);
        assert_eq!(seqs, vec![3, 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deferred_roll_mark_fires_when_cursor_arrives() {
        let dir = tmp("mark");
        let wal = Wal::new(dir.clone(), &DurabilityConfig::new());
        wal.resume(0, Vec::new()).unwrap();
        wal.append(0, encode_batch(0, 0, &tuples(1)).unwrap())
            .unwrap();
        // Mark at 2 while the cursor sits at 1: deferred.
        wal.roll_at(2);
        assert_eq!(wal.segments(), 1);
        wal.append(1, encode_batch(1, 1, &tuples(1)).unwrap())
            .unwrap();
        wal.append(2, encode_batch(2, 2, &tuples(1)).unwrap())
            .unwrap();
        assert_eq!(wal.segments(), 2, "mark fired before writing seq 2");
        drop(wal);
        let (seqs, outcome) = collect(&dir, 0);
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(outcome.segments.len(), 2);
        assert_eq!(outcome.segments[0].end_seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_replay_is_steady_state() {
        let dir = tmp("resume");
        let wal = Wal::new(dir.clone(), &DurabilityConfig::new());
        wal.resume(0, Vec::new()).unwrap();
        for seq in 0..3u64 {
            wal.append(seq, encode_batch(seq, seq, &tuples(1)).unwrap())
                .unwrap();
        }
        drop(wal);
        for _ in 0..3 {
            let (_, outcome) = collect(&dir, 0);
            assert_eq!(outcome.next_seq, 3);
            let wal = Wal::new(dir.clone(), &DurabilityConfig::new());
            wal.resume(outcome.next_seq, outcome.segments).unwrap();
            drop(wal);
            let files = std::fs::read_dir(&dir).unwrap().count();
            assert_eq!(files, 2, "one data segment + one empty active");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

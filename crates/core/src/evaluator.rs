//! The streaming evaluation algorithm (Section 5, Algorithm 1 /
//! Theorem 5.1).
//!
//! Evaluates an unambiguous PCEA with equality predicates over a stream
//! under a sliding window of size `w`, with
//! `O(|P|·|t| + |P|·log|P| + |P|·log w)` update time and output-linear
//! delay enumeration:
//!
//! * **FireTransitions** — for every transition `(P, U, B, L, q)`, if the
//!   current tuple satisfies `U` and every source slot `p ∈ P` has a
//!   stored run whose join key `⃗B_p` matches the tuple's `⃖B_p`, the
//!   gathered runs are `extend`ed into a fresh `DS_w` node at `q`.
//! * **UpdateIndices** — every node created this position is indexed in
//!   the look-up table `H` under `(transition, slot, ⃗B_p(t))`, melding
//!   with previous entries via the persistent `union`.
//! * **Enumerate** — nodes that reached a final state this position hold
//!   exactly the *new* outputs `⟦P⟧^w_i(S)`, enumerated with
//!   output-linear delay (Theorem 5.2).
//!
//! Windowing never scans old state: expired subtrees are dropped lazily
//! during `union` and enumeration (heap condition (‡)), and a periodic
//! copying collector ([`StreamingEvaluator::set_gc_every`]) keeps memory
//! proportional to the live window on unbounded streams.

use crate::ds::{EnumStructure, NodeId};
use crate::enumerate;
use std::collections::VecDeque;
use cer_automata::pcea::Pcea;
use cer_automata::predicate::Key;
use cer_automata::valuation::Valuation;
use cer_common::hash::FxHashMap;
use cer_common::Tuple;

/// Look-up table key: `(transition index, source slot, join key)`.
type HKey = (u32, u32, Key);

/// How the sliding window expires old positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowPolicy {
    /// The paper's count window: positions older than `i − w` expire.
    Count(u64),
    /// A time window: the tuple attribute at `ts_pos` is a
    /// non-decreasing integer timestamp, and positions whose timestamp
    /// falls below `now − duration` expire. The `DS_w` machinery is
    /// window-agnostic (it only needs a monotone expiry bound), so
    /// Theorem 5.1's guarantees carry over with `w` read as the maximum
    /// number of in-window positions.
    Time {
        /// Window length in timestamp units.
        duration: i64,
        /// Tuple position holding the integer timestamp.
        ts_pos: usize,
    },
}

/// Counters exposed for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Positions processed so far.
    pub positions: u64,
    /// Nodes currently allocated in the arena.
    pub arena_nodes: usize,
    /// Entries in the look-up table `H`.
    pub index_entries: usize,
    /// `extend` calls performed.
    pub extends: u64,
    /// `union` calls performed.
    pub unions: u64,
    /// Garbage collections run.
    pub collections: u64,
}

/// The streaming evaluator of Theorem 5.1.
///
/// ```
/// use cer_automata::pcea::paper_p0;
/// use cer_common::gen::sigma0_prefix;
/// use cer_common::Schema;
/// use cer_core::evaluator::StreamingEvaluator;
///
/// let (_, r, s, t) = Schema::sigma0();
/// let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), 100);
/// let mut total = 0;
/// for tuple in sigma0_prefix(r, s, t) {
///     total += engine.push_count(&tuple);
/// }
/// assert_eq!(total, 2); // ντ0 and ντ1 of Example 3.3
/// ```
#[derive(Clone, Debug)]
pub struct StreamingEvaluator {
    pcea: Pcea,
    window: WindowPolicy,
    ds: EnumStructure,
    h: FxHashMap<HKey, NodeId>,
    /// `N_p` per state, rebuilt each position.
    n_state: Vec<Vec<NodeId>>,
    /// Scratch for gathered source nodes.
    gather: Vec<NodeId>,
    /// Next position to read (the paper's `i + 1`).
    next_pos: u64,
    /// Expiry bound computed for the current position.
    current_lo: u64,
    /// Time windows: in-window `(position, timestamp)` ring.
    ring: VecDeque<(u64, i64)>,
    last_ts: i64,
    gc_every: u64,
    stats: EngineStats,
}

impl StreamingEvaluator {
    /// Create an evaluator for `pcea` under window size `w`.
    ///
    /// The algorithm's guarantees (no duplicate outputs, output-linear
    /// delay) require `pcea` to be unambiguous with equality predicates,
    /// as in Theorem 5.1; this is not checked here (see
    /// `ReferenceEval::check_unambiguous`).
    pub fn new(pcea: Pcea, w: u64) -> Self {
        Self::with_window(pcea, WindowPolicy::Count(w))
    }

    /// Create an evaluator with a time window: positions whose timestamp
    /// (the integer at `ts_pos` of every tuple) is older than
    /// `now − duration` expire. Timestamps must be non-decreasing;
    /// out-of-order timestamps are clamped up to the latest seen.
    pub fn new_timed(pcea: Pcea, duration: i64, ts_pos: usize) -> Self {
        assert!(duration >= 0, "window duration must be non-negative");
        Self::with_window(pcea, WindowPolicy::Time { duration, ts_pos })
    }

    /// Create an evaluator with an explicit window policy.
    pub fn with_window(pcea: Pcea, window: WindowPolicy) -> Self {
        let n_states = pcea.num_states();
        StreamingEvaluator {
            pcea,
            window,
            ds: EnumStructure::new(),
            h: FxHashMap::default(),
            n_state: vec![Vec::new(); n_states],
            gather: Vec::new(),
            next_pos: 0,
            current_lo: 0,
            ring: VecDeque::new(),
            last_ts: i64::MIN,
            gc_every: 0,
            stats: EngineStats::default(),
        }
    }

    /// Run the copying collector every `every` positions (0 = automatic:
    /// every `max(w, 1024)` positions).
    pub fn set_gc_every(&mut self, every: u64) -> &mut Self {
        self.gc_every = every;
        self
    }

    /// The automaton being evaluated.
    pub fn pcea(&self) -> &Pcea {
        &self.pcea
    }

    /// The window policy.
    pub fn window(&self) -> &WindowPolicy {
        &self.window
    }

    /// The position the *next* tuple will occupy.
    pub fn next_position(&self) -> u64 {
        self.next_pos
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            arena_nodes: self.ds.len(),
            index_entries: self.h.len(),
            ..self.stats
        }
    }

    /// Update phase of Algorithm 1 for one tuple. Returns the position it
    /// occupied. Call an output method afterwards — or use the combined
    /// [`push_for_each`](Self::push_for_each) /
    /// [`push_collect`](Self::push_collect) / [`push_count`](Self::push_count).
    pub fn push(&mut self, t: &Tuple) -> u64 {
        let i = self.next_pos;
        self.next_pos += 1;
        self.stats.positions += 1;
        let lo = match &self.window {
            WindowPolicy::Count(w) => i.saturating_sub(*w),
            WindowPolicy::Time { duration, ts_pos } => {
                let ts = t
                    .values()
                    .get(*ts_pos)
                    .and_then(cer_common::Value::as_int)
                    .unwrap_or_else(|| {
                        panic!("time window: tuple lacks an integer timestamp at {ts_pos}")
                    })
                    .max(self.last_ts);
                self.last_ts = ts;
                self.ring.push_back((i, ts));
                while self
                    .ring
                    .front()
                    .is_some_and(|&(_, old)| old < ts.saturating_sub(*duration))
                {
                    self.ring.pop_front();
                }
                self.ring.front().map_or(i, |&(p, _)| p)
            }
        };
        self.current_lo = lo;

        // Reset.
        for n in &mut self.n_state {
            n.clear();
        }

        // FireTransitions: gather matching stored runs per transition.
        for (e_idx, tr) in self.pcea.transitions().iter().enumerate() {
            if !tr.unary.matches(t) {
                continue;
            }
            self.gather.clear();
            let mut all_present = true;
            for (slot, b) in tr.binary.iter().enumerate() {
                let Some(key) = b.right.extract(t) else {
                    all_present = false;
                    break;
                };
                match self.h.get(&(e_idx as u32, slot as u32, key)) {
                    Some(&node) if self.ds.max_start(node) >= lo => self.gather.push(node),
                    _ => {
                        all_present = false;
                        break;
                    }
                }
            }
            if !all_present {
                continue;
            }
            let node = self.ds.extend(tr.labels, i, &self.gather);
            self.stats.extends += 1;
            self.n_state[tr.target.index()].push(node);
        }

        // UpdateIndices: make this position's runs visible to future
        // tuples under their left join keys.
        for (e_idx, tr) in self.pcea.transitions().iter().enumerate() {
            for (slot, (p, b)) in tr.sources.iter().zip(tr.binary.iter()).enumerate() {
                if self.n_state[p.index()].is_empty() {
                    continue;
                }
                let Some(key) = b.left.extract(t) else {
                    continue;
                };
                let hkey = (e_idx as u32, slot as u32, key);
                for k in 0..self.n_state[p.index()].len() {
                    let node = self.n_state[p.index()][k];
                    let merged = match self.h.get(&hkey) {
                        Some(&prev) => {
                            self.stats.unions += 1;
                            self.ds.union(prev, node, lo)
                        }
                        None => node,
                    };
                    self.h.insert(hkey.clone(), merged);
                }
            }
        }

        let gc_every = if self.gc_every == 0 {
            match self.window {
                WindowPolicy::Count(w) => w.max(1024),
                WindowPolicy::Time { .. } => 1024,
            }
        } else {
            self.gc_every
        };
        if i > 0 && i.is_multiple_of(gc_every) {
            self.collect_garbage(lo);
        }
        i
    }

    /// Enumerate this position's new outputs (`⟦P⟧^w_i(S)`), calling `f`
    /// once per valuation. Must follow [`push`](Self::push) for the same
    /// position.
    pub fn for_each_output<F: FnMut(&Valuation)>(&self, mut f: F) {
        for q in self.pcea.finals() {
            for &n in &self.n_state[q.index()] {
                enumerate::for_each_valuation_from(
                    &self.ds,
                    n,
                    self.current_lo,
                    self.pcea.num_labels(),
                    &mut f,
                );
            }
        }
    }

    /// Push a tuple and collect the new outputs.
    pub fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        self.push(t);
        let mut out = Vec::new();
        self.for_each_output(|v| out.push(v.clone()));
        out
    }

    /// Push a tuple and count the new outputs without materializing them.
    pub fn push_count(&mut self, t: &Tuple) -> usize {
        self.push(t);
        let mut n = 0usize;
        for q in self.pcea.finals() {
            for &node in &self.n_state[q.index()] {
                enumerate::for_each_valuation_from(&self.ds, node, self.current_lo, 0, |_| {
                    n += 1;
                });
            }
        }
        n
    }

    /// Push a tuple, calling `f` for each new output.
    pub fn push_for_each<F: FnMut(&Valuation)>(&mut self, t: &Tuple, f: F) {
        self.push(t);
        self.for_each_output(f);
    }

    /// Copying garbage collection: keep only nodes reachable from live
    /// `H` entries (and the current position's pending nodes), dropping
    /// expired subtrees. Fully transparent to outputs.
    fn collect_garbage(&mut self, lo: u64) {
        self.stats.collections += 1;
        // Drop dead index entries first.
        let ds = &self.ds;
        self.h.retain(|_, node| ds.max_start(*node) >= lo);
        let mut roots: Vec<&mut NodeId> = self
            .h
            .values_mut()
            .chain(self.n_state.iter_mut().flatten())
            .collect();
        self.ds.compact(&mut roots, lo);
    }
}

/// Convenience driver: evaluate a PCEA over a finite stream, returning
/// `(position, outputs)` for every position with at least one output.
pub fn run_to_end(
    pcea: Pcea,
    w: u64,
    stream: &[Tuple],
) -> Vec<(u64, Vec<Valuation>)> {
    let mut engine = StreamingEvaluator::new(pcea, w);
    let mut out = Vec::new();
    for t in stream {
        let vs = engine.push_collect(t);
        if !vs.is_empty() {
            out.push((engine.next_position() - 1, vs));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::ccea::paper_c0;
    use cer_automata::pcea::paper_p0;
    use cer_automata::reference::ReferenceEval;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    /// Differential harness: engine output == reference oracle at every
    /// position and for several window sizes.
    fn check_against_reference(pcea: &Pcea, stream: &[Tuple], windows: &[u64]) {
        let reference = ReferenceEval::new(pcea, stream);
        for &w in windows {
            let mut engine = StreamingEvaluator::new(pcea.clone(), w);
            for (n, t) in stream.iter().enumerate() {
                let mut got = engine.push_collect(t);
                got.sort();
                got.dedup();
                let want = reference.windowed_outputs_at(n, w);
                assert_eq!(got, want, "w={w}, position {n}");
            }
        }
    }

    #[test]
    fn example_3_3_on_the_engine() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        check_against_reference(&paper_p0(r, s, t), &stream, &[0, 2, 4, 5, 100]);
    }

    #[test]
    fn ccea_embedding_on_the_engine() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        check_against_reference(&paper_c0(r, s, t).to_pcea(), &stream, &[1, 3, 100]);
    }

    #[test]
    fn outputs_fire_exactly_at_completion() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), 100);
        let counts: Vec<usize> = stream.iter().map(|t| engine.push_count(t)).collect();
        assert_eq!(counts, vec![0, 0, 0, 0, 0, 2, 0, 0]);
    }

    #[test]
    fn window_cuts_long_spans() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        // Span of ντ0 is 4, of ντ1 is 5.
        for (w, expect) in [(5u64, 2usize), (4, 1), (3, 0)] {
            let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), w);
            let total: usize = stream.iter().map(|t| engine.push_count(t)).sum();
            assert_eq!(total, expect, "w={w}");
        }
    }

    #[test]
    fn long_stream_with_gc_matches_no_gc() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (_, r, s, t) = Schema::sigma0();
        let mut gen = Sigma0Gen::new(r, s, t, 42).with_domains(4, 4);
        let stream: Vec<Tuple> = (0..400).map(|_| gen.next_tuple().unwrap()).collect();
        let pcea = paper_p0(r, s, t);
        let w = 16;

        let mut eager = StreamingEvaluator::new(pcea.clone(), w);
        eager.set_gc_every(7);
        let mut lazy = StreamingEvaluator::new(pcea, w);
        lazy.set_gc_every(1_000_000);
        for tu in &stream {
            let mut a = eager.push_collect(tu);
            let mut b = lazy.push_collect(tu);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
        assert!(eager.stats().collections > 0);
        assert!(eager.stats().arena_nodes < lazy.stats().arena_nodes);
    }

    #[test]
    fn memory_stays_bounded_under_gc() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (_, r, s, t) = Schema::sigma0();
        let mut gen = Sigma0Gen::new(r, s, t, 7).with_domains(8, 8);
        let pcea = paper_p0(r, s, t);
        let w = 32;
        let mut engine = StreamingEvaluator::new(pcea, w);
        engine.set_gc_every(w);
        let mut peak = 0usize;
        for _ in 0..2000 {
            let tu = gen.next_tuple().unwrap();
            engine.push(&tu);
            peak = peak.max(engine.stats().arena_nodes);
        }
        // Live state is O(|∆| · w); allow a generous constant.
        assert!(
            peak < 64 * (w as usize) * 3,
            "arena peaked at {peak} nodes"
        );
    }

    #[test]
    fn stats_track_work() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), 100);
        for tu in &stream {
            engine.push(tu);
        }
        let st = engine.stats();
        assert_eq!(st.positions, 8);
        // 6 initial fires (the S and T tuples) + 1 join fire (R(2,11)).
        assert_eq!(st.extends, 7);
        assert!(st.index_entries > 0);
    }

    #[test]
    fn run_to_end_reports_positions() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let results = run_to_end(paper_p0(r, s, t), 100, &stream);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 5);
        assert_eq!(results[0].1.len(), 2);
    }
}

//! The streaming evaluation algorithm (Section 5, Algorithm 1 /
//! Theorem 5.1).
//!
//! Evaluates an unambiguous PCEA with equality predicates over a stream
//! under a sliding window of size `w`, with
//! `O(|P|·|t| + |P|·log|P| + |P|·log w)` update time and output-linear
//! delay enumeration. The algorithm is composed from explicit stages,
//! each owned by its own module:
//!
//! * **ingest/window** ([`crate::window`]) — [`WindowClock`] maps each
//!   arriving tuple to the expiry bound `lo` of its position;
//! * **FireTransitions** and **UpdateIndices** (`crate::fire`) — for
//!   every transition `(P, U, B, L, q)`, if the current tuple satisfies
//!   `U` and every source slot `p ∈ P` has a stored run whose join key
//!   `⃗B_p` matches the tuple's `⃖B_p`, the gathered runs are `extend`ed
//!   into a fresh `DS_w` node at `q`; every node created this position
//!   is indexed in the look-up table `H` under
//!   `(transition, slot, ⃗B_p(t))`, melding with previous entries via
//!   the persistent `union`;
//! * **Enumerate** ([`crate::enumerate`]) — nodes that reached a final
//!   state this position hold exactly the *new* outputs `⟦P⟧^w_i(S)`,
//!   enumerated with output-linear delay (Theorem 5.2).
//!
//! Windowing never scans old state: expired subtrees are dropped lazily
//! during `union` and enumeration (heap condition (‡)), and a periodic
//! copying collector ([`StreamingEvaluator::set_gc_every`]) keeps memory
//! proportional to the live window on unbounded streams.
//!
//! # Batch evaluation and its exactness argument
//!
//! Algorithm 1 is stated tuple-at-a-time, and [`StreamingEvaluator::push`]
//! mirrors it. The batch entry points
//! ([`StreamingEvaluator::push_slice_for_each`] and friends) evaluate a
//! whole slice per call instead, restructuring the *work* without
//! changing the *outputs*:
//!
//! 1. **Unary pre-filter.** Every transition's unary predicate is
//!    evaluated across the whole slice up front, transition-major, into
//!    a compact bitmask (`crate::fire`); the per-position loop then
//!    only visits transitions whose predicate accepted. The same
//!    predicate evaluations happen on the same tuples — only their
//!    order changes, and unary predicates are pure, so every firing
//!    decision is identical.
//! 2. **Hoisted per-position bookkeeping.** The `N_p` clear walks only
//!    the states touched at the previous position (not all of `Q`), the
//!    gather scratch and the bitmask are reused per-batch allocations,
//!    and the window-policy dispatch is lifted out of the inner loop
//!    (count windows compute `lo = i − w` inline; time windows still
//!    advance the [`WindowClock`] ring per tuple, because the bound
//!    depends on each tuple's timestamp). The bound `lo` fed to firing
//!    and enumeration is computed *exactly* per position — it must be,
//!    since enumeration still happens at each position.
//! 3. **Amortized GC.** The garbage-collection cadence check runs once
//!    per batch (at the batch boundary) instead of once per tuple.
//!    Collection is fully transparent to outputs (it only drops expired
//!    or unreachable nodes), so deferring it within a batch cannot
//!    change any enumeration; it only lets the arena grow by at most
//!    one batch's worth of nodes past the configured cadence.
//!
//! Hence the outputs of a `push_slice_*` call are **bit-identical** —
//! same valuations, same positions, same per-position grouping — to
//! pushing the same tuples one at a time: enumeration still runs at
//! every position, over the same `N_p` lists, with the same bound.
//! `tests/batch_vectorized.rs` checks this differentially across
//! engines, baselines, batch sizes and window policies.
//!
//! For hosting *many* queries over one stream — with relation-based
//! routing and key-partitioned sharding across worker threads — see
//! [`crate::runtime`].

use crate::api::Evaluator;
use crate::ds::EnumStructure;
use crate::enumerate;
use crate::fire::FireStage;
use crate::window::WindowClock;
pub use crate::window::WindowPolicy;
use cer_automata::pcea::Pcea;
use cer_automata::valuation::Valuation;
use cer_common::Tuple;

/// Counters exposed for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Positions processed so far.
    pub positions: u64,
    /// Nodes currently allocated in the arena.
    pub arena_nodes: usize,
    /// Entries in the look-up table `H`.
    pub index_entries: usize,
    /// `extend` calls performed.
    pub extends: u64,
    /// `union` calls performed.
    pub unions: u64,
    /// Garbage collections run.
    pub collections: u64,
    /// Out-of-order timestamps the time-window clock clamped (always 0
    /// for count windows). Non-zero means the stream violated the
    /// non-decreasing-timestamp contract — under key-partitioned
    /// sharding its outputs may then depend on the shard count; see the
    /// hazard note in [`crate::window`].
    pub ts_regressions: u64,
}

/// The streaming evaluator of Theorem 5.1.
///
/// ```
/// use cer_automata::pcea::paper_p0;
/// use cer_common::gen::sigma0_prefix;
/// use cer_common::Schema;
/// use cer_core::evaluator::StreamingEvaluator;
///
/// let (_, r, s, t) = Schema::sigma0();
/// let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), 100);
/// let mut total = 0;
/// for tuple in sigma0_prefix(r, s, t) {
///     total += engine.push_count(&tuple);
/// }
/// assert_eq!(total, 2); // ντ0 and ντ1 of Example 3.3
/// ```
#[derive(Clone, Debug)]
pub struct StreamingEvaluator {
    pcea: Pcea,
    clock: WindowClock,
    ds: EnumStructure,
    stage: FireStage,
    /// Next position to read (the paper's `i + 1`).
    next_pos: u64,
    /// Expiry bound computed for the current position.
    current_lo: u64,
    gc_every: u64,
    /// Positions processed since the last collection.
    since_gc: u64,
    stats: EngineStats,
}

impl StreamingEvaluator {
    /// Create an evaluator for `pcea` under window size `w`.
    ///
    /// The algorithm's guarantees (no duplicate outputs, output-linear
    /// delay) require `pcea` to be unambiguous with equality predicates,
    /// as in Theorem 5.1; this is not checked here (see
    /// `ReferenceEval::check_unambiguous`).
    pub fn new(pcea: Pcea, w: u64) -> Self {
        Self::with_window(pcea, WindowPolicy::Count(w))
    }

    /// Create an evaluator with a time window: positions whose timestamp
    /// (the integer at `ts_pos` of every tuple) is older than
    /// `now − duration` expire. Timestamps must be non-decreasing;
    /// out-of-order timestamps are clamped up to the latest seen.
    pub fn new_timed(pcea: Pcea, duration: i64, ts_pos: usize) -> Self {
        assert!(duration >= 0, "window duration must be non-negative");
        Self::with_window(pcea, WindowPolicy::Time { duration, ts_pos })
    }

    /// Create an evaluator with an explicit window policy.
    pub fn with_window(pcea: Pcea, window: WindowPolicy) -> Self {
        let n_states = pcea.num_states();
        StreamingEvaluator {
            pcea,
            clock: WindowClock::new(window),
            ds: EnumStructure::new(),
            stage: FireStage::new(n_states),
            next_pos: 0,
            current_lo: 0,
            gc_every: 0,
            since_gc: 0,
            stats: EngineStats::default(),
        }
    }

    /// Run the copying collector every `every` positions (0 = automatic:
    /// every `max(w, 1024)` positions).
    pub fn set_gc_every(&mut self, every: u64) -> &mut Self {
        self.gc_every = every;
        self
    }

    /// The automaton being evaluated.
    pub fn pcea(&self) -> &Pcea {
        &self.pcea
    }

    /// The window policy.
    pub fn window(&self) -> &WindowPolicy {
        self.clock.policy()
    }

    /// The position the *next* tuple will occupy (when pushed without an
    /// explicit position).
    pub fn next_position(&self) -> u64 {
        self.next_pos
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            arena_nodes: self.ds.len(),
            index_entries: self.stage.index_entries(),
            ts_regressions: self.clock.ts_regressions(),
            ..self.stats
        }
    }

    /// Update phase of Algorithm 1 for one tuple. Returns the position it
    /// occupied. Call an output method afterwards — or use the combined
    /// [`push_for_each`](Self::push_for_each) /
    /// [`push_collect`](Self::push_collect) / [`push_count`](Self::push_count).
    pub fn push(&mut self, t: &Tuple) -> u64 {
        self.push_at(t, self.next_pos)
    }

    /// Update phase for a tuple occupying an *explicit* stream position.
    ///
    /// Positions must be pushed in strictly increasing order but may
    /// have gaps: a sharded evaluator inside the multi-query
    /// [`Runtime`](crate::runtime::Runtime) only sees the tuples routed
    /// to it, yet output valuations must carry global stream positions.
    /// Count windows keep their *global* meaning (`lo = i − w`), so
    /// outputs match an evaluator that saw every position.
    ///
    /// Panics if `i` is behind a position already pushed.
    pub fn push_at(&mut self, t: &Tuple, i: u64) -> u64 {
        assert!(
            i >= self.next_pos,
            "positions must increase: got {i}, expected at least {}",
            self.next_pos
        );
        self.next_pos = i + 1;
        self.stats.positions += 1;
        let lo = self.clock.observe(i, t);
        self.current_lo = lo;

        self.stage.begin_position();
        self.stage
            .fire_transitions(&self.pcea, &mut self.ds, t, i, lo, &mut self.stats);
        self.stage
            .update_indices(&self.pcea, &mut self.ds, t, lo, &mut self.stats);

        let gc_every = if self.gc_every == 0 {
            self.clock.default_gc_every()
        } else {
            self.gc_every
        };
        self.since_gc += 1;
        if self.since_gc >= gc_every {
            self.since_gc = 0;
            self.stats.collections += 1;
            self.stage.collect_garbage(&mut self.ds, lo);
        }
        i
    }

    /// The shared core of the batch entry points: evaluate `len` stamped
    /// tuples, provided by `get` in strictly increasing position order,
    /// with the fire stage vectorized across the slice (see the module
    /// docs for the restructuring and its exactness argument).
    ///
    /// When `labels` is `Some(n)`, each position's new outputs are
    /// enumerated with `n` labels and passed to `f(position, valuation)`
    /// (`n = 0` yields placeholder valuations — enough to *count*
    /// without materializing); `None` skips enumeration entirely.
    fn push_slice_impl<'t, G, F>(&mut self, len: usize, get: G, labels: Option<usize>, mut f: F)
    where
        G: Fn(usize) -> (u64, &'t Tuple),
        F: FnMut(u64, &Valuation),
    {
        if len == 0 {
            return;
        }
        let stride = {
            let g = &get;
            self.stage
                .prefilter_slice(&self.pcea, (0..len).map(move |j| g(j).1), len)
        };
        self.push_slice_tail(stride, len, get, labels, &mut f);
    }

    /// The per-position back half of the batch path, shared by the
    /// private prefilter ([`push_slice_impl`](Self::push_slice_impl))
    /// and the runtime's shared prefilter
    /// ([`push_slice_selected_shared`](Self::push_slice_selected_shared)):
    /// fire, index, enumerate per position, then the amortized GC check
    /// at the batch boundary. Identical machinery regardless of how the
    /// mask was filled.
    fn push_slice_tail<'t, G, F>(
        &mut self,
        stride: usize,
        len: usize,
        get: G,
        labels: Option<usize>,
        f: &mut F,
    ) where
        G: Fn(usize) -> (u64, &'t Tuple),
        F: FnMut(u64, &Valuation),
    {
        // Hoist the window-policy dispatch: count windows are a pure
        // function of the position; time windows must consult each
        // tuple's timestamp, so they keep the per-tuple clock update.
        let count_w = self.clock.count_window();
        for j in 0..len {
            let (i, t) = get(j);
            assert!(
                i >= self.next_pos,
                "positions must increase: got {i}, expected at least {}",
                self.next_pos
            );
            self.next_pos = i + 1;
            self.stats.positions += 1;
            let lo = match count_w {
                Some(w) => i.saturating_sub(w),
                None => self.clock.observe(i, t),
            };
            self.current_lo = lo;
            self.stage.begin_position();
            self.stage.fire_transitions_masked(
                &self.pcea,
                &mut self.ds,
                t,
                i,
                lo,
                &mut self.stats,
                j,
                stride,
            );
            self.stage
                .update_indices(&self.pcea, &mut self.ds, t, lo, &mut self.stats);
            self.since_gc += 1;
            if let Some(n_labels) = labels {
                for q in self.pcea.finals() {
                    for &n in self.stage.nodes_at(q.index()) {
                        enumerate::for_each_valuation_from(
                            &self.ds,
                            n,
                            lo,
                            n_labels,
                            &mut |v: &Valuation| f(i, v),
                        );
                    }
                }
            }
        }
        // Amortized GC: the cadence check runs once per batch. Collection
        // is transparent to outputs, so deferring it within the batch
        // only lets the arena overshoot by at most one batch.
        let gc_every = if self.gc_every == 0 {
            self.clock.default_gc_every()
        } else {
            self.gc_every
        };
        if self.since_gc >= gc_every {
            self.since_gc = 0;
            self.stats.collections += 1;
            self.stage.collect_garbage(&mut self.ds, self.current_lo);
        }
    }

    /// Batch update: push a whole slice at consecutive positions,
    /// calling `f(position, valuation)` for each new output.
    ///
    /// Outputs are bit-identical to pushing the tuples one at a time —
    /// enumeration still happens at every position — but the fire stage
    /// is vectorized across the slice: unary predicates are pre-filtered
    /// into a bitmask, per-position bookkeeping is hoisted into reusable
    /// scratch, and the GC cadence check is amortized to the batch
    /// boundary. See the module docs for the exactness argument.
    pub fn push_slice_for_each<F: FnMut(u64, &Valuation)>(&mut self, batch: &[Tuple], f: F) {
        let start = self.next_pos;
        let labels = Some(self.pcea.num_labels());
        self.push_slice_impl(batch.len(), |j| (start + j as u64, &batch[j]), labels, f);
    }

    /// Push a whole slice and collect the new outputs as
    /// `(position, valuation)` pairs.
    pub fn push_slice_collect(&mut self, batch: &[Tuple]) -> Vec<(u64, Valuation)> {
        let mut out = Vec::new();
        self.push_slice_for_each(batch, |i, v| out.push((i, v.clone())));
        out
    }

    /// Push a whole slice and count the new outputs without
    /// materializing them.
    pub fn push_slice_count(&mut self, batch: &[Tuple]) -> usize {
        let start = self.next_pos;
        let mut n = 0usize;
        self.push_slice_impl(
            batch.len(),
            |j| (start + j as u64, &batch[j]),
            Some(0),
            |_, _| n += 1,
        );
        n
    }

    /// Batched [`push_at`](Self::push_at) for the runtime shard workers:
    /// evaluate the stamped tuples selected by `sel` (indices into
    /// `tuples`, in increasing position order), with the unary
    /// prefilter served by the shard's shared [`PredicateCache`]
    /// instead of evaluated privately: `slots` maps each transition of
    /// this query's automaton to its interned predicate slot, and the
    /// mask is gathered from the cache's pool
    /// ([`FireStage::prefilter_shared`](crate::fire)). `enumerate`
    /// gates output enumeration — a shard skips it when no subscriber
    /// listens. Everything after the mask — firing, indexing,
    /// enumeration, GC — is the *same* code as the private
    /// single-query path, and the mask bits are the same `matches()`
    /// outcomes, so outputs are bit-identical.
    ///
    /// `timers`, when given, splits the call's wall time into the
    /// shared-prefilter phase and the fire/index/enumerate tail — the
    /// shard worker passes its stage histograms; timing is two `Instant`
    /// reads per *batch*, not per tuple.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_slice_selected_shared<F: FnMut(u64, &Valuation)>(
        &mut self,
        tuples: &[(u64, Tuple)],
        sel: &[u32],
        slots: &[u32],
        cache: &mut crate::shared::PredicateCache,
        enumerate: bool,
        timers: Option<(&cer_obs::Histogram, &cer_obs::Histogram)>,
        mut f: F,
    ) {
        if sel.is_empty() {
            return;
        }
        let prefilter_at = timers.map(|_| std::time::Instant::now());
        let stride = self
            .stage
            .prefilter_shared(&self.pcea, cache, slots, sel, tuples);
        let tail_at = std::time::Instant::now();
        if let (Some((prefilter, _)), Some(at)) = (timers, prefilter_at) {
            prefilter.record_duration(tail_at.saturating_duration_since(at));
        }
        let labels = if enumerate {
            Some(self.pcea.num_labels())
        } else {
            None
        };
        self.push_slice_tail(
            stride,
            sel.len(),
            |k| {
                let (i, t) = &tuples[sel[k] as usize];
                (*i, t)
            },
            labels,
            &mut f,
        );
        if let Some((_, tail)) = timers {
            tail.record_duration(tail_at.elapsed());
        }
    }

    /// Checkpoint encoding of every cross-position piece of this
    /// evaluator: the window clock, position cursors, engine counters,
    /// the `DS_w` arena and the look-up table `H`. The per-position
    /// `N_p` lists and all scratch are excluded — they are only
    /// meaningful *within* a position, and a snapshot is always taken
    /// at a position boundary (see [`crate::checkpoint`]).
    ///
    /// Runs the copying collector first so the snapshot carries only
    /// state reachable from live `H` entries.
    pub(crate) fn snapshot_bytes(&mut self) -> Result<Vec<u8>, cer_common::wire::WireError> {
        self.stats.collections += 1;
        self.since_gc = 0;
        self.stage.collect_garbage(&mut self.ds, self.current_lo);
        let mut w = cer_common::wire::WireWriter::new();
        self.clock.encode(&mut w)?;
        w.put_u64(self.next_pos);
        w.put_u64(self.current_lo);
        w.put_u64(self.gc_every);
        w.put_u64(self.since_gc);
        w.put_u64(self.stats.positions);
        w.put_u64(self.stats.extends);
        w.put_u64(self.stats.unions);
        w.put_u64(self.stats.collections);
        self.ds.encode(&mut w)?;
        self.stage.encode(&mut w)?;
        Ok(w.into_bytes())
    }

    /// Rebuild an evaluator from [`snapshot_bytes`](Self::snapshot_bytes)
    /// output and the (separately serialized) automaton.
    pub(crate) fn from_snapshot_bytes(
        pcea: Pcea,
        bytes: &[u8],
    ) -> Result<Self, cer_common::wire::WireError> {
        let mut r = cer_common::wire::WireReader::new(bytes);
        let clock = WindowClock::decode(&mut r)?;
        let next_pos = r.get_u64()?;
        let current_lo = r.get_u64()?;
        let gc_every = r.get_u64()?;
        let since_gc = r.get_u64()?;
        let mut stats = EngineStats {
            positions: r.get_u64()?,
            extends: r.get_u64()?,
            unions: r.get_u64()?,
            ..EngineStats::default()
        };
        stats.collections = r.get_u64()?;
        let ds = crate::ds::EnumStructure::decode(&mut r)?;
        let stage = FireStage::decode(&mut r, pcea.num_states(), ds.len())?;
        if !r.is_exhausted() {
            return Err(cer_common::wire::WireError::Corrupt(
                "trailing bytes after evaluator state",
            ));
        }
        Ok(StreamingEvaluator {
            pcea,
            clock,
            ds,
            stage,
            next_pos,
            current_lo,
            gc_every,
            since_gc,
            stats,
        })
    }

    /// Merge another shard replica of the *same* query into this
    /// evaluator (restore-time shard-count change,
    /// [`crate::checkpoint`]): arenas concatenate with remapped ids,
    /// `H` tables union (replica key sets are disjoint under sound key
    /// partitioning), window clocks interleave, and counters sum.
    pub(crate) fn absorb_replica(&mut self, other: StreamingEvaluator) {
        let offset = self.ds.absorb(other.ds);
        self.stage
            .absorb(other.stage, offset, &mut self.ds, &mut self.stats);
        self.clock.absorb(other.clock);
        self.next_pos = self.next_pos.max(other.next_pos);
        self.current_lo = self.current_lo.max(other.current_lo);
        self.since_gc = self.since_gc.max(other.since_gc);
        self.stats.positions += other.stats.positions;
        self.stats.extends += other.stats.extends;
        self.stats.unions += other.stats.unions;
        self.stats.collections += other.stats.collections;
    }

    /// Restrict this evaluator to the key slice shard `shard` owns
    /// under a `(pos, n_shards)` key partition, dropping every run
    /// whose join key hashes elsewhere.
    ///
    /// Called on each home's copy when merged `ByKey` state is
    /// redistributed (restore into a different shard count,
    /// `Runtime::rescale`). The dropped state is exactly the slice the
    /// tuple router never sends this shard, so outputs are unchanged —
    /// but the pruning is what keeps replicas *disjoint*, which
    /// [`absorb_replica`](Self::absorb_replica) relies on: merging
    /// un-pruned full copies would duplicate every in-window run on the
    /// next rescale or snapshot.
    pub(crate) fn retain_key_shard(&mut self, pos: usize, shard: usize, n_shards: usize) {
        self.stats.collections += 1;
        self.since_gc = 0;
        self.stage.retain_key_shard(
            &self.pcea,
            pos,
            shard,
            n_shards,
            &cer_common::hash::FxBuildHasher::default(),
            &mut self.ds,
        );
    }

    /// Zero the counters of a restore-time replica clone so per-query
    /// stats (summed across shards) are not multiplied by the shard
    /// count when merged state is replicated.
    pub(crate) fn clear_replica_stats(&mut self) {
        self.stats = EngineStats::default();
        self.clock.reset_regressions();
    }

    /// Set the position the next pushed tuple must occupy (restore-time
    /// alignment with the runtime's resumed sequencer position).
    pub(crate) fn set_resume_position(&mut self, pos: u64) {
        assert!(pos >= self.next_pos, "cannot resume behind captured state");
        self.next_pos = pos;
    }

    /// Hand this evaluator's accumulated state to a recompiled query
    /// (`Runtime::replace` hot-swap). The caller must have verified
    /// [`Pcea::skeleton_compatible`]; the window handoff goes through
    /// [`WindowClock::migrate`], which returns `None` — surfaced here —
    /// when the window *kind* changes (count vs. time, or a moved
    /// timestamp attribute). Within a kind, any resize is accepted:
    /// widening cannot resurrect runs already pruned under the old
    /// bound (it converges within one old window), narrowing re-prunes
    /// lazily at the next position.
    pub(crate) fn replace_automaton(
        self,
        pcea: Pcea,
        window: WindowPolicy,
        gc_every: u64,
    ) -> Option<Self> {
        debug_assert!(self.pcea.skeleton_compatible(&pcea));
        let clock = self.clock.migrate(window)?;
        Some(StreamingEvaluator {
            pcea,
            clock,
            gc_every,
            ..self
        })
    }

    /// Enumerate this position's new outputs (`⟦P⟧^w_i(S)`), calling `f`
    /// once per valuation. Must follow [`push`](Self::push) for the same
    /// position.
    pub fn for_each_output<F: FnMut(&Valuation)>(&self, mut f: F) {
        for q in self.pcea.finals() {
            for &n in self.stage.nodes_at(q.index()) {
                enumerate::for_each_valuation_from(
                    &self.ds,
                    n,
                    self.current_lo,
                    self.pcea.num_labels(),
                    &mut f,
                );
            }
        }
    }

    /// Push a tuple and collect the new outputs.
    pub fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        self.push(t);
        let mut out = Vec::new();
        self.for_each_output(|v| out.push(v.clone()));
        out
    }

    /// Push a tuple and count the new outputs without materializing them.
    pub fn push_count(&mut self, t: &Tuple) -> usize {
        self.push(t);
        self.count_outputs()
    }

    /// Count this position's new outputs without materializing them.
    fn count_outputs(&self) -> usize {
        let mut n = 0usize;
        for q in self.pcea.finals() {
            for &node in self.stage.nodes_at(q.index()) {
                enumerate::for_each_valuation_from(&self.ds, node, self.current_lo, 0, |_| {
                    n += 1;
                });
            }
        }
        n
    }

    /// Push a tuple, calling `f` for each new output.
    pub fn push_for_each<F: FnMut(&Valuation)>(&mut self, t: &Tuple, f: F) {
        self.push(t);
        self.for_each_output(f);
    }
}

impl Evaluator for StreamingEvaluator {
    fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation> {
        StreamingEvaluator::push_collect(self, t)
    }

    fn push_count(&mut self, t: &Tuple) -> usize {
        StreamingEvaluator::push_count(self, t)
    }

    fn push_for_each(&mut self, t: &Tuple, f: &mut dyn FnMut(&Valuation)) {
        StreamingEvaluator::push_for_each(self, t, f);
    }

    fn push_slice(&mut self, batch: &[Tuple], f: &mut dyn FnMut(usize, &Valuation)) {
        let start = self.next_pos;
        self.push_slice_for_each(batch, |i, v| f((i - start) as usize, v));
    }
}

/// Convenience driver: evaluate a PCEA over a finite stream, returning
/// `(position, outputs)` for every position with at least one output.
pub fn run_to_end(pcea: Pcea, w: u64, stream: &[Tuple]) -> Vec<(u64, Vec<Valuation>)> {
    let mut engine = StreamingEvaluator::new(pcea, w);
    let mut out = Vec::new();
    for t in stream {
        let vs = engine.push_collect(t);
        if !vs.is_empty() {
            out.push((engine.next_position() - 1, vs));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::ccea::paper_c0;
    use cer_automata::pcea::paper_p0;
    use cer_automata::reference::ReferenceEval;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    /// Differential harness: engine output == reference oracle at every
    /// position and for several window sizes.
    fn check_against_reference(pcea: &Pcea, stream: &[Tuple], windows: &[u64]) {
        let reference = ReferenceEval::new(pcea, stream);
        for &w in windows {
            let mut engine = StreamingEvaluator::new(pcea.clone(), w);
            for (n, t) in stream.iter().enumerate() {
                let mut got = engine.push_collect(t);
                got.sort();
                got.dedup();
                let want = reference.windowed_outputs_at(n, w);
                assert_eq!(got, want, "w={w}, position {n}");
            }
        }
    }

    #[test]
    fn example_3_3_on_the_engine() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        check_against_reference(&paper_p0(r, s, t), &stream, &[0, 2, 4, 5, 100]);
    }

    #[test]
    fn ccea_embedding_on_the_engine() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        check_against_reference(&paper_c0(r, s, t).to_pcea(), &stream, &[1, 3, 100]);
    }

    #[test]
    fn outputs_fire_exactly_at_completion() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), 100);
        let counts: Vec<usize> = stream.iter().map(|t| engine.push_count(t)).collect();
        assert_eq!(counts, vec![0, 0, 0, 0, 0, 2, 0, 0]);
    }

    #[test]
    fn window_cuts_long_spans() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        // Span of ντ0 is 4, of ντ1 is 5.
        for (w, expect) in [(5u64, 2usize), (4, 1), (3, 0)] {
            let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), w);
            let total: usize = stream.iter().map(|t| engine.push_count(t)).sum();
            assert_eq!(total, expect, "w={w}");
        }
    }

    #[test]
    fn long_stream_with_gc_matches_no_gc() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (_, r, s, t) = Schema::sigma0();
        let mut gen = Sigma0Gen::new(r, s, t, 42).with_domains(4, 4);
        let stream: Vec<Tuple> = (0..400).map(|_| gen.next_tuple().unwrap()).collect();
        let pcea = paper_p0(r, s, t);
        let w = 16;

        let mut eager = StreamingEvaluator::new(pcea.clone(), w);
        eager.set_gc_every(7);
        let mut lazy = StreamingEvaluator::new(pcea, w);
        lazy.set_gc_every(1_000_000);
        for tu in &stream {
            let mut a = eager.push_collect(tu);
            let mut b = lazy.push_collect(tu);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
        assert!(eager.stats().collections > 0);
        assert!(eager.stats().arena_nodes < lazy.stats().arena_nodes);
    }

    #[test]
    fn memory_stays_bounded_under_gc() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (_, r, s, t) = Schema::sigma0();
        let mut gen = Sigma0Gen::new(r, s, t, 7).with_domains(8, 8);
        let pcea = paper_p0(r, s, t);
        let w = 32;
        let mut engine = StreamingEvaluator::new(pcea, w);
        engine.set_gc_every(w);
        let mut peak = 0usize;
        for _ in 0..2000 {
            let tu = gen.next_tuple().unwrap();
            engine.push(&tu);
            peak = peak.max(engine.stats().arena_nodes);
        }
        // Live state is O(|∆| · w); allow a generous constant.
        assert!(peak < 64 * (w as usize) * 3, "arena peaked at {peak} nodes");
    }

    #[test]
    fn stats_track_work() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), 100);
        for tu in &stream {
            engine.push(tu);
        }
        let st = engine.stats();
        assert_eq!(st.positions, 8);
        // 6 initial fires (the S and T tuples) + 1 join fire (R(2,11)).
        assert_eq!(st.extends, 7);
        assert!(st.index_entries > 0);
    }

    #[test]
    fn run_to_end_reports_positions() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let results = run_to_end(paper_p0(r, s, t), 100, &stream);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 5);
        assert_eq!(results[0].1.len(), 2);
    }

    #[test]
    fn push_at_skips_positions_but_keeps_global_windows() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        // Feed the same tuples at their global positions, with gaps, and
        // compare to the contiguous run.
        let mut dense = StreamingEvaluator::new(paper_p0(r, s, t), 5);
        let dense_out: Vec<_> = stream.iter().map(|tu| dense.push_collect(tu)).collect();
        let mut gapped = StreamingEvaluator::new(paper_p0(r, s, t), 5);
        for (n, tu) in stream.iter().enumerate() {
            gapped.push_at(tu, n as u64);
            let mut got = Vec::new();
            gapped.for_each_output(|v| got.push(v.clone()));
            assert_eq!(got, dense_out[n], "position {n}");
        }
        // A sparse subsequence at global positions: window w=5 measured
        // in *global* positions, so the span 0..5 of ντ1 still fits.
        let mut sparse = StreamingEvaluator::new(paper_p0(r, s, t), 5);
        let picks = [0usize, 1, 3, 5];
        let mut total = 0usize;
        for &n in &picks {
            sparse.push_at(&stream[n], n as u64);
            sparse.for_each_output(|_| total += 1);
        }
        assert_eq!(total, 2, "both matches complete at global position 5");
    }

    #[test]
    fn push_slice_matches_per_tuple_across_chunkings() {
        use cer_common::gen::Sigma0Gen;
        use cer_common::Stream;
        let (_, r, s, t) = Schema::sigma0();
        let mut gen = Sigma0Gen::new(r, s, t, 11).with_domains(3, 3);
        let stream: Vec<Tuple> = (0..300).map(|_| gen.next_tuple().unwrap()).collect();
        let pcea = paper_p0(r, s, t);
        let w = 12;

        let mut scalar = StreamingEvaluator::new(pcea.clone(), w);
        scalar.set_gc_every(5);
        let mut want = Vec::new();
        for (n, tu) in stream.iter().enumerate() {
            for v in scalar.push_collect(tu) {
                want.push((n as u64, v));
            }
        }

        // Chunk size 1 exercises the batch path's degenerate case; 7 is
        // deliberately coprime with the GC cadence; 300 is one slice.
        for chunk in [1usize, 7, 64, 300] {
            let mut batched = StreamingEvaluator::new(pcea.clone(), w);
            batched.set_gc_every(5);
            let mut got = Vec::new();
            for slice in stream.chunks(chunk) {
                got.extend(batched.push_slice_collect(slice));
            }
            assert_eq!(got, want, "chunk={chunk}");
            assert_eq!(batched.next_position(), stream.len() as u64);
            // Amortized GC still runs (at batch boundaries).
            assert!(batched.stats().collections > 0, "chunk={chunk}");
        }

        // Counting without materializing agrees too.
        let mut counter = StreamingEvaluator::new(pcea, w);
        counter.set_gc_every(5);
        let total: usize = stream.chunks(13).map(|c| counter.push_slice_count(c)).sum();
        assert_eq!(total, want.len());
    }

    #[test]
    fn push_slice_handles_empty_and_time_windows() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        // Timestamp = attribute 0 is not monotone in σ0; use a wide
        // duration so clamping stays irrelevant, and compare paths.
        let mut scalar = StreamingEvaluator::new_timed(paper_p0(r, s, t), 1_000, 0);
        let mut batched = StreamingEvaluator::new_timed(paper_p0(r, s, t), 1_000, 0);
        batched.push_slice_for_each(&[], |_, _| panic!("no outputs from an empty slice"));
        let mut want = Vec::new();
        for tu in &stream {
            want.extend(scalar.push_collect(tu));
        }
        let got = batched.push_slice_collect(&stream);
        assert_eq!(got.len(), want.len());
        assert_eq!(got.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>(), want);
    }

    #[test]
    #[should_panic(expected = "positions must increase")]
    fn push_at_rejects_rewinds() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let mut engine = StreamingEvaluator::new(paper_p0(r, s, t), 5);
        engine.push_at(&stream[0], 3);
        engine.push_at(&stream[1], 3);
    }
}

//! The unified, layered error type of the engine's public API.
//!
//! Before this module existed the workspace leaked three unrelated
//! error enums to callers — [`RuntimeError`] from the query registry,
//! [`SnapshotError`] from checkpointing, [`CommonError`] from the data
//! model — plus [`WireError`] underneath both and [`IngestError`] from
//! the pipeline. A remote client cannot pattern-match five enums across
//! four crates, so the serving layer forced the redesign: one
//! [`Error`] that *wraps* the per-subsystem enums (they stay the
//! precise, layer-local types returned by the APIs that raise them) and
//! flattens every variant onto a stable numeric [`ErrorCode`] that a
//! server can serialize and a client of any language can dispatch on.
//!
//! The layering rule: subsystem APIs keep returning their own enums
//! (`Runtime::register` returns [`RuntimeError`], `Snapshot::from_bytes`
//! returns [`SnapshotError`], …), every subsystem enum converts into
//! [`Error`] via `From`, and `Error::code()` is total — every error the
//! workspace can raise has exactly one code, and every code round-trips
//! through [`ErrorCode::from_u16`]. Codes are append-only: a released
//! code's meaning never changes, new failure modes take new codes.
//!
//! The `Parse`, `Compile` and `Protocol` variants carry boundary errors
//! that originate *above* this crate (the HCQ/pattern front-end parsers
//! and the TCP protocol layer, which cannot appear in `cer-core`'s
//! dependency graph) as plain messages, so the serving layer can funnel
//! every failure it meets through the same type.

use crate::checkpoint::SnapshotError;
use crate::durability::DurabilityError;
use crate::ingest::IngestError;
use crate::runtime::RuntimeError;
use cer_common::wire::WireError;
use cer_common::CommonError;
use std::fmt;

/// The stable numeric discriminant a server serializes for every error
/// the engine can raise. Explicit values, append-only; grouped by layer
/// in steps of 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`CommonError::DuplicateRelation`].
    DuplicateRelation = 1,
    /// [`CommonError::ArityMismatch`].
    ArityMismatch = 2,
    /// [`CommonError::UnknownRelation`].
    UnknownRelation = 3,
    /// [`WireError::Unsupported`] — a value that cannot serialize.
    WireUnsupported = 10,
    /// [`WireError::Truncated`] — bytes ran out mid-value.
    WireTruncated = 11,
    /// [`WireError::Corrupt`] — a tag or length the decoder rejects.
    WireCorrupt = 12,
    /// [`RuntimeError::KeyPartitionUnsound`].
    KeyPartitionUnsound = 20,
    /// [`RuntimeError::UnknownQuery`].
    UnknownQuery = 21,
    /// [`RuntimeError::ReplaceIncompatible`].
    ReplaceIncompatible = 22,
    /// [`RuntimeError::InvalidShardCount`].
    InvalidShardCount = 23,
    /// [`IngestError::RuntimeClosed`].
    RuntimeClosed = 30,
    /// [`SnapshotError::NotASnapshot`].
    NotASnapshot = 40,
    /// [`SnapshotError::UnknownVersion`].
    UnknownSnapshotVersion = 41,
    /// [`SnapshotError::ShardWorkerDied`].
    ShardWorkerDied = 42,
    /// [`SnapshotError::BadDefinition`].
    BadDefinition = 43,
    /// A front-end (HCQ or pattern language) rejected the query text.
    Parse = 50,
    /// A front-end compiler rejected the parsed query (not
    /// hierarchical, too many atoms, …).
    Compile = 51,
    /// A serving-layer request was malformed or violated the protocol.
    Protocol = 60,
    /// [`DurabilityError::WalCorrupt`] — an on-disk durability
    /// structure failed validation.
    WalCorrupt = 70,
    /// [`DurabilityError::WalIo`] — an I/O operation on a durability
    /// file failed.
    WalIo = 71,
    /// [`DurabilityError::ManifestMissing`] — `recover()` found no
    /// durable artifacts.
    ManifestMissing = 72,
    /// [`DurabilityError::RecoverMismatch`] — WAL replay diverged from
    /// the log.
    RecoverMismatch = 73,
    /// [`DurabilityError::NotDurable`] — a durability operation on a
    /// runtime without a data directory.
    NotDurable = 74,
    /// [`RuntimeError::UnserializableQuery`] — a durable runtime
    /// rejected a query whose predicates cannot be logged.
    UnserializableQuery = 75,
}

impl ErrorCode {
    /// Every defined code, in numeric order — the round-trip surface
    /// for protocol tests.
    pub const ALL: &'static [ErrorCode] = &[
        ErrorCode::DuplicateRelation,
        ErrorCode::ArityMismatch,
        ErrorCode::UnknownRelation,
        ErrorCode::WireUnsupported,
        ErrorCode::WireTruncated,
        ErrorCode::WireCorrupt,
        ErrorCode::KeyPartitionUnsound,
        ErrorCode::UnknownQuery,
        ErrorCode::ReplaceIncompatible,
        ErrorCode::InvalidShardCount,
        ErrorCode::RuntimeClosed,
        ErrorCode::NotASnapshot,
        ErrorCode::UnknownSnapshotVersion,
        ErrorCode::ShardWorkerDied,
        ErrorCode::BadDefinition,
        ErrorCode::Parse,
        ErrorCode::Compile,
        ErrorCode::Protocol,
        ErrorCode::WalCorrupt,
        ErrorCode::WalIo,
        ErrorCode::ManifestMissing,
        ErrorCode::RecoverMismatch,
        ErrorCode::NotDurable,
        ErrorCode::UnserializableQuery,
    ];

    /// The wire value.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decode a wire value; `None` for codes this release does not
    /// know (a newer server, or corrupt bytes).
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        ErrorCode::ALL.iter().copied().find(|c| c.as_u16() == v)
    }

    /// The stable snake_case name, e.g. for text expositions.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::DuplicateRelation => "duplicate_relation",
            ErrorCode::ArityMismatch => "arity_mismatch",
            ErrorCode::UnknownRelation => "unknown_relation",
            ErrorCode::WireUnsupported => "wire_unsupported",
            ErrorCode::WireTruncated => "wire_truncated",
            ErrorCode::WireCorrupt => "wire_corrupt",
            ErrorCode::KeyPartitionUnsound => "key_partition_unsound",
            ErrorCode::UnknownQuery => "unknown_query",
            ErrorCode::ReplaceIncompatible => "replace_incompatible",
            ErrorCode::InvalidShardCount => "invalid_shard_count",
            ErrorCode::RuntimeClosed => "runtime_closed",
            ErrorCode::NotASnapshot => "not_a_snapshot",
            ErrorCode::UnknownSnapshotVersion => "unknown_snapshot_version",
            ErrorCode::ShardWorkerDied => "shard_worker_died",
            ErrorCode::BadDefinition => "bad_definition",
            ErrorCode::Parse => "parse",
            ErrorCode::Compile => "compile",
            ErrorCode::Protocol => "protocol",
            ErrorCode::WalCorrupt => "wal_corrupt",
            ErrorCode::WalIo => "wal_io",
            ErrorCode::ManifestMissing => "manifest_missing",
            ErrorCode::RecoverMismatch => "recover_mismatch",
            ErrorCode::NotDurable => "not_durable",
            ErrorCode::UnserializableQuery => "unserializable_query",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.as_u16())
    }
}

/// The unified error of the engine's public surface: every subsystem
/// enum wraps into it via `From`, and [`Error::code`] maps every value
/// onto a stable [`ErrorCode`] the serving layer serializes. See the
/// [module docs](self) for the layering rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// Data-model layer ([`cer_common`]): schemas and tuples.
    Data(CommonError),
    /// Wire-codec layer: encode/decode failures.
    Wire(WireError),
    /// Query registry and hot-swap layer.
    Runtime(RuntimeError),
    /// Ingestion pipeline layer.
    Ingest(IngestError),
    /// Checkpoint/restore layer.
    Snapshot(SnapshotError),
    /// Durability layer (WAL, disk checkpoints, recovery).
    Durability(DurabilityError),
    /// A front-end parser rejected query text (raised above this crate;
    /// carried as a message).
    Parse(String),
    /// A front-end compiler rejected a parsed query.
    Compile(String),
    /// A serving-layer protocol violation.
    Protocol(String),
}

impl Error {
    /// The stable code for this error. Total: every variant (and every
    /// nested subsystem variant) has exactly one code.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Data(e) => match e {
                CommonError::DuplicateRelation { .. } => ErrorCode::DuplicateRelation,
                CommonError::ArityMismatch { .. } => ErrorCode::ArityMismatch,
                CommonError::UnknownRelation { .. } => ErrorCode::UnknownRelation,
            },
            Error::Wire(e) => wire_code(e),
            Error::Runtime(e) => match e {
                RuntimeError::KeyPartitionUnsound { .. } => ErrorCode::KeyPartitionUnsound,
                RuntimeError::UnknownQuery { .. } => ErrorCode::UnknownQuery,
                RuntimeError::ReplaceIncompatible { .. } => ErrorCode::ReplaceIncompatible,
                RuntimeError::InvalidShardCount { .. } => ErrorCode::InvalidShardCount,
                RuntimeError::UnserializableQuery { .. } => ErrorCode::UnserializableQuery,
            },
            Error::Ingest(IngestError::RuntimeClosed) => ErrorCode::RuntimeClosed,
            Error::Snapshot(e) => match e {
                // Layered: a snapshot failure caused by the wire codec
                // reports the codec's code, not a blanket one.
                SnapshotError::Wire(w) => wire_code(w),
                SnapshotError::NotASnapshot => ErrorCode::NotASnapshot,
                SnapshotError::UnknownVersion(_) => ErrorCode::UnknownSnapshotVersion,
                SnapshotError::ShardWorkerDied => ErrorCode::ShardWorkerDied,
                SnapshotError::BadDefinition(_) => ErrorCode::BadDefinition,
            },
            Error::Durability(e) => match e {
                DurabilityError::WalCorrupt(_) => ErrorCode::WalCorrupt,
                DurabilityError::WalIo { .. } => ErrorCode::WalIo,
                DurabilityError::ManifestMissing => ErrorCode::ManifestMissing,
                DurabilityError::RecoverMismatch(_) => ErrorCode::RecoverMismatch,
                DurabilityError::NotDurable => ErrorCode::NotDurable,
                // Layered: a checkpoint failure inside the durability
                // layer keeps the snapshot (or wire) code.
                DurabilityError::Snapshot(s) => Error::Snapshot(s.clone()).code(),
            },
            Error::Parse(_) => ErrorCode::Parse,
            Error::Compile(_) => ErrorCode::Compile,
            Error::Protocol(_) => ErrorCode::Protocol,
        }
    }
}

fn wire_code(e: &WireError) -> ErrorCode {
    match e {
        WireError::Unsupported(_) => ErrorCode::WireUnsupported,
        WireError::Truncated => ErrorCode::WireTruncated,
        WireError::Corrupt(_) => ErrorCode::WireCorrupt,
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Data(e) => write!(f, "data error: {e}"),
            Error::Wire(e) => write!(f, "wire error: {e}"),
            Error::Runtime(e) => write!(f, "runtime error: {e}"),
            Error::Ingest(e) => write!(f, "ingest error: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::Durability(e) => write!(f, "durability error: {e}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Compile(msg) => write!(f, "compile error: {msg}"),
            Error::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl From<CommonError> for Error {
    fn from(e: CommonError) -> Self {
        Error::Data(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        Error::Ingest(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<DurabilityError> for Error {
    fn from(e: DurabilityError) -> Self {
        Error::Durability(e)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Data(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Ingest(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Durability(e) => Some(e),
            Error::Parse(_) | Error::Compile(_) | Error::Protocol(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &code in ErrorCode::ALL {
            assert!(seen.insert(code.as_u16()), "duplicate code {code}");
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(9999), None);
        assert_eq!(ErrorCode::from_u16(0), None);
    }

    #[test]
    fn every_subsystem_error_has_a_code() {
        let cases: Vec<(Error, ErrorCode)> = vec![
            (
                CommonError::UnknownRelation { name: "X".into() }.into(),
                ErrorCode::UnknownRelation,
            ),
            (WireError::Truncated.into(), ErrorCode::WireTruncated),
            (
                RuntimeError::UnknownQuery {
                    id: crate::runtime::QueryId(3),
                }
                .into(),
                ErrorCode::UnknownQuery,
            ),
            (IngestError::RuntimeClosed.into(), ErrorCode::RuntimeClosed),
            (
                RuntimeError::InvalidShardCount { shards: 0 }.into(),
                ErrorCode::InvalidShardCount,
            ),
            (
                SnapshotError::UnknownVersion(9).into(),
                ErrorCode::UnknownSnapshotVersion,
            ),
            (
                // Layering: a wire error inside a snapshot error keeps
                // the codec's code.
                SnapshotError::Wire(WireError::Corrupt("x")).into(),
                ErrorCode::WireCorrupt,
            ),
            (Error::Parse("bad".into()), ErrorCode::Parse),
            (Error::Compile("bad".into()), ErrorCode::Compile),
            (Error::Protocol("bad".into()), ErrorCode::Protocol),
            (
                DurabilityError::WalCorrupt("bad magic").into(),
                ErrorCode::WalCorrupt,
            ),
            (
                DurabilityError::WalIo {
                    op: "append",
                    message: "disk full".into(),
                }
                .into(),
                ErrorCode::WalIo,
            ),
            (
                DurabilityError::ManifestMissing.into(),
                ErrorCode::ManifestMissing,
            ),
            (
                DurabilityError::RecoverMismatch("seq gap".into()).into(),
                ErrorCode::RecoverMismatch,
            ),
            (DurabilityError::NotDurable.into(), ErrorCode::NotDurable),
            (
                // Layering: a snapshot error inside a durability error
                // keeps the snapshot layer's code.
                DurabilityError::Snapshot(SnapshotError::NotASnapshot).into(),
                ErrorCode::NotASnapshot,
            ),
            (
                RuntimeError::UnserializableQuery { query: "q".into() }.into(),
                ErrorCode::UnserializableQuery,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code, "{err}");
        }
    }

    #[test]
    fn display_mentions_the_cause() {
        let e: Error = RuntimeError::UnknownQuery {
            id: crate::runtime::QueryId(7),
        }
        .into();
        let text = e.to_string();
        assert!(text.contains("not registered"), "{text}");
    }
}

//! Checkpoint/restore: epoch-consistent snapshots of a live
//! [`Runtime`](crate::runtime::Runtime) and query hot-swap by state
//! handoff.
//!
//! A production runtime accumulates hours of window state; losing it on
//! restart replays nothing (the stream is gone) and forgets every
//! partial match. This module gives the runtime three capabilities:
//!
//! * [`Runtime::snapshot`](crate::runtime::Runtime::snapshot) — capture
//!   every registered query's live evaluator state at one consistent
//!   stream position, **without stopping producers**;
//! * [`Runtime::restore`](crate::runtime::Runtime::restore) — rebuild a
//!   runtime from a snapshot, possibly with a *different* shard count
//!   or layout, and resume ingestion at the captured position;
//! * [`Runtime::replace`](crate::runtime::Runtime::replace) — hand one
//!   query's accumulated state to a recompiled query atomically in the
//!   stream order (hot-swap).
//!
//! # The epoch block, and why the snapshot is consistent
//!
//! The striped ingest sequencer ([`crate::ingest`]) assigns every
//! producer batch a contiguous *position block*, and each shard's
//! reorder stage releases blocks to its worker in block order — which
//! is position order. Control traffic (barriers, registration) rides
//! the same order as zero-width blocks.
//!
//! `snapshot()` reserves one zero-width **epoch block** at position
//! `P = next_pos` and stages a `Snapshot` fence into every shard's
//! reorder buffer under that block id, all inside a single sequencer
//! lock acquisition. Consistency is then inherited from the sequencer's
//! ordering invariants:
//!
//! 1. Every block reserved *before* the epoch block holds positions
//!    `< P`, and the reorder watermark cannot pass a
//!    reserved-but-unstaged block — so each shard worker processes
//!    every tuple stamped `< P` *before* it sees the fence.
//! 2. Every block reserved *after* holds positions `≥ P` and is
//!    released *behind* the fence — so no such tuple is evaluated
//!    before the shard serializes.
//! 3. Each worker serializes its queries the moment it dequeues the
//!    fence (copy-on-fence). Workers hit the fence at different wall
//!    times, but all at the same stream position `P`; shards serialize
//!    concurrently with each other and with producers, which keep
//!    reserving and staging blocks `≥ P` throughout — there is no
//!    stop-the-world, only per-shard stalls bounded by that shard's
//!    serialization time (reported in the snapshot counters of
//!    [`RuntimeStats`](crate::runtime::RuntimeStats)).
//!
//! Hence the snapshot equals the state of a runtime that ingested
//! exactly positions `0..P` and nothing else — the definition of an
//! epoch-consistent cut. Restoring it and replaying the suffix `P..`
//! therefore produces outputs multiset-identical to a run that never
//! stopped (checked differentially, with live producers, in
//! `tests/checkpoint_restore.rs`).
//!
//! # Restoring into a different shard count
//!
//! Per-query state is captured per shard replica. At restore time the
//! replicas of each query are **merged** into one evaluator — arenas
//! concatenate with remapped node ids, `H` tables union (sound key
//! partitioning makes replica key sets disjoint: the join key projects
//! the partition attribute, which determines the shard), window clocks
//! interleave by position — and each home shard of the new layout
//! receives a copy *pruned to the key slice it owns there*
//! (`StreamingEvaluator::retain_key_shard`): every `H` entry's owner is
//! recomputed from its stored join key with the router's hash, entries
//! that hash elsewhere are dropped, and the arena is compacted around
//! the survivors. The dropped state is exactly what the tuple router
//! never sends that shard, so outputs are unaffected — each future
//! tuple is evaluated by exactly one replica, against exactly the runs
//! the pre-snapshot stream accumulated. The pruning is not just a
//! memory optimization: it is what keeps replicas **disjoint**, so the
//! *next* merge — another restore, a live rescale
//! ([`Runtime::rescale`](crate::runtime::Runtime::rescale)) — cannot
//! double-count runs that two homes both held.
//!
//! Time-window streams that violate the non-decreasing-timestamp
//! contract are already shard-count-dependent (see the hazard note in
//! [`crate::window`]); restore inherits that caveat and nothing more.
//!
//! # What a snapshot contains
//!
//! A versioned header, the epoch position, and per query: its
//! definition (name, automaton, window policy, partition, GC cadence —
//! everything [`QuerySpec`] holds, so definitions compiled from the HCQ
//! or pattern-language front-ends round-trip) plus one state blob per
//! hosting shard. Retired query ids are recorded so restored ids line
//! up with pre-snapshot [`QueryId`](crate::runtime::QueryId)s.
//! Relation ids are recorded raw: a snapshot must be restored against
//! the same [`Schema`](cer_common::Schema) registration order that
//! produced it. Queries using `UnaryPredicate::Custom` closures cannot
//! be serialized and fail the snapshot up front
//! ([`WireError::Unsupported`]).
//!
//! # Example
//!
//! ```
//! use cer_core::runtime::{QuerySpec, Runtime};
//! use cer_core::window::WindowPolicy;
//! use cer_automata::pcea::paper_p0;
//! use cer_common::gen::sigma0_prefix;
//! use cer_common::Schema;
//!
//! let (_, r, s, t) = Schema::sigma0();
//! let stream = sigma0_prefix(r, s, t);
//! let mut rt = Runtime::new(2);
//! let q = rt
//!     .register(QuerySpec::new("p0", paper_p0(r, s, t), WindowPolicy::Count(100)))
//!     .unwrap();
//! rt.push_batch(&stream[..4]); // partial matches accumulate
//!
//! // Capture, serialize, restore into a different shard count.
//! let snap = rt.snapshot().unwrap();
//! let bytes = snap.to_bytes().unwrap();
//! let reloaded = cer_core::checkpoint::Snapshot::from_bytes(&bytes).unwrap();
//! let mut rt2 = Runtime::restore(&reloaded, 4).unwrap();
//! assert_eq!(rt2.next_position(), 4);
//!
//! // The suffix completes the matches the prefix started.
//! let events = rt2.push_batch(&stream[4..]);
//! assert_eq!(events.iter().filter(|e| e.query == q).count(), 2);
//! ```

use crate::runtime::{Partition, QuerySpec};
use cer_common::wire::{Wire, WireError, WireReader, WireWriter};
use std::fmt;

/// Magic bytes opening every serialized snapshot.
const MAGIC: &[u8; 8] = b"CERSNAP\0";
/// Current snapshot format version.
const VERSION: u32 = 1;

/// Why a snapshot, serialization or restore failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A value failed to encode or decode (unsupported closure
    /// predicate, truncated or corrupt bytes).
    Wire(WireError),
    /// The byte stream is not a snapshot (bad magic).
    NotASnapshot,
    /// The snapshot was written by an unknown format version.
    UnknownVersion(u32),
    /// A shard worker died while serializing its state.
    ShardWorkerDied,
    /// A restored query definition failed re-registration (e.g. its key
    /// partition no longer validates). The payload names the query.
    BadDefinition(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Wire(e) => write!(f, "snapshot wire error: {e}"),
            SnapshotError::NotASnapshot => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnknownVersion(v) => {
                write!(f, "unknown snapshot format version {v}")
            }
            SnapshotError::ShardWorkerDied => {
                write!(f, "a shard worker died during the snapshot")
            }
            SnapshotError::BadDefinition(q) => {
                write!(f, "restored query `{q}` failed re-registration")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

/// One registered query inside a [`Snapshot`]: its id, its definition
/// (absent for retired ids, which are recorded only to keep id
/// numbering aligned) and one opaque state blob per hosting shard.
#[derive(Clone)]
pub(crate) struct QueryRecord {
    pub id: u32,
    pub name: String,
    pub spec: Option<QuerySpec>,
    pub blobs: Vec<Vec<u8>>,
}

/// An epoch-consistent capture of a running
/// [`Runtime`](crate::runtime::Runtime): every registered query's
/// definition and live evaluator state as of one stream position. See
/// the [module docs](self) for the consistency argument and the
/// restore semantics.
#[derive(Clone)]
pub struct Snapshot {
    /// The epoch position `P`: state reflects exactly positions `0..P`.
    pub(crate) position: u64,
    /// Shard count of the captured runtime (informational; restore may
    /// pick any shard count).
    pub(crate) origin_shards: usize,
    /// The WAL sequence high-water at the epoch cut: every logged
    /// operation with `wal_seq` below it is reflected in this state,
    /// everything at or above is not (see [`crate::durability`]).
    /// Carried in memory for the durability layer's manifest; not part
    /// of the V1 byte format, so [`from_bytes`](Self::from_bytes)
    /// yields 0.
    pub(crate) wal_seq: u64,
    /// Per-query records in id order, retired ids included.
    pub(crate) queries: Vec<QueryRecord>,
}

impl Snapshot {
    /// The epoch position: every tuple stamped below it is reflected in
    /// the captured state, every tuple at or above it is not.
    /// [`Runtime::restore`](crate::runtime::Runtime::restore) resumes
    /// stamping here.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Shard count of the runtime that produced the snapshot.
    pub fn origin_shards(&self) -> usize {
        self.origin_shards
    }

    /// Number of live (non-retired) query definitions captured.
    pub fn num_queries(&self) -> usize {
        self.queries.iter().filter(|q| q.spec.is_some()).count()
    }

    /// The captured definitions, `(id, spec)` in id order — this is the
    /// round-trip surface for front-end-compiled queries.
    pub fn query_specs(&self) -> impl Iterator<Item = (crate::runtime::QueryId, &QuerySpec)> {
        self.queries
            .iter()
            .filter_map(|q| Some((crate::runtime::QueryId(q.id), q.spec.as_ref()?)))
    }

    /// Serialize to a self-contained byte vector (magic + version +
    /// body). Fails only when a query definition cannot be encoded
    /// (closure predicates).
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = WireWriter::new();
        for &b in MAGIC {
            w.put_u8(b);
        }
        w.put_u32(VERSION);
        w.put_u64(self.position);
        w.put_len(self.origin_shards);
        w.put_len(self.queries.len());
        for q in &self.queries {
            w.put_u32(q.id);
            w.put_str(&q.name);
            q.spec.encode(&mut w)?;
            w.put_len(q.blobs.len());
            for blob in &q.blobs {
                w.put_bytes(blob);
            }
        }
        Ok(w.into_bytes())
    }

    /// Deserialize a snapshot written by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = WireReader::new(bytes);
        for &expect in MAGIC {
            if r.get_u8().map_err(SnapshotError::Wire)? != expect {
                return Err(SnapshotError::NotASnapshot);
            }
        }
        let version = r.get_u32().map_err(SnapshotError::Wire)?;
        if version != VERSION {
            return Err(SnapshotError::UnknownVersion(version));
        }
        let position = r.get_u64().map_err(SnapshotError::Wire)?;
        let origin_shards = usize::decode(&mut r).map_err(SnapshotError::Wire)?;
        let n = r.get_len().map_err(SnapshotError::Wire)?;
        let mut queries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = r.get_u32().map_err(SnapshotError::Wire)?;
            let name = r.get_str().map_err(SnapshotError::Wire)?;
            let spec = Option::<QuerySpec>::decode(&mut r).map_err(SnapshotError::Wire)?;
            let n_blobs = r.get_len().map_err(SnapshotError::Wire)?;
            let mut blobs = Vec::with_capacity(n_blobs.min(1 << 10));
            for _ in 0..n_blobs {
                blobs.push(r.get_bytes().map_err(SnapshotError::Wire)?.to_vec());
            }
            queries.push(QueryRecord {
                id,
                name,
                spec,
                blobs,
            });
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Wire(WireError::Corrupt(
                "trailing bytes after snapshot",
            )));
        }
        Ok(Snapshot {
            position,
            origin_shards,
            wal_seq: 0,
            queries,
        })
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("position", &self.position)
            .field("origin_shards", &self.origin_shards)
            .field("queries", &self.num_queries())
            .finish()
    }
}

impl Wire for Partition {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        match self {
            Partition::ByQuery => w.put_u8(0),
            Partition::ByKey { pos } => {
                w.put_u8(1);
                w.put_len(*pos);
            }
        }
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Partition::ByQuery),
            1 => Ok(Partition::ByKey {
                pos: usize::decode(r)?,
            }),
            _ => Err(WireError::Corrupt("partition tag")),
        }
    }
}

impl Wire for QuerySpec {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_str(&self.name);
        self.pcea.encode(w)?;
        self.window.encode(w)?;
        self.partition.encode(w)?;
        w.put_u64(self.gc_every);
        Ok(())
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QuerySpec {
            name: r.get_str()?,
            pcea: Wire::decode(r)?,
            window: Wire::decode(r)?,
            partition: Wire::decode(r)?,
            gc_every: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowPolicy;
    use cer_automata::pcea::paper_p0;
    use cer_common::Schema;

    #[test]
    fn snapshot_bytes_roundtrip_and_reject_garbage() {
        let (_, r, s, t) = Schema::sigma0();
        let spec = QuerySpec::new("p0", paper_p0(r, s, t), WindowPolicy::Count(7))
            .with_partition(Partition::ByKey { pos: 0 })
            .with_gc_every(3);
        let snap = Snapshot {
            position: 42,
            origin_shards: 3,
            wal_seq: 0,
            queries: vec![
                QueryRecord {
                    id: 0,
                    name: "retired".into(),
                    spec: None,
                    blobs: Vec::new(),
                },
                QueryRecord {
                    id: 1,
                    name: "p0".into(),
                    spec: Some(spec),
                    blobs: vec![vec![1, 2, 3], vec![]],
                },
            ],
        };
        let bytes = snap.to_bytes().unwrap();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.position(), 42);
        assert_eq!(back.origin_shards(), 3);
        assert_eq!(back.num_queries(), 1);
        let (id, spec) = back.query_specs().next().unwrap();
        assert_eq!(id, crate::runtime::QueryId(1));
        assert_eq!(spec.name, "p0");
        assert_eq!(spec.window, WindowPolicy::Count(7));
        assert_eq!(spec.partition, Partition::ByKey { pos: 0 });
        assert_eq!(spec.gc_every, 3);
        assert_eq!(back.queries[1].blobs, snap.queries[1].blobs);

        assert_eq!(
            Snapshot::from_bytes(b"not a snapshot..").unwrap_err(),
            SnapshotError::NotASnapshot
        );
        // Wrong version.
        let mut versioned = bytes.clone();
        versioned[8] = 99;
        assert_eq!(
            Snapshot::from_bytes(&versioned).unwrap_err(),
            SnapshotError::UnknownVersion(99)
        );
        // Truncations never panic.
        for cut in 0..bytes.len() {
            assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn custom_predicates_fail_to_encode() {
        use cer_automata::pcea::PceaBuilder;
        use cer_automata::predicate::UnaryPredicate;
        use cer_automata::valuation::{Label, LabelSet};
        let mut b = PceaBuilder::new(1);
        let q = b.add_state();
        b.add_initial_transition(
            UnaryPredicate::Custom(std::sync::Arc::new(|_t: &cer_common::Tuple| true)),
            LabelSet::singleton(Label(0)),
            q,
        );
        b.mark_final(q);
        let snap = Snapshot {
            position: 0,
            origin_shards: 1,
            wal_seq: 0,
            queries: vec![QueryRecord {
                id: 0,
                name: "custom".into(),
                spec: Some(QuerySpec::new("custom", b.build(), WindowPolicy::Count(1))),
                blobs: vec![Vec::new()],
            }],
        };
        assert!(matches!(
            snap.to_bytes(),
            Err(SnapshotError::Wire(WireError::Unsupported(_)))
        ));
    }
}

//! # cer-core — the streaming evaluation engine (Section 5)
//!
//! Implements Theorem 5.1: streaming evaluation of unambiguous PCEA with
//! equality predicates under a sliding window, with
//! `O(|P|·|t| + |P|·log|P| + |P|·log w)` update time and output-linear
//! delay enumeration.
//!
//! * [`ds`] — the persistent enumeration structure `DS_w`: product/union
//!   nodes, `max-start`, heap condition (‡), leftist-meld `union`
//!   (Proposition 5.3) and a copying collector;
//! * [`enumerate`] — output-linear-delay enumeration of `⟦n⟧^w_i`
//!   (Theorem 5.2);
//! * [`evaluator`] — Algorithm 1 (`FireTransitions` / `UpdateIndices` /
//!   enumeration phase) behind the [`StreamingEvaluator`] API.

pub mod ds;
pub mod enumerate;
pub mod evaluator;

pub use ds::{EnumStructure, NodeId, BOTTOM};
pub use evaluator::{run_to_end, EngineStats, StreamingEvaluator};

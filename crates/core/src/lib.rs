//! # cer-core — the streaming evaluation engine (Section 5)
//!
//! Implements Theorem 5.1: streaming evaluation of unambiguous PCEA with
//! equality predicates under a sliding window, with
//! `O(|P|·|t| + |P|·log|P| + |P|·log w)` update time and output-linear
//! delay enumeration — plus the multi-query runtime that serves many
//! registered queries over one stream.
//!
//! The evaluation stack is layered into explicit stages:
//!
//! * [`window`] — the ingest/window stage: [`WindowClock`] maps arriving
//!   tuples to monotone expiry bounds (count and time windows);
//! * `fire` — `FireTransitions` and `UpdateIndices` of Algorithm 1: the
//!   look-up table `H` and per-position node lists;
//! * [`ds`] — the persistent enumeration structure `DS_w`: product/union
//!   nodes, `max-start`, heap condition (‡), leftist-meld `union`
//!   (Proposition 5.3) and a copying collector;
//! * [`enumerate`] — output-linear-delay enumeration of `⟦n⟧^w_i`
//!   (Theorem 5.2);
//! * [`evaluator`] — the single-query [`StreamingEvaluator`] composing
//!   the stages;
//! * [`api`] — the [`Evaluator`] trait surface shared with the
//!   `cer-baselines` evaluators;
//! * [`runtime`] — the sharded multi-query [`Runtime`]: a registry of
//!   compiled queries, relation-based routing, key-partitioned sharding
//!   across worker threads, and a batch push API;
//! * [`ingest`] — the asynchronous ingestion pipeline underneath the
//!   runtime: a position-stamping sequencer, bounded per-shard queues
//!   with backpressure ([`IngestHandle`] producers), and a subscription
//!   registry delivering [`MatchEvent`]s over per-consumer bounded
//!   channels;
//! * [`checkpoint`] — epoch-consistent snapshots of a live runtime
//!   ([`Runtime::snapshot`](runtime::Runtime::snapshot) /
//!   [`Runtime::restore`](runtime::Runtime::restore), no
//!   stop-the-world, shard count may change across restore) and query
//!   hot-swap with state handoff
//!   ([`Runtime::replace`](runtime::Runtime::replace));
//! * [`autoscale`] — live elasticity: in-process resharding
//!   ([`Runtime::rescale`](runtime::Runtime::rescale), no serialize
//!   round-trip) plus the hysteresis [`Controller`] closing the loop
//!   from load signals to shard count;
//! * [`durability`] — crash recovery: a position-stamped write-ahead
//!   log, incremental disk checkpoints and
//!   [`Runtime::recover`](runtime::Runtime::recover) /
//!   [`Runtime::open_durable`](runtime::Runtime::open_durable).

pub mod api;
pub mod autoscale;
pub mod checkpoint;
pub mod config;
pub mod ds;
pub mod durability;
pub mod enumerate;
pub mod error;
pub mod evaluator;
mod fire;
pub mod ingest;
pub mod metrics;
pub mod runtime;
mod shared;
pub mod window;

pub use api::Evaluator;
pub use autoscale::{AutoscalePolicy, Controller, LoadSignals, ScaleDecision};
pub use cer_obs::{
    validate_prometheus_text, HistogramSnapshot, JournalEntry, Metric, MetricValue, MetricsSnapshot,
};
pub use checkpoint::{Snapshot, SnapshotError};
pub use config::RuntimeConfig;
pub use ds::{EnumStructure, NodeId, BOTTOM};
pub use durability::{
    CheckpointStats, DurabilityConfig, DurabilityError, DurabilityStatus, FsyncPolicy,
};
pub use error::{Error, ErrorCode};
pub use evaluator::{run_to_end, EngineStats, StreamingEvaluator};
pub use ingest::{
    BackpressurePolicy, IngestConfig, IngestError, IngestHandle, IngestReceipt, QueueStats,
    Subscription, SubscriptionFilter,
};
pub use metrics::PipelineEvent;
pub use runtime::{
    MatchEvent, Partition, QueryId, QuerySpec, RescaleCounters, Runtime, RuntimeError,
    RuntimeStats, SharedEvalStats, SnapshotCounters,
};
pub use window::{WindowClock, WindowPolicy};

//! The multi-query runtime: many registered queries, one stream,
//! key-partitioned sharding across worker threads.
//!
//! The [`StreamingEvaluator`] hosts *one* automaton. A production
//! deployment serves many standing queries over one firehose, so this
//! module layers a [`Runtime`] on top:
//!
//! * **registry** — queries compiled from any front-end (the HCQ
//!   compiler, the pattern language, or hand-built PCEA) are registered
//!   as [`QuerySpec`]s and identified by [`QueryId`]; a query can be
//!   removed again with [`Runtime::deregister`];
//! * **routing** — each stream tuple is routed only to the queries
//!   whose automaton can react to its relation
//!   ([`Pcea::relations`]); queries with unconfined predicates see
//!   every tuple;
//! * **sharding** — queries are spread across `n` worker threads.
//!   [`Partition::ByQuery`] pins a query to one shard (always sound);
//!   [`Partition::ByKey`] *replicates* a query across all shards and
//!   routes each tuple by the hash of its partition attribute, so a
//!   single hot query scales across cores. Key partitioning is sound
//!   exactly when every join projects the partition attribute on both
//!   sides, which [`Runtime::register`] validates via
//!   [`Pcea::supports_key_partition`];
//! * **ingestion** — shard workers drain bounded per-shard queues fed
//!   by a striped position-block sequencer ([`crate::ingest`]; producers
//!   reserve position blocks and route/stage outside any global lock,
//!   and a per-shard reorder stage restores position order), coalescing
//!   queued tuples into slices of up to [`IngestConfig::max_batch`](crate::ingest::IngestConfig::max_batch) per
//!   wakeup and evaluating each query's subsequence through the
//!   vectorized batch path
//!   ([`StreamingEvaluator::push_slice_for_each`] and the module docs
//!   of [`crate::evaluator`] for why outputs are bit-identical to
//!   tuple-at-a-time). The synchronous [`Runtime::push_batch`] stays:
//!   it ingests, fences with [`Runtime::drain`], and collects the
//!   batch's matches. Producers that want the hot path decoupled from
//!   delivery clone an [`IngestHandle`] and consumers take a
//!   [`Subscription`] — see the [`ingest`](crate::ingest) module docs
//!   for the pipeline and its position-sequencing soundness argument.
//!
//! Outputs are *identical* to running one [`StreamingEvaluator`] per
//! query over the full stream: shard evaluators are fed global stream
//! positions via [`StreamingEvaluator::push_at`], so window semantics
//! and reported positions do not depend on the shard count. (For time
//! windows this relies on the documented non-decreasing-timestamp
//! contract.)
//!
//! ```
//! use cer_core::runtime::{Partition, QuerySpec, Runtime};
//! use cer_core::window::WindowPolicy;
//! use cer_automata::pcea::paper_p0;
//! use cer_common::gen::sigma0_prefix;
//! use cer_common::Schema;
//!
//! let (_, r, s, t) = Schema::sigma0();
//! let mut rt = Runtime::new(4);
//! // Two standing queries over the same stream, one key-partitioned.
//! let narrow = rt
//!     .register(QuerySpec::new("p0_w5", paper_p0(r, s, t), WindowPolicy::Count(5)))
//!     .unwrap();
//! let wide = rt
//!     .register(
//!         QuerySpec::new("p0_wide", paper_p0(r, s, t), WindowPolicy::Count(100))
//!             .with_partition(Partition::ByKey { pos: 0 }),
//!     )
//!     .unwrap();
//! let events = rt.push_batch(&sigma0_prefix(r, s, t));
//! let narrow_hits = events.iter().filter(|e| e.query == narrow).count();
//! let wide_hits = events.iter().filter(|e| e.query == wide).count();
//! assert_eq!((narrow_hits, wide_hits), (2, 2));
//! assert!(events.iter().all(|e| e.position == 5));
//! ```

use crate::checkpoint::{QueryRecord, Snapshot, SnapshotError};
use crate::config::RuntimeConfig;
use crate::durability::{
    encode_deregister, encode_register, encode_replace, io_err, replay_dir, CheckpointStats,
    CheckpointStore, DurabilityError, DurabilityHandle, DurabilityStatus, Wal, WalOp, WalRecord,
};
use crate::evaluator::{EngineStats, StreamingEvaluator};
use crate::ingest::{
    key_shard, BackpressurePolicy, IngestHandle, IngestShared, InstallQuery, QueryMeta, QueueStats,
    ShardMsg, ShardQueue, ShardState, Subscription, SubscriptionFilter,
};
use crate::metrics::{PipelineEvent, ShardStageMetrics};
use crate::shared::PredicateCache;
use crate::window::WindowPolicy;
use cer_automata::pcea::Pcea;
use cer_automata::valuation::Valuation;
use cer_common::hash::{FxBuildHasher, FxHashMap};
use cer_common::{RelationId, Tuple};
use cer_obs::{JournalEntry, MetricsSnapshot};
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Identifier of a query registered in a [`Runtime`], dense from 0 in
/// registration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

/// How a registered query is spread across the runtime's shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// The query lives on exactly one shard (the one hosting the fewest
    /// live pinned queries at registration time, so register/deregister
    /// churn keeps placement balanced). Always sound; multi-query
    /// workloads scale because different queries land on different
    /// shards.
    ByQuery,
    /// The query is replicated on every shard and each tuple is routed
    /// by the hash of its value at tuple position `pos`. Sound exactly
    /// when every join of the automaton projects that attribute on both
    /// sides ([`Pcea::supports_key_partition`]); lets a *single* hot
    /// query scale across cores.
    ByKey {
        /// Tuple position holding the partition attribute.
        pos: usize,
    },
}

/// A query ready for registration: an automaton plus its window policy
/// and placement.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Human-readable name, echoed in errors and stats.
    pub name: String,
    /// The compiled automaton.
    pub pcea: Pcea,
    /// The sliding-window policy.
    pub window: WindowPolicy,
    /// Shard placement.
    pub partition: Partition,
    /// GC cadence forwarded to the shard evaluators (0 = automatic).
    pub gc_every: u64,
}

impl QuerySpec {
    /// A query pinned to one shard ([`Partition::ByQuery`]).
    pub fn new(name: impl Into<String>, pcea: Pcea, window: WindowPolicy) -> Self {
        QuerySpec {
            name: name.into(),
            pcea,
            window,
            partition: Partition::ByQuery,
            gc_every: 0,
        }
    }

    /// Override the placement.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Override the GC cadence.
    pub fn with_gc_every(mut self, every: u64) -> Self {
        self.gc_every = every;
        self
    }
}

/// One completed match: which query fired, at which global stream
/// position, with which valuation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatchEvent {
    /// Global position of the completing tuple.
    pub position: u64,
    /// The query that matched.
    pub query: QueryId,
    /// The match itself.
    pub valuation: Valuation,
}

/// Why a registration or deregistration was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// [`Partition::ByKey`] was requested but some join of the automaton
    /// does not project the partition attribute on both sides, so runs
    /// could cross shard boundaries and outputs would be lost.
    KeyPartitionUnsound {
        /// The query's name.
        query: String,
        /// The requested partition attribute.
        pos: usize,
    },
    /// The query id is not currently registered (never was, or already
    /// deregistered).
    UnknownQuery {
        /// The offending id.
        id: QueryId,
    },
    /// [`Runtime::replace`] rejected a hot-swap: the new query cannot
    /// take over the old one's accumulated state. The old query keeps
    /// running untouched.
    ReplaceIncompatible {
        /// The replacement query's name.
        query: String,
        /// What failed the compatibility check.
        reason: &'static str,
    },
    /// [`Runtime::rescale`] was asked for a shard count outside the
    /// supported `1..=64` range (the same bound
    /// [`RuntimeConfig`] clamps to at construction).
    InvalidShardCount {
        /// The rejected count.
        shards: usize,
    },
    /// A durable runtime rejected a registration (or hot-swap) whose
    /// definition cannot be serialized to the write-ahead log —
    /// closure predicates have no wire form, so the query could never
    /// be recovered. Rejected *before* anything is logged or routed;
    /// the runtime is unchanged.
    UnserializableQuery {
        /// The rejected query's name.
        query: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::KeyPartitionUnsound { query, pos } => write!(
                f,
                "query `{query}`: key partitioning on tuple position {pos} is unsound — \
                 every join must project that attribute on both sides"
            ),
            RuntimeError::UnknownQuery { id } => {
                write!(f, "query {id:?} is not registered")
            }
            RuntimeError::ReplaceIncompatible { query, reason } => {
                write!(
                    f,
                    "query `{query}` cannot take over the old state: {reason}"
                )
            }
            RuntimeError::InvalidShardCount { shards } => {
                write!(f, "shard count {shards} out of range (1..=64)")
            }
            RuntimeError::UnserializableQuery { query } => {
                write!(
                    f,
                    "query `{query}` cannot be written to the WAL (closure \
                     predicates have no wire form) — a durable runtime would \
                     lose it on recovery"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Runtime counters: per-query engine stats aggregated across shards,
/// plus the occupancy of every shard's ingest queue.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// `(query, per-shard engine counters summed)` in id order.
    pub per_query: Vec<(QueryId, EngineStats)>,
    /// The unsummed breakdown behind [`per_query`](Self::per_query):
    /// `(query, [(shard, counters), …])` in id order, shards ascending.
    /// Summing each query's shard entries reproduces `per_query`
    /// exactly — kept so hot-shard skew under
    /// [`Partition::ByKey`] stays visible instead of being averaged
    /// away.
    pub per_query_shards: Vec<(QueryId, Vec<(usize, EngineStats)>)>,
    /// Per-shard ingest queue occupancy (current depth, high-water
    /// mark, tuples dropped under
    /// [`BackpressurePolicy::DropNewest`](crate::ingest::BackpressurePolicy)),
    /// the evaluation batch sizes the shard workers actually drained
    /// ([`QueueStats::drained_batches`] / [`QueueStats::drained_tuples`]
    /// / [`QueueStats::max_drain_batch`]), and the reorder-stage
    /// counters of the striped sequencer
    /// ([`QueueStats::reorder_pending`] /
    /// [`QueueStats::reorder_high_water`] /
    /// [`QueueStats::reorder_released`]).
    pub shard_queues: Vec<QueueStats>,
    /// Checkpoint counters ([`Runtime::snapshot`]): how many snapshots
    /// were taken, at which position the last one cut, and how long
    /// each shard's copy-on-fence serialization stalled its worker.
    pub snapshots: SnapshotCounters,
    /// Live-resharding counters ([`Runtime::rescale`]): how many
    /// rescales ran, the fence-to-resume duration of the last one, and
    /// each old shard's state-move stall.
    pub rescales: RescaleCounters,
    /// Shared-evaluation effectiveness, summed across shards: predicate
    /// dedup (distinct vs referenced predicates, prefilter `matches()`
    /// calls performed vs avoided) and skeleton grouping (group count
    /// and sizes, concatenated across shards).
    pub shared: SharedEvalStats,
}

/// Effectiveness counters of the per-shard shared-evaluation layer
/// (predicate cache + skeleton groups), surfaced in [`RuntimeStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedEvalStats {
    /// Distinct unary predicates currently interned (summed across
    /// shard caches).
    pub distinct_predicates: usize,
    /// Predicate references held by registered transitions (one per
    /// transition per hosted query replica). The gap to
    /// `distinct_predicates` is the dedup factor.
    pub referenced_predicates: usize,
    /// Cumulative unary `matches()` calls the shared prefilter actually
    /// performed.
    pub prefilter_evals_done: u64,
    /// Cumulative unary `matches()` calls avoided versus private
    /// per-query prefilters (which pay one call per tuple per
    /// referencing transition).
    pub prefilter_evals_saved: u64,
    /// Skeleton-compatible query groups currently live (summed across
    /// shards).
    pub groups: usize,
    /// Member count of every live group, concatenated across shards.
    pub group_sizes: Vec<usize>,
}

/// Checkpoint counters surfaced in [`RuntimeStats`], alongside the
/// queue/reorder stats.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotCounters {
    /// Snapshots successfully taken over this runtime's lifetime.
    pub snapshots_taken: u64,
    /// Epoch position of the most recent snapshot (`None` before the
    /// first).
    pub last_snapshot_pos: Option<u64>,
    /// Per-shard serialization stall of the most recent snapshot, in
    /// nanoseconds — the copy-on-fence cost each worker paid while
    /// producers kept running.
    pub shard_serialize_nanos: Vec<u64>,
}

/// Live-resharding counters surfaced in [`RuntimeStats`], mirroring
/// [`SnapshotCounters`]. [`Runtime::rescale`] moves state in memory
/// without touching the wire layer, so these are deliberately separate
/// from the snapshot counters: a rescale never records into
/// `shard_serialize_nanos`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RescaleCounters {
    /// Rescales completed over this runtime's lifetime.
    pub rescales: u64,
    /// Fence position of the most recent rescale (`None` before the
    /// first): tuples stamped below it were evaluated by the old worker
    /// set, everything at or above by the new one.
    pub last_fence_pos: Option<u64>,
    /// Fence-to-resume wall time of the most recent rescale, in
    /// nanoseconds — from reserving the fence block to the new workers
    /// acknowledging their installed state.
    pub last_rescale_nanos: u64,
    /// Per-old-shard state-capture (move) stall of the most recent
    /// rescale, in nanoseconds — the in-memory analogue of
    /// [`SnapshotCounters::shard_serialize_nanos`].
    pub shard_move_nanos: Vec<u64>,
}

/// One live query's placement under a rescale's new layout: id,
/// partition rule, listen set, and the homes chosen for it.
type Placement = (QueryId, Partition, Option<Vec<RelationId>>, Vec<usize>);

impl RuntimeStats {
    /// Out-of-order timestamps clamped by time-window clocks, summed
    /// across queries and shards
    /// ([`EngineStats::ts_regressions`](crate::evaluator::EngineStats)).
    /// Non-zero means some stream violated the non-decreasing-timestamp
    /// contract — under `ByKey` sharding its outputs may then depend on
    /// the shard count (see the hazard note in [`crate::window`]), so
    /// operators should alert on this counter.
    pub fn ts_regressions(&self) -> u64 {
        self.per_query.iter().map(|(_, st)| st.ts_regressions).sum()
    }
}

/// What a shard worker hosts for one registered query.
struct LocalQuery {
    id: QueryId,
    eval: StreamingEvaluator,
    partition: Partition,
    listens: Option<Vec<RelationId>>,
    /// Indirection table: transition index → shared predicate slot in
    /// the shard's [`PredicateCache`].
    slots: Vec<u32>,
    /// Index of this query's [`QueryGroup`].
    group: usize,
    /// `ts_regressions` observed after the previous batch — new clamps
    /// show up as a delta and are journaled per batch.
    last_regressions: u64,
}

/// A shard-local bucket of skeleton-compatible queries: same automaton
/// skeleton ([`Pcea::skeleton_compatible`]), same routing interests and
/// same partition mode, so the whole group shares one routed tuple
/// selection per batch and its members differ only in per-query
/// residuals (predicates, join state, windows).
struct QueryGroup {
    /// Routing interests shared by every member (equal by construction).
    listens: Option<Vec<RelationId>>,
    /// Partition mode shared by every member.
    partition: Partition,
    /// Indices into the worker's `queries`.
    members: Vec<usize>,
    /// Reusable per-batch selection scratch (indices into the drained
    /// slice), computed once per group instead of once per query.
    sel: Vec<u32>,
}

/// Find the group a query belongs in — same skeleton, listens and
/// partition — or create an empty one. `k` indexes the query in
/// `queries`; membership is the caller's to record.
fn find_or_create_group(groups: &mut Vec<QueryGroup>, queries: &[LocalQuery], k: usize) -> usize {
    let q = &queries[k];
    for (gi, g) in groups.iter().enumerate() {
        if g.partition == q.partition
            && g.listens == q.listens
            && g.members
                .first()
                .is_some_and(|&m| queries[m].eval.pcea().skeleton_compatible(q.eval.pcea()))
        {
            return gi;
        }
    }
    groups.push(QueryGroup {
        listens: q.listens.clone(),
        partition: q.partition,
        members: Vec::new(),
        sel: Vec::new(),
    });
    groups.len() - 1
}

/// Recompute every group's membership from the queries' `group` fields
/// (indices into `queries` shift on removal) and drop groups left
/// empty, remapping the survivors.
fn rebuild_groups(groups: &mut Vec<QueryGroup>, queries: &mut [LocalQuery]) {
    for g in groups.iter_mut() {
        g.members.clear();
    }
    for (k, q) in queries.iter().enumerate() {
        groups[q.group].members.push(k);
    }
    let mut remap = vec![usize::MAX; groups.len()];
    let mut w = 0usize;
    for gi in 0..groups.len() {
        if groups[gi].members.is_empty() {
            continue;
        }
        remap[gi] = w;
        groups.swap(gi, w);
        w += 1;
    }
    groups.truncate(w);
    for q in queries.iter_mut() {
        q.group = remap[q.group];
    }
}

/// Registry metadata the runtime keeps per query. The full spec is
/// retained for live queries so checkpoints can serialize definitions
/// and `replace` can validate hand-off compatibility.
struct QueryInfo {
    name: String,
    alive: bool,
    spec: Option<QuerySpec>,
}

/// The multi-query, sharded streaming runtime. See the [module
/// docs](self) for the architecture, [`crate::ingest`] for the
/// asynchronous pipeline underneath, and [`crate::checkpoint`] for
/// snapshot/restore and query hot-swap.
pub struct Runtime {
    shared: Arc<IngestShared>,
    workers: Vec<Option<JoinHandle<()>>>,
    queries: Vec<QueryInfo>,
    snap_counters: SnapshotCounters,
    rescale_counters: RescaleCounters,
    config: RuntimeConfig,
    /// `Some` when this runtime was opened on a data directory
    /// ([`Runtime::open_durable`] / [`Runtime::recover`]): the attached
    /// WAL plus the checkpoint store. In-memory runtimes carry `None`
    /// and every durability entry point reports
    /// [`DurabilityError::NotDurable`].
    durability: Option<DurabilityHandle>,
}

/// Spawn one shard worker. The queue, stage metrics and shard geometry
/// are per-epoch values passed at spawn time (not read from the shared
/// state) so [`Runtime::rescale`] can run old and new worker sets
/// against different queue sets during the hand-off.
fn spawn_shard_worker(
    shared: Arc<IngestShared>,
    queue: Arc<ShardQueue>,
    stage: Arc<ShardStageMetrics>,
    shard_idx: usize,
    n_shards: usize,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("cer-shard-{shard_idx}"))
        .spawn(move || shard_loop(shared, queue, stage, shard_idx, n_shards))
        .expect("spawn shard worker")
}

impl Runtime {
    /// A runtime from a [`RuntimeConfig`] — or a bare shard count
    /// (clamped to `1..=64`), which converts into a config with every
    /// other knob at its default: `Runtime::new(4)`.
    pub fn new(config: impl Into<RuntimeConfig>) -> Self {
        Self::build(config.into())
    }

    fn build(config: RuntimeConfig) -> Self {
        let config = config.validated();
        let shared = Arc::new(IngestShared::new(&config));
        let queues = shared.queues();
        let stages: Vec<Arc<ShardStageMetrics>> = shared
            .metrics
            .shards
            .lock()
            .expect("metrics poisoned")
            .clone();
        let workers = queues
            .iter()
            .zip(stages)
            .enumerate()
            .map(|(idx, (queue, stage))| {
                Some(spawn_shard_worker(
                    shared.clone(),
                    queue.clone(),
                    stage,
                    idx,
                    queues.len(),
                ))
            })
            .collect();
        Runtime {
            shared,
            workers,
            queries: Vec::new(),
            snap_counters: SnapshotCounters::default(),
            rescale_counters: RescaleCounters::default(),
            config,
            durability: None,
        }
    }

    /// The (validated) configuration this runtime was built from.
    /// [`RuntimeConfig::shards`] tracks [`Runtime::rescale`], so it
    /// reflects the *current* worker count, not necessarily the
    /// construction-time one.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Number of worker shards (live: follows [`Runtime::rescale`]).
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// Cumulative [`RescaleCounters`]: how many times this runtime was
    /// live-resharded, the last fence position and duration, and the
    /// per-shard state-move times of the last rescale. Cheaper than
    /// [`Runtime::stats`] — no worker round-trip.
    pub fn rescale_counters(&self) -> &RescaleCounters {
        &self.rescale_counters
    }

    /// Number of currently registered (not deregistered) queries.
    pub fn num_queries(&self) -> usize {
        self.queries.iter().filter(|q| q.alive).count()
    }

    /// The global position the next pushed tuple will occupy.
    pub fn next_position(&self) -> u64 {
        self.shared.seq.lock().expect("sequencer poisoned").next_pos
    }

    /// The name a query was registered under (also for deregistered
    /// ids); `None` for an id this runtime never issued.
    pub fn query_name(&self, id: QueryId) -> Option<&str> {
        self.queries.get(id.0 as usize).map(|q| q.name.as_str())
    }

    /// Register a query; tuples pushed from now on are evaluated against
    /// it. Key-partitioned placements are validated for soundness;
    /// pinned ([`Partition::ByQuery`]) queries are placed on the shard
    /// currently hosting the fewest live pinned queries, so
    /// register/deregister churn cannot pile them up on few shards.
    pub fn register(&mut self, spec: QuerySpec) -> Result<QueryId, RuntimeError> {
        self.register_with_state(spec, None)
    }

    /// The shared registration path: `state` carries a restored
    /// evaluator (checkpoint restore) to seed the shard workers with
    /// instead of fresh state. Key-partitioned restored queries get a
    /// clone of the merged state on *every* home shard, pruned to the
    /// key slice that home owns — see [`crate::checkpoint`] for why
    /// disjointness matters — with the merged counters on the first
    /// home only, so per-query stats summed across shards stay exact.
    fn register_with_state(
        &mut self,
        spec: QuerySpec,
        state: Option<StreamingEvaluator>,
    ) -> Result<QueryId, RuntimeError> {
        if let Partition::ByKey { pos } = spec.partition {
            if !spec.pcea.supports_key_partition(pos) {
                return Err(RuntimeError::KeyPartitionUnsound {
                    query: spec.name,
                    pos,
                });
            }
        }
        // Durable runtimes must be able to log the definition: probe
        // encodability *before* reserving anything, so a rejection
        // consumes no `wal_seq` and leaves no gap in the log.
        if self.shared.wal.get().is_some() {
            use cer_common::wire::{Wire, WireWriter};
            let mut probe = WireWriter::new();
            if spec.encode(&mut probe).is_err() {
                return Err(RuntimeError::UnserializableQuery { query: spec.name });
            }
        }
        let id = QueryId(self.queries.len() as u32);
        let listens = spec.pcea.relations();
        let n_homes = match spec.partition {
            Partition::ByQuery => 1,
            Partition::ByKey { .. } => self.num_shards(),
        };
        // Replica clones are prepared before the sequencer lock: cloning
        // a large restored arena under the lock would stall producers.
        // Under `ByKey`, each home's copy is pruned to the key slice it
        // owns in the *new* layout — replicas must stay disjoint or the
        // next merge (rescale, restore) would duplicate in-window runs.
        let mut states: Vec<Option<Box<StreamingEvaluator>>> = (0..n_homes).map(|_| None).collect();
        if let Some(eval) = state {
            for (k, slot) in states.iter_mut().enumerate().skip(1) {
                let mut clone = eval.clone();
                clone.clear_replica_stats();
                if let Partition::ByKey { pos } = spec.partition {
                    clone.retain_key_shard(pos, k, n_homes);
                }
                *slot = Some(Box::new(clone));
            }
            let mut first = eval;
            if let Partition::ByKey { pos } = spec.partition {
                first.retain_key_shard(pos, 0, n_homes);
            }
            states[0] = Some(Box::new(first));
        }
        let (block, position, wal_seq) = {
            // One sequencer lock acquisition swaps the router AND
            // reserves the zero-width control block, so the routing
            // epoch agrees with block order: blocks reserved before this
            // were routed with the old tables and their tuples are
            // released ahead of the Register message; blocks after see
            // the query and follow it.
            let mut seq = self.shared.seq.lock().expect("sequencer poisoned");
            let n_shards = seq.queues.len();
            let homes: Vec<usize> = match spec.partition {
                Partition::ByQuery => {
                    let counts = seq.router.pinned_per_shard(n_shards);
                    let least = (0..counts.len()).min_by_key(|&s| counts[s]).unwrap_or(0);
                    vec![least]
                }
                Partition::ByKey { .. } => (0..n_shards).collect(),
            };
            let router = Arc::make_mut(&mut seq.router);
            router.metas.push(QueryMeta {
                alive: true,
                partition: spec.partition,
                listens: listens.clone(),
                homes: homes.clone(),
            });
            router.rebuild();
            let (block, position) = seq.reserve(0);
            let wal_seq = seq.take_wal_seq();
            for (k, &shard) in homes.iter().enumerate() {
                seq.queues[shard]
                    .stage_control(
                        block,
                        ShardMsg::Register {
                            id,
                            pcea: spec.pcea.clone(),
                            window: spec.window.clone(),
                            partition: spec.partition,
                            gc_every: spec.gc_every,
                            listens: listens.clone(),
                            state: states[k].take(),
                        },
                    )
                    .expect("runtime not shut down");
            }
            (block, position, wal_seq)
        };
        self.shared.finish_block(block);
        if self.shared.wal.get().is_some() {
            let payload = encode_register(wal_seq, position, id.0, &spec);
            self.shared.wal_append(wal_seq, position, payload);
        }
        self.shared
            .metrics
            .journal
            .push(PipelineEvent::QueryRegistered {
                query: id,
                position,
            });
        self.queries.push(QueryInfo {
            name: spec.name.clone(),
            alive: true,
            spec: Some(spec),
        });
        Ok(id)
    }

    /// Remove a query: tuples ingested from now on are no longer routed
    /// to it, and its final engine counters (summed across shards) are
    /// returned. Tuples already queued ahead of the call still count —
    /// deregistration is FIFO-ordered with ingestion, like
    /// registration. The id is retired, not reused.
    pub fn deregister(&mut self, id: QueryId) -> Result<EngineStats, RuntimeError> {
        let info = self
            .queries
            .get_mut(id.0 as usize)
            .filter(|info| info.alive)
            .ok_or(RuntimeError::UnknownQuery { id })?;
        info.alive = false;
        info.spec = None;
        let (reply, replies) = channel();
        let (block, position, homes, wal_seq) = {
            // Same epoch rule as `register`: the router swap and the
            // zero-width control block share one lock acquisition, so
            // tuples routed to the dying query (older blocks) are
            // released ahead of the Deregister message and still count.
            let mut seq = self.shared.seq.lock().expect("sequencer poisoned");
            let router = Arc::make_mut(&mut seq.router);
            let meta = &mut router.metas[id.0 as usize];
            meta.alive = false;
            let homes = meta.homes.clone();
            router.rebuild();
            let (block, position) = seq.reserve(0);
            let wal_seq = seq.take_wal_seq();
            for &shard in &homes {
                seq.queues[shard]
                    .stage_control(
                        block,
                        ShardMsg::Deregister {
                            id,
                            reply: reply.clone(),
                        },
                    )
                    .expect("runtime not shut down");
            }
            (block, position, homes, wal_seq)
        };
        self.shared.finish_block(block);
        if self.shared.wal.get().is_some() {
            let payload = Ok(encode_deregister(wal_seq, position, id.0));
            self.shared.wal_append(wal_seq, position, payload);
        }
        self.shared
            .metrics
            .journal
            .push(PipelineEvent::QueryDeregistered {
                query: id,
                position,
            });
        drop(reply);
        let mut total = EngineStats::default();
        for _ in 0..homes.len() {
            let st = replies
                .recv()
                .expect("a runtime shard worker died during deregistration");
            if let Some(st) = st {
                sum_stats(&mut total, &st);
            }
        }
        Ok(total)
    }

    /// Capture an epoch-consistent [`Snapshot`] of every registered
    /// query's definition and live evaluator state, **without stopping
    /// producers**: one zero-width *epoch block* is reserved through
    /// the striped sequencer, so every shard serializes at exactly the
    /// same stamped position while ingestion keeps flowing (see
    /// [`crate::checkpoint`] for the consistency argument). Shards
    /// serialize concurrently; each worker's copy-on-fence stall is
    /// reported in [`RuntimeStats::snapshots`].
    ///
    /// Fails up front — before fencing anything — when a registered
    /// definition cannot be serialized (closure predicates).
    pub fn snapshot(&mut self) -> Result<Snapshot, SnapshotError> {
        use cer_common::wire::{Wire, WireWriter};
        // Early validation: every live definition must round-trip, or
        // the snapshot would be unrestorable.
        for info in self.queries.iter().filter(|i| i.alive) {
            let spec = info.spec.as_ref().expect("live query retains its spec");
            let mut probe = WireWriter::new();
            spec.encode(&mut probe)?;
        }
        // Extract: the epoch-fenced copy-on-fence capture, shared with
        // `rescale`. Workers clone their hosted evaluators at the fence
        // and keep serving.
        let (fence_pos, wal_seq, states) = self
            .extract_states()
            .map_err(|_| SnapshotError::ShardWorkerDied)?;
        let position = fence_pos;
        let n_shards = states.len();
        // Encode: the wire layer, snapshot-only. The workers resumed
        // the moment their clone finished; serialization happens here
        // on the control plane against the extracted copies. Per-shard
        // `serialize_nanos` keeps its meaning — capture stall plus
        // encode time.
        let mut per_shard_nanos = vec![0u64; n_shards];
        let mut blobs: FxHashMap<QueryId, Vec<(usize, Vec<u8>)>> = FxHashMap::default();
        for state in states {
            let encode_at = Instant::now();
            let shard = state.shard;
            for (qid, mut eval) in state.queries {
                let blob = eval.snapshot_bytes()?;
                blobs.entry(qid).or_default().push((shard, blob));
            }
            per_shard_nanos[shard] = state.capture_nanos + encode_at.elapsed().as_nanos() as u64;
        }
        self.snap_counters.snapshots_taken += 1;
        self.snap_counters.last_snapshot_pos = Some(position);
        for &nanos in &per_shard_nanos {
            self.shared.metrics.snapshot_serialize.record(nanos);
        }
        self.shared
            .metrics
            .journal
            .push(PipelineEvent::SnapshotTaken { position });
        // A durable runtime rolls the active WAL segment at the fence's
        // `wal_seq`: records below it are exactly the state this
        // snapshot captured, so a checkpoint built from it can truncate
        // whole sealed segments.
        if let Some(wal) = self.shared.wal.get() {
            wal.roll_at(wal_seq);
            self.shared
                .metrics
                .journal
                .push(PipelineEvent::WalRolled { position });
        }
        self.snap_counters.shard_serialize_nanos = per_shard_nanos;
        let queries = self
            .queries
            .iter()
            .enumerate()
            .map(|(i, info)| {
                let mut shard_blobs = blobs.remove(&QueryId(i as u32)).unwrap_or_default();
                shard_blobs.sort_by_key(|(shard, _)| *shard);
                QueryRecord {
                    id: i as u32,
                    name: info.name.clone(),
                    spec: info.spec.clone(),
                    blobs: shard_blobs.into_iter().map(|(_, blob)| blob).collect(),
                }
            })
            .collect();
        Ok(Snapshot {
            position,
            origin_shards: n_shards,
            queries,
            wal_seq,
        })
    }

    /// The extract half of the snapshot path: reserve one zero-width
    /// epoch block through the striped sequencer and have every shard
    /// worker capture (clone) its hosted evaluators at exactly that
    /// point of the released position order, without stopping
    /// producers. Returns the fence position and one [`ShardState`]
    /// per shard, in shard order. No bytes are produced — encoding is
    /// [`Runtime::snapshot`]'s half; [`Runtime::rescale`] consumes the
    /// detaching variant of the same capture directly.
    ///
    /// Also returns the `wal_seq` high-water read under the same lock
    /// acquisition as the fence reservation: every replayable operation
    /// whose `wal_seq` is below it was reserved before the fence and is
    /// therefore covered by the captured state — the recovery replay
    /// filter (`seq >= wal_seq`) is exact, not approximate.
    fn extract_states(&mut self) -> Result<(u64, u64, Vec<ShardState>), ()> {
        let (reply, replies) = channel();
        let (block, position, wal_seq, n_shards) = {
            // Reserved and staged to every shard under one sequencer
            // lock acquisition, like register/deregister.
            let mut seq = self.shared.seq.lock().expect("sequencer poisoned");
            let (block, position) = seq.reserve(0);
            let wal_seq = seq.next_wal_seq;
            for q in seq.queues.iter() {
                q.stage_control(
                    block,
                    ShardMsg::Extract {
                        detach: false,
                        reply: reply.clone(),
                    },
                )
                .map_err(|_| ())?;
            }
            (block, position, wal_seq, seq.queues.len())
        };
        self.shared.finish_block(block);
        drop(reply);
        let mut states = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            states.push(replies.recv().map_err(|_| ())?);
        }
        states.sort_by_key(|s| s.shard);
        Ok((position, wal_seq, states))
    }

    /// Live, in-process resharding: tear the worker set down to
    /// `shards` threads (or up), moving every query's accumulated
    /// state across — no serialize round-trip, producers blocked no
    /// longer than the fence. [`IngestHandle`]s, subscriptions and
    /// [`QueryId`]s all survive; stamping resumes at the fence
    /// position, so outputs are identical to never having rescaled.
    ///
    /// Mechanically this is a two-block fence through the striped
    /// sequencer, installed under one lock acquisition:
    ///
    /// ```text
    ///  old queues ── …tuples… ─ B:Extract(detach)        ×closed×
    ///  new queues ──────────── B+1:Install ─ …tuples (held)…──►
    /// ```
    ///
    /// * every query is re-homed for the new count and the router
    ///   swapped, so blocks reserved *after* the fence route to the
    ///   new queues;
    /// * fence block `B` carries a detaching extract to the old
    ///   workers: each drains its entire pre-fence backlog, hands its
    ///   evaluators over, and exits;
    /// * install block `B+1` is completed only once the merged state
    ///   has been staged to the new queues, and the reorder stage
    ///   releases blocks strictly in order — so the new workers adopt
    ///   their state *before* the first post-fence tuple, which waited
    ///   in the reorder buffer, not in a parked producer.
    ///
    /// The merge is restore's, minus the wire: arenas concatenate with
    /// remapped ids, `H` tables union, window clocks interleave,
    /// counters sum — all on in-memory values
    /// (`StreamingEvaluator::absorb_replica`). The snapshot
    /// serialization histogram is untouched by construction.
    ///
    /// Ordering vs the other control operations
    /// (`register`/`deregister`/`replace`/`snapshot`): all of them,
    /// and `rescale` itself, take `&mut self`, so they are serialized
    /// by construction — a rescale can neither interleave with nor
    /// deadlock against another structural change, and each one
    /// fences FIFO with ingestion through its control block's position
    /// in the reserve order. Concurrent producers ([`IngestHandle`])
    /// and consumers ([`Subscription`]) keep running throughout.
    pub fn rescale(&mut self, shards: usize) -> Result<(), RuntimeError> {
        if shards == 0 || shards > 64 {
            return Err(RuntimeError::InvalidShardCount { shards });
        }
        let old_n = self.num_shards();
        // Everything construction-like happens before the fence.
        let new_queues: Arc<[Arc<ShardQueue>]> = (0..shards)
            .map(|_| Arc::new(ShardQueue::new(self.config.ingest.queue_capacity)))
            .collect();
        let new_stages: Vec<Arc<ShardStageMetrics>> = (0..shards)
            .map(|_| Arc::new(ShardStageMetrics::default()))
            .collect();
        let (reply, replies) = channel();
        let fence_at = Instant::now();
        // Phase 1 — the fence. One sequencer lock acquisition re-homes
        // every live query, swaps the router and the queue set, and
        // reserves both control blocks, so the routing epoch agrees
        // with block order exactly as in register/deregister.
        let (fence_block, install_block, fence_pos, fence_wal_seq, old_queues, placements) = {
            let mut seq = self.shared.seq.lock().expect("sequencer poisoned");
            let old_queues = Arc::clone(&seq.queues);
            let router = Arc::make_mut(&mut seq.router);
            // Deterministic re-placement: pinned queries go least-
            // loaded in id order; keyed queries home on every shard.
            let mut pinned = vec![0usize; shards];
            let mut placements: Vec<Placement> = Vec::new();
            for (i, meta) in router.metas.iter_mut().enumerate() {
                if !meta.alive {
                    continue;
                }
                meta.homes = match meta.partition {
                    Partition::ByQuery => {
                        let least = (0..shards).min_by_key(|&s| pinned[s]).unwrap_or(0);
                        pinned[least] += 1;
                        vec![least]
                    }
                    Partition::ByKey { .. } => (0..shards).collect(),
                };
                placements.push((
                    QueryId(i as u32),
                    meta.partition,
                    meta.listens.clone(),
                    meta.homes.clone(),
                ));
            }
            router.rebuild();
            let (fence_block, fence_pos) = seq.reserve(0);
            let (install_block, _) = seq.reserve(0);
            let fence_wal_seq = seq.next_wal_seq;
            seq.queues = Arc::clone(&new_queues);
            // Watermark broadcasts must keep reaching the retiring
            // queues until their workers hand their state over.
            seq.broadcast = old_queues
                .iter()
                .chain(new_queues.iter())
                .cloned()
                .collect();
            for q in old_queues.iter() {
                q.stage_control(
                    fence_block,
                    ShardMsg::Extract {
                        detach: true,
                        reply: reply.clone(),
                    },
                )
                .expect("runtime not shut down");
            }
            (
                fence_block,
                install_block,
                fence_pos,
                fence_wal_seq,
                old_queues,
                placements,
            )
        };
        self.shared.finish_block(fence_block);
        // A durable runtime rolls the active segment at the fence, so a
        // recovery replaying across this rescale re-derives the same
        // fence point from segment boundaries alone (the log carries no
        // explicit rescale records — shard layout is not durable state).
        if let Some(wal) = self.shared.wal.get() {
            wal.roll_at(fence_wal_seq);
            self.shared.metrics.journal.push(PipelineEvent::WalRolled {
                position: fence_pos,
            });
        }
        drop(reply);
        // Phase 2 — the new workers spawn immediately; their queues
        // hold everything back until the install block releases.
        let new_workers: Vec<Option<JoinHandle<()>>> = new_queues
            .iter()
            .zip(&new_stages)
            .enumerate()
            .map(|(idx, (queue, stage))| {
                Some(spawn_shard_worker(
                    self.shared.clone(),
                    queue.clone(),
                    stage.clone(),
                    idx,
                    shards,
                ))
            })
            .collect();
        // Phase 3 — collect the detached state. A reply proves that
        // shard evaluated everything below the fence.
        let mut states: Vec<ShardState> = Vec::with_capacity(old_n);
        for _ in 0..old_n {
            states.push(
                replies
                    .recv()
                    .expect("a runtime shard worker died during rescale"),
            );
        }
        states.sort_by_key(|s| s.shard);
        let shard_move_nanos: Vec<u64> = states.iter().map(|s| s.capture_nanos).collect();
        // Phase 4 — merge in memory: exactly restore's merge, no bytes.
        let mut by_query: FxHashMap<QueryId, Vec<StreamingEvaluator>> = FxHashMap::default();
        for state in states {
            for (qid, eval) in state.queries {
                by_query.entry(qid).or_default().push(*eval);
            }
        }
        let mut installs: Vec<Vec<InstallQuery>> = (0..shards).map(|_| Vec::new()).collect();
        for (id, partition, listens, homes) in placements {
            let replicas = by_query.remove(&id).unwrap_or_default();
            let mut merged =
                merge_replicas(replicas).expect("live query hosted on at least one old shard");
            merged.set_resume_position(fence_pos);
            // Same replication rule as a restored registration: the
            // merged counters live on the first home only, clones on
            // the others report zero, so stats summed across shards
            // stay exact — and each `ByKey` home keeps only the key
            // slice it owns in the new layout, so the replicas handed
            // out are disjoint and the *next* rescale's merge cannot
            // duplicate runs.
            for &shard in homes.iter().skip(1) {
                let mut clone = merged.clone();
                clone.clear_replica_stats();
                if let Partition::ByKey { pos } = partition {
                    clone.retain_key_shard(pos, shard, shards);
                }
                installs[shard].push(InstallQuery {
                    id,
                    partition,
                    listens: listens.clone(),
                    state: Box::new(clone),
                });
            }
            if let Partition::ByKey { pos } = partition {
                merged.retain_key_shard(pos, homes[0], shards);
            }
            installs[homes[0]].push(InstallQuery {
                id,
                partition,
                listens,
                state: Box::new(merged),
            });
        }
        // Phase 5 — install under the second block. One batched message
        // per new shard (the reorder buffer holds one entry per block
        // id); empty shards still get one, so every queue passes the
        // fence and every worker acknowledges.
        let (ireply, installed) = channel();
        for (shard, queries) in installs.into_iter().enumerate() {
            new_queues[shard]
                .stage_control(
                    install_block,
                    ShardMsg::Install {
                        queries,
                        reply: ireply.clone(),
                    },
                )
                .expect("runtime not shut down");
        }
        self.shared.finish_block(install_block);
        drop(ireply);
        for _ in 0..shards {
            installed
                .recv()
                .expect("a runtime shard worker died during rescale");
        }
        let nanos = fence_at.elapsed().as_nanos() as u64;
        // Phase 6 — retire the old epoch: fold the retiring queues'
        // drop totals into the monotone carry-over, shrink the
        // broadcast set back to the live queues, and reap the old
        // workers (they exited at the fence; close() is for any that
        // died early).
        let retired: u64 = old_queues.iter().map(|q| q.stats().dropped).sum();
        self.shared
            .retired_dropped
            .fetch_add(retired, std::sync::atomic::Ordering::Relaxed);
        {
            let mut seq = self.shared.seq.lock().expect("sequencer poisoned");
            seq.broadcast = Arc::clone(&seq.queues);
        }
        for q in old_queues.iter() {
            q.close();
        }
        let old_workers = std::mem::replace(&mut self.workers, new_workers);
        for mut worker in old_workers {
            if let Some(handle) = worker.take() {
                let _ = handle.join();
            }
        }
        *self.shared.metrics.shards.lock().expect("metrics poisoned") = new_stages;
        self.config.shards = shards;
        self.rescale_counters.rescales += 1;
        self.rescale_counters.last_fence_pos = Some(fence_pos);
        self.rescale_counters.last_rescale_nanos = nanos;
        self.rescale_counters.shard_move_nanos = shard_move_nanos;
        self.shared.metrics.rescale.record(nanos);
        self.shared.metrics.journal.push(PipelineEvent::Rescale {
            from: old_n,
            to: shards,
            fence_pos,
            nanos,
        });
        Ok(())
    }

    /// One autoscaling tick: sample the load signals
    /// ([`crate::autoscale::LoadSignals`]), feed them to the
    /// controller, and when it decides to move, journal the decision
    /// ([`PipelineEvent::AutoscaleDecision`]) and run the
    /// [`rescale`](Self::rescale). Returns the `(from, to)` move when
    /// one happened. Call on any cadence — the controller's hysteresis
    /// is tick-based, not wall-clock-based.
    pub fn autoscale_tick(
        &mut self,
        controller: &mut crate::autoscale::Controller,
    ) -> Result<Option<(usize, usize)>, RuntimeError> {
        use crate::autoscale::{LoadSignals, ScaleDecision};
        let stats = self.stats();
        let mut signals =
            LoadSignals::from_stats(self.num_shards(), self.config.ingest.queue_capacity, &stats);
        signals.parks_total = self.shared.metrics.parks.get();
        match controller.observe(&signals) {
            ScaleDecision::Hold => Ok(None),
            ScaleDecision::Scale { to } => {
                let from = self.num_shards();
                self.shared
                    .metrics
                    .journal
                    .push(PipelineEvent::AutoscaleDecision {
                        from,
                        to,
                        position: self.next_position(),
                    });
                self.rescale(to)?;
                Ok(Some((from, to)))
            }
        }
    }

    /// Rebuild a runtime from a [`Snapshot`] with `shards` worker
    /// threads — the shard count (and hence the partition layout) may
    /// differ from the captured runtime's — and resume stamping at the
    /// snapshot's epoch position. Query ids are preserved, retired ids
    /// included, so pre-snapshot [`QueryId`]s stay valid. Subscriptions
    /// are not part of a snapshot; consumers re-subscribe on the
    /// restored runtime.
    pub fn restore(snapshot: &Snapshot, shards: usize) -> Result<Runtime, SnapshotError> {
        Self::restore_with(snapshot, shards)
    }

    /// [`restore`](Self::restore) from a full [`RuntimeConfig`] (or a
    /// bare shard count): the restored runtime takes every
    /// construction-time knob — ingest queues, journal capacity, e2e
    /// sampling — from the config, not from the captured runtime.
    pub fn restore_with(
        snapshot: &Snapshot,
        config: impl Into<RuntimeConfig>,
    ) -> Result<Runtime, SnapshotError> {
        use cer_common::wire::WireError;
        let restore_at = Instant::now();
        let mut rt = Runtime::build(config.into());
        {
            let mut seq = rt.shared.seq.lock().expect("sequencer poisoned");
            seq.next_pos = snapshot.position;
        }
        for record in &snapshot.queries {
            if record.id as usize != rt.queries.len() {
                return Err(SnapshotError::Wire(WireError::Corrupt(
                    "snapshot query ids not dense",
                )));
            }
            let Some(spec) = &record.spec else {
                // A retired id: keep the numbering (and the name for
                // `query_name`) without hosting anything.
                rt.push_retired_placeholder(record.name.clone());
                continue;
            };
            // Decode the captured shard replicas (the wire half), then
            // merge them through the same in-memory path `rescale`
            // uses; `register_with_state` re-replicates the result
            // across the new layout's home shards.
            let replicas = record
                .blobs
                .iter()
                .map(|blob| StreamingEvaluator::from_snapshot_bytes(spec.pcea.clone(), blob))
                .collect::<Result<Vec<_>, _>>()?;
            let mut eval = merge_replicas(replicas).unwrap_or_else(|| {
                let mut fresh =
                    StreamingEvaluator::with_window(spec.pcea.clone(), spec.window.clone());
                fresh.set_gc_every(spec.gc_every);
                fresh
            });
            // A blob whose captured state runs past the snapshot's
            // epoch position is corrupt (e.g. a bit-rotted header):
            // reject it here — decoding must never panic the process.
            if eval.next_position() > snapshot.position {
                return Err(SnapshotError::Wire(WireError::Corrupt(
                    "captured state ahead of the snapshot position",
                )));
            }
            eval.set_resume_position(snapshot.position);
            let id = rt
                .register_with_state(spec.clone(), Some(eval))
                .map_err(|_| SnapshotError::BadDefinition(spec.name.clone()))?;
            debug_assert_eq!(id.0, record.id);
        }
        rt.shared
            .metrics
            .restore
            .record_duration(restore_at.elapsed());
        rt.shared.metrics.journal.push(PipelineEvent::Restored {
            position: snapshot.position,
            shards: rt.num_shards(),
        });
        Ok(rt)
    }

    /// Record a retired query id at restore time: the id stays
    /// unregistered but keeps its slot (and name) so later ids line up.
    fn push_retired_placeholder(&mut self, name: String) {
        let mut seq = self.shared.seq.lock().expect("sequencer poisoned");
        let router = Arc::make_mut(&mut seq.router);
        router.metas.push(QueryMeta {
            alive: false,
            partition: Partition::ByQuery,
            listens: None,
            homes: Vec::new(),
        });
        drop(seq);
        self.queries.push(QueryInfo {
            name,
            alive: false,
            spec: None,
        });
    }

    /// Open a *durable* runtime on `dir`: recover whatever state the
    /// directory holds (latest checkpoint chain plus the WAL suffix —
    /// exactly [`recover`](Self::recover)), or initialize a fresh
    /// durable runtime when the directory is empty. Either way the
    /// returned runtime logs every replayable operation to the WAL and
    /// accepts [`checkpoint`](Self::checkpoint) calls.
    ///
    /// This is the serving-layer entry point: "point me at a data
    /// directory" works on first boot and after a crash alike.
    pub fn open_durable(
        dir: impl Into<PathBuf>,
        config: impl Into<RuntimeConfig>,
    ) -> Result<Runtime, DurabilityError> {
        Self::recover_inner(dir.into(), config.into(), true)
    }

    /// Strict crash recovery: rebuild the runtime `dir` was persisting
    /// — restore the latest manifest checkpoint, replay the WAL suffix
    /// (`wal_seq >=` the checkpoint's high-water) in stamp order, and
    /// resume stamping and logging where the crashed process stopped.
    /// A torn tail (a frame cut mid-write by the crash) is truncated
    /// away and journaled ([`PipelineEvent::WalTornTail`]); everything
    /// the crashed process *acknowledged as synced* is reproduced
    /// exactly — see the [module docs](crate::durability) for the
    /// replay-order soundness argument.
    ///
    /// Fails with [`DurabilityError::ManifestMissing`] when the
    /// directory holds neither a checkpoint manifest nor any WAL
    /// segment — recovering "nothing" is almost always an operator
    /// error (wrong path), so it is not silently turned into a fresh
    /// runtime; [`open_durable`](Self::open_durable) is the
    /// recover-or-init entry point.
    pub fn recover(
        dir: impl Into<PathBuf>,
        config: impl Into<RuntimeConfig>,
    ) -> Result<Runtime, DurabilityError> {
        Self::recover_inner(dir.into(), config.into(), false)
    }

    fn recover_inner(
        dir: PathBuf,
        config: RuntimeConfig,
        allow_fresh: bool,
    ) -> Result<Runtime, DurabilityError> {
        let config = config.validated();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create data dir", e))?;
        let wal_dir = dir.join("wal");
        std::fs::create_dir_all(&wal_dir).map_err(|e| io_err("create wal dir", e))?;
        let dcfg = config.durability;
        let (store, snapshot) = CheckpointStore::open(&dir, dcfg.full_checkpoint_every)?;
        let wal_present = std::fs::read_dir(&wal_dir)
            .map_err(|e| io_err("read wal dir", e))?
            .filter_map(|e| e.ok())
            .any(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            });
        if !allow_fresh && snapshot.is_none() && !wal_present {
            return Err(DurabilityError::ManifestMissing);
        }
        // Restore the checkpointed base state (or start empty), then
        // rewind the wal_seq counter to the checkpoint's high-water so
        // the replayed operations re-derive the crashed process's
        // numbering — each replayable op consumes exactly one seq, so
        // matching numbers mean matching order.
        let from_seq = snapshot.as_ref().map(|s| s.wal_seq).unwrap_or(0);
        let mut rt = match &snapshot {
            Some(snap) => Runtime::restore_with(snap, config)?,
            None => Runtime::build(config),
        };
        {
            let mut seq = rt.shared.seq.lock().expect("sequencer poisoned");
            seq.next_wal_seq = from_seq;
        }
        // Replay the suffix. The WAL is *not* attached yet, so replay
        // feeds the normal ingest/register paths without re-logging
        // anything. Every applied record is cross-checked against what
        // the runtime actually did (stamped position, issued id): a
        // divergence means the log and the checkpoint disagree, and
        // continuing would silently fork history.
        let replay = {
            let mut expected = from_seq;
            let mut apply = |rec: WalRecord| -> Result<(), DurabilityError> {
                if rec.seq != expected {
                    return Err(DurabilityError::RecoverMismatch(format!(
                        "wal replay expected record {expected}, found {}",
                        rec.seq
                    )));
                }
                expected += 1;
                match rec.op {
                    WalOp::Batch { start, tuples } => {
                        let receipt = rt
                            .shared
                            .ingest(&tuples, BackpressurePolicy::Block)
                            .map_err(|_| {
                                DurabilityError::RecoverMismatch(
                                    "runtime closed while replaying a batch".into(),
                                )
                            })?;
                        if receipt.positions.start != start {
                            return Err(DurabilityError::RecoverMismatch(format!(
                                "replayed batch stamped at {}, logged at {start}",
                                receipt.positions.start
                            )));
                        }
                    }
                    WalOp::Register { position, id, spec } => {
                        check_position("register", rt.next_position(), position)?;
                        let got = rt.register(spec).map_err(|e| {
                            DurabilityError::RecoverMismatch(format!(
                                "replayed register failed: {e}"
                            ))
                        })?;
                        if got.0 != id {
                            return Err(DurabilityError::RecoverMismatch(format!(
                                "replayed register yielded id {}, logged id {id}",
                                got.0
                            )));
                        }
                    }
                    WalOp::Deregister { position, id } => {
                        check_position("deregister", rt.next_position(), position)?;
                        rt.deregister(QueryId(id)).map_err(|e| {
                            DurabilityError::RecoverMismatch(format!(
                                "replayed deregister failed: {e}"
                            ))
                        })?;
                    }
                    WalOp::Replace { position, id, spec } => {
                        check_position("replace", rt.next_position(), position)?;
                        rt.replace(QueryId(id), spec).map_err(|e| {
                            DurabilityError::RecoverMismatch(format!(
                                "replayed replace failed: {e}"
                            ))
                        })?;
                    }
                }
                Ok(())
            };
            replay_dir(&wal_dir, from_seq, &mut apply)?
        };
        // Fence so replayed tuples are fully evaluated before the
        // runtime is handed out, then assert the counter lines up with
        // the log's end — one seq per record, no gaps on either side.
        rt.drain();
        {
            let seq = rt.shared.seq.lock().expect("sequencer poisoned");
            if seq.next_wal_seq != replay.next_seq {
                return Err(DurabilityError::RecoverMismatch(format!(
                    "replay consumed wal_seq up to {}, log ends at {}",
                    seq.next_wal_seq, replay.next_seq
                )));
            }
        }
        for torn in &replay.torn {
            rt.shared.metrics.journal.push(PipelineEvent::WalTornTail {
                position: rt.next_position(),
                bytes_dropped: torn.bytes_dropped,
            });
        }
        rt.shared.metrics.journal.push(PipelineEvent::Recovered {
            position: rt.next_position(),
            replayed: replay.replayed,
        });
        // Only now attach the WAL: stamping continues at the recovered
        // position, logging at the recovered seq, into a fresh active
        // segment (`resume` truncate-creates it, so repeated recoveries
        // reach a steady state instead of accreting stubs).
        let wal = Arc::new(Wal::new(wal_dir, &dcfg));
        wal.resume(replay.next_seq, replay.segments)?;
        let _ = rt.shared.wal.set(Arc::clone(&wal));
        rt.durability = Some(DurabilityHandle { dir, wal, store });
        Ok(rt)
    }

    /// Cut an incremental checkpoint to the data directory: one
    /// epoch-consistent [`snapshot`](Self::snapshot) (producers keep
    /// flowing), streamed to disk as a delta against the previous
    /// checkpoint's blobs, committed by the manifest rename — then WAL
    /// segments entirely below the cut are deleted. On return, recovery
    /// cost has been reset: a crash now replays only operations logged
    /// after this call.
    ///
    /// Errors leave the *previous* checkpoint intact — the manifest is
    /// replaced atomically, so a torn checkpoint write is swept as an
    /// orphan on the next open, never half-restored.
    pub fn checkpoint(&mut self) -> Result<CheckpointStats, DurabilityError> {
        if self.durability.is_none() {
            return Err(DurabilityError::NotDurable);
        }
        let snap = self.snapshot()?;
        let stats = {
            let handle = self.durability.as_mut().expect("durable checked above");
            let mut stats = handle.store.write(&snap)?;
            stats.wal_segments_removed = handle.wal.truncate_below(snap.wal_seq);
            stats
        };
        self.shared
            .metrics
            .ckpt_delta_ratio_bp
            .store(stats.delta_ratio_bp, std::sync::atomic::Ordering::Relaxed);
        self.shared
            .metrics
            .journal
            .push(PipelineEvent::CheckpointWritten {
                position: stats.position,
                epoch: stats.epoch,
                bytes: stats.bytes,
                full: stats.full,
            });
        Ok(stats)
    }

    /// A point-in-time [`DurabilityStatus`] — `None` for an in-memory
    /// runtime. `healthy: false` means a WAL append failed and logging
    /// stopped (the runtime keeps serving from memory — fail-open);
    /// operators should alert on it, since a crash from that state
    /// loses everything after the failure point.
    pub fn durability_status(&self) -> Option<DurabilityStatus> {
        let h = self.durability.as_ref()?;
        let last = h.store.last_entry();
        Some(DurabilityStatus {
            dir: h.dir.clone(),
            healthy: h.wal.healthy(),
            wal_segments: h.wal.segments(),
            wal_bytes: h.wal.bytes_total(),
            wal_records: h.wal.records_total(),
            last_checkpoint_epoch: last.map(|e| e.epoch),
            last_checkpoint_position: last.map(|e| e.position),
            chain_len: h.store.chain_len(),
        })
    }

    /// Hot-swap: replace query `id`'s automaton with a recompiled one,
    /// handing over the accumulated window state atomically in the
    /// stream order — tuples stamped before the call complete against
    /// the old automaton, tuples after against the new one, and partial
    /// matches survive the swap. The query keeps its id; its name and
    /// definition become the new spec's.
    ///
    /// The hand-off is accepted when the new automaton shares the old
    /// one's *skeleton* ([`Pcea::skeleton_compatible`]: same states,
    /// finals, and per-transition sources/targets/labels — predicates
    /// may differ, which is the recompile case) and the window keeps
    /// its kind. Within a kind any resize is allowed, with one
    /// documented widening caveat: runs already expired under the old
    /// bound are gone, so a widened window converges to its full span
    /// over one old window's worth of stream. The partition mode must
    /// be unchanged (re-sharding live state is a restore-level
    /// operation: [`Runtime::snapshot`] + [`Runtime::restore`]).
    ///
    /// On any incompatibility the swap is rejected and the old query
    /// keeps running untouched.
    pub fn replace(&mut self, id: QueryId, new: QuerySpec) -> Result<(), RuntimeError> {
        let info = self
            .queries
            .get(id.0 as usize)
            .filter(|info| info.alive)
            .ok_or(RuntimeError::UnknownQuery { id })?;
        let old = info.spec.as_ref().expect("live query retains its spec");
        if new.partition != old.partition {
            return Err(RuntimeError::ReplaceIncompatible {
                query: new.name,
                reason: "partition mode must match (snapshot/restore re-shards)",
            });
        }
        if let Partition::ByKey { pos } = new.partition {
            if !new.pcea.supports_key_partition(pos) {
                return Err(RuntimeError::KeyPartitionUnsound {
                    query: new.name,
                    pos,
                });
            }
        }
        if !old.pcea.skeleton_compatible(&new.pcea) {
            return Err(RuntimeError::ReplaceIncompatible {
                query: new.name,
                reason: "automaton skeleton differs (states, finals or transition shape)",
            });
        }
        let window_ok = matches!(
            (&old.window, &new.window),
            (WindowPolicy::Count(_), WindowPolicy::Count(_))
        ) || matches!(
            (&old.window, &new.window),
            (
                WindowPolicy::Time { ts_pos: a, .. },
                WindowPolicy::Time { ts_pos: b, .. },
            ) if a == b
        );
        if !window_ok {
            return Err(RuntimeError::ReplaceIncompatible {
                query: new.name,
                reason: "window kind (or timestamp attribute) differs",
            });
        }
        // Same durable pre-probe as `register`: reject before reserving
        // so a refused swap consumes no `wal_seq`.
        if self.shared.wal.get().is_some() {
            use cer_common::wire::{Wire, WireWriter};
            let mut probe = WireWriter::new();
            if new.encode(&mut probe).is_err() {
                return Err(RuntimeError::UnserializableQuery { query: new.name });
            }
        }
        let listens = new.pcea.relations();
        let (reply, replies) = channel();
        let (block, position, homes, wal_seq) = {
            // Same epoch rule as register/deregister: the routing-table
            // swap and the zero-width Replace block share one lock
            // acquisition, so the routing epoch agrees with the swap
            // point in position order.
            let mut seq = self.shared.seq.lock().expect("sequencer poisoned");
            let router = Arc::make_mut(&mut seq.router);
            let meta = &mut router.metas[id.0 as usize];
            meta.listens = listens.clone();
            let homes = meta.homes.clone();
            router.rebuild();
            let (block, position) = seq.reserve(0);
            let wal_seq = seq.take_wal_seq();
            for &shard in &homes {
                seq.queues[shard]
                    .stage_control(
                        block,
                        ShardMsg::Replace {
                            id,
                            pcea: new.pcea.clone(),
                            window: new.window.clone(),
                            gc_every: new.gc_every,
                            listens: listens.clone(),
                            reply: reply.clone(),
                        },
                    )
                    .expect("runtime not shut down");
            }
            (block, position, homes, wal_seq)
        };
        self.shared.finish_block(block);
        if self.shared.wal.get().is_some() {
            let payload = encode_replace(wal_seq, position, id.0, &new);
            self.shared.wal_append(wal_seq, position, payload);
        }
        self.shared
            .metrics
            .journal
            .push(PipelineEvent::QueryReplaced {
                query: id,
                position,
            });
        drop(reply);
        for _ in 0..homes.len() {
            let swapped = replies
                .recv()
                .expect("a runtime shard worker died during replace");
            assert!(swapped, "home shard did not host the replaced query");
        }
        let info = &mut self.queries[id.0 as usize];
        info.name = new.name.clone();
        info.spec = Some(new);
        Ok(())
    }

    /// Push one tuple; returns its completed matches across all queries.
    pub fn push(&mut self, t: &Tuple) -> Vec<MatchEvent> {
        self.push_batch(std::slice::from_ref(t))
    }

    /// Push a batch of tuples in stream order; returns every match the
    /// batch completed, sorted by `(position, query, valuation)`.
    ///
    /// This is the synchronous convenience path over the asynchronous
    /// pipeline: it ingests the batch (always blocking — the sync path
    /// never drops), fences all shards, and collects the delivered
    /// events. Matches from tuples concurrently ingested through an
    /// [`IngestHandle`] are folded into the same return value.
    pub fn push_batch(&mut self, batch: &[Tuple]) -> Vec<MatchEvent> {
        // An unbounded collector subscription opened before ingestion
        // sees every event the batch completes.
        let sub = self.shared.subs.subscribe(
            SubscriptionFilter::All,
            usize::MAX,
            BackpressurePolicy::Block,
        );
        self.shared
            .ingest(batch, BackpressurePolicy::Block)
            .expect("runtime not shut down");
        self.shared.barrier().expect("a runtime shard worker died");
        let mut out = sub.drain();
        out.sort();
        out
    }

    /// A cloneable producer handle onto the asynchronous ingestion
    /// pipeline. See [`crate::ingest`].
    pub fn ingest_handle(&self) -> IngestHandle {
        IngestHandle {
            shared: self.shared.clone(),
        }
    }

    /// Subscribe to match events with default channel knobs (capacity
    /// 65 536, [`BackpressurePolicy::Block`]). Use
    /// [`subscribe_with`](Self::subscribe_with) to pick the capacity and
    /// what happens when the consumer lags.
    pub fn subscribe(&self, filter: SubscriptionFilter) -> Subscription {
        self.subscribe_with(filter, 1 << 16, BackpressurePolicy::Block)
    }

    /// Subscribe with an explicit channel capacity (in events) and
    /// backpressure policy. `DropNewest` guarantees a stalled consumer
    /// never stalls ingestion; `Block` is lossless but a consumer that
    /// stops draining will eventually park the shard workers (and, once
    /// the ingest queues fill, blocking producers).
    ///
    /// `capacity` is clamped to at least 1: a zero-capacity `Block`
    /// channel could never admit an event, deadlocking the shard worker
    /// that publishes into it.
    pub fn subscribe_with(
        &self,
        filter: SubscriptionFilter,
        capacity: usize,
        policy: BackpressurePolicy,
    ) -> Subscription {
        self.shared.subs.subscribe(filter, capacity.max(1), policy)
    }

    /// Fence the pipeline: returns once every tuple ingested before the
    /// call has been evaluated and its match events delivered to the
    /// subscriber channels.
    ///
    /// With `Block` subscribers, make sure someone is draining them (or
    /// their capacity covers the in-flight events) — a full blocking
    /// channel parks the shard workers the fence is waiting on.
    pub fn drain(&self) {
        self.shared.barrier().expect("a runtime shard worker died");
    }

    /// Drain the pipeline, collect final statistics, and stop the shard
    /// workers. Outstanding [`IngestHandle`]s observe
    /// [`IngestError::RuntimeClosed`](crate::ingest::IngestError::RuntimeClosed)
    /// afterwards.
    ///
    /// The initial drain is a lossless fence, so it shares `drain`'s
    /// caveat about full `Block` subscribers. Dropping the runtime
    /// *without* `shutdown` never hangs, even with a live, undrained
    /// `Block` subscription: `Drop` closes the subscriber channels along
    /// with the queues, waking any parked worker (in-flight, undelivered
    /// events are discarded — already-queued ones stay readable).
    pub fn shutdown(self) -> RuntimeStats {
        self.drain();
        // `Drop` then closes the queues and joins the workers.
        self.stats()
    }

    /// Aggregate counters: per-query engine stats summed across shards,
    /// plus per-shard ingest queue occupancy.
    pub fn stats(&self) -> RuntimeStats {
        let queues = self.shared.queues();
        let (reply, results) = channel();
        for q in queues.iter() {
            q.push_control(ShardMsg::Stats {
                reply: reply.clone(),
            })
            .expect("runtime not shut down");
        }
        drop(reply);
        let mut agg: FxHashMap<QueryId, EngineStats> = FxHashMap::default();
        let mut breakdown: FxHashMap<QueryId, Vec<(usize, EngineStats)>> = FxHashMap::default();
        let mut shared_total = SharedEvalStats::default();
        let mut received = 0usize;
        for (shard, per_shard, sh) in results {
            received += 1;
            for (id, st) in per_shard {
                sum_stats(agg.entry(id).or_default(), &st);
                breakdown.entry(id).or_default().push((shard, st));
            }
            shared_total.distinct_predicates += sh.distinct_predicates;
            shared_total.referenced_predicates += sh.referenced_predicates;
            shared_total.prefilter_evals_done += sh.prefilter_evals_done;
            shared_total.prefilter_evals_saved += sh.prefilter_evals_saved;
            shared_total.groups += sh.groups;
            shared_total.group_sizes.extend(sh.group_sizes);
        }
        assert!(
            received == queues.len(),
            "a runtime shard worker died before reporting stats ({received}/{} replies)",
            queues.len()
        );
        let mut per_query: Vec<(QueryId, EngineStats)> = agg.into_iter().collect();
        per_query.sort_by_key(|(id, _)| *id);
        let mut per_query_shards: Vec<(QueryId, Vec<(usize, EngineStats)>)> =
            breakdown.into_iter().collect();
        per_query_shards.sort_by_key(|(id, _)| *id);
        for (_, shards) in &mut per_query_shards {
            shards.sort_by_key(|(shard, _)| *shard);
        }
        RuntimeStats {
            per_query,
            per_query_shards,
            shard_queues: queues.iter().map(|q| q.stats()).collect(),
            snapshots: self.snap_counters.clone(),
            rescales: self.rescale_counters.clone(),
            shared: shared_total,
        }
    }

    /// Drain the pipeline event journal: every [`PipelineEvent`] pushed
    /// since the last drain (or since start), each wrapped with its
    /// dense journal sequence number. The journal is bounded
    /// ([`crate::metrics::EVENT_JOURNAL_CAPACITY`]); overwritten events
    /// are counted by [`events_overwritten`](Self::events_overwritten),
    /// and the sequence numbers of the survivors make any gap visible.
    pub fn events(&self) -> Vec<JournalEntry<PipelineEvent>> {
        self.shared.metrics.journal.drain()
    }

    /// How many journal events were overwritten before being drained
    /// (monotone since start; 0 means [`events`](Self::events) saw
    /// everything).
    pub fn events_overwritten(&self) -> u64 {
        self.shared.metrics.journal.overwritten()
    }

    /// A point-in-time [`MetricsSnapshot`] of every pipeline metric:
    /// stage latency histograms, queue occupancy gauges, per-query
    /// engine counters and journal counters. The snapshot is plain data
    /// — merge it, encode it over the wire
    /// ([`cer_common::wire::Wire`]), or render it with
    /// [`metrics_text`](Self::metrics_text).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let stats = self.stats();
        let m = &self.shared.metrics;
        let mut out = MetricsSnapshot::new();

        // Pipeline-wide histograms.
        out.push_histogram(
            "cer_seq_reserve_nanos",
            "Sequencer position-block reservation latency",
            &[],
            m.seq_reserve.snapshot(),
        );
        out.push_histogram(
            "cer_producer_park_nanos",
            "Producer park duration under Block backpressure",
            &[],
            m.producer_park.snapshot(),
        );
        out.push_histogram(
            "cer_e2e_nanos",
            "End-to-end ingest-to-delivery latency (sampled)",
            &[],
            m.e2e.snapshot(),
        );
        out.push_histogram(
            "cer_delivery_nanos",
            "Match publish latency across subscriber channels",
            &[],
            self.shared.subs.delivery.snapshot(),
        );
        out.push_histogram(
            "cer_snapshot_serialize_nanos",
            "Per-shard serialize stall of snapshot fences",
            &[],
            m.snapshot_serialize.snapshot(),
        );
        out.push_histogram(
            "cer_restore_nanos",
            "Wall time of the restore that built this runtime",
            &[],
            m.restore.snapshot(),
        );
        out.push_histogram(
            "cer_rescale_nanos",
            "Fence-to-resume duration of live rescales",
            &[],
            m.rescale.snapshot(),
        );
        out.push_histogram(
            "cer_wal_fsync_nanos",
            "WAL fsync latency per group-commit sync",
            &[],
            m.wal_fsync.snapshot(),
        );

        // Per-shard stage histograms (same metric name, shard label —
        // grouped per name so the text exposition stays contiguous).
        let stages: Vec<Arc<ShardStageMetrics>> =
            m.shards.lock().expect("metrics poisoned").clone();
        for (i, sm) in stages.iter().enumerate() {
            out.push_histogram(
                "cer_shard_eval_nanos",
                "Whole drained-batch evaluation time per shard",
                &[("shard", i.to_string())],
                sm.eval.snapshot(),
            );
        }
        for (i, sm) in stages.iter().enumerate() {
            out.push_histogram(
                "cer_shared_prefilter_nanos",
                "Shared-prefilter phase of batch evaluation per shard",
                &[("shard", i.to_string())],
                sm.prefilter.snapshot(),
            );
        }
        for (i, sm) in stages.iter().enumerate() {
            out.push_histogram(
                "cer_eval_tail_nanos",
                "Fire/index/enumerate tail of batch evaluation per shard",
                &[("shard", i.to_string())],
                sm.eval_tail.snapshot(),
            );
        }
        let live_queues = self.shared.queues();
        for (i, q) in live_queues.iter().enumerate() {
            out.push_histogram(
                "cer_reorder_hold_nanos",
                "Time staged blocks waited in the reorder buffer",
                &[("shard", i.to_string())],
                q.reorder_hold.snapshot(),
            );
        }
        for (i, q) in live_queues.iter().enumerate() {
            out.push_histogram(
                "cer_queue_wait_nanos",
                "Time released batches waited in the shard FIFO",
                &[("shard", i.to_string())],
                q.queue_wait.snapshot(),
            );
        }

        // Pipeline-wide counters.
        out.push_counter(
            "cer_producer_parks_total",
            "Producer park episodes under Block backpressure",
            &[],
            m.parks.get(),
        );
        out.push_counter(
            "cer_tuples_dropped_total",
            "Tuples shed under DropNewest across shard queues",
            &[],
            m.drops.get(),
        );
        out.push_counter(
            "cer_events_pushed_total",
            "Pipeline events pushed to the journal",
            &[],
            m.journal.pushed(),
        );
        out.push_counter(
            "cer_events_overwritten_total",
            "Journal events overwritten before being drained",
            &[],
            m.journal.overwritten(),
        );
        out.push_counter(
            "cer_snapshots_taken_total",
            "Snapshots successfully taken",
            &[],
            stats.snapshots.snapshots_taken,
        );
        out.push_counter(
            "cer_rescales_total",
            "Live rescales successfully completed",
            &[],
            stats.rescales.rescales,
        );
        out.push_counter(
            "cer_wal_bytes_total",
            "Bytes appended to the write-ahead log",
            &[],
            m.wal_bytes.get(),
        );
        out.push_counter(
            "cer_wal_records_total",
            "Records appended to the write-ahead log",
            &[],
            m.wal_records.get(),
        );
        out.push_gauge(
            "cer_checkpoint_delta_ratio_bp",
            "Last checkpoint's bytes as basis points of its full-state size",
            &[],
            m.ckpt_delta_ratio_bp
                .load(std::sync::atomic::Ordering::Relaxed),
        );

        // Per-shard queue gauges and counters (from QueueStats; the
        // cumulative ones are monotone since start by contract).
        let queues = &stats.shard_queues;
        for (i, q) in queues.iter().enumerate() {
            out.push_gauge(
                "cer_queue_depth",
                "Tuples currently staged or queued per shard",
                &[("shard", i.to_string())],
                q.depth as u64,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_gauge(
                "cer_queue_high_water",
                "Maximum queue depth ever observed per shard",
                &[("shard", i.to_string())],
                q.high_water as u64,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_counter(
                "cer_queue_dropped_total",
                "Tuples dropped by DropNewest per shard",
                &[("shard", i.to_string())],
                q.dropped,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_counter(
                "cer_drained_batches_total",
                "Coalesced batches handed to the shard worker",
                &[("shard", i.to_string())],
                q.drained_batches,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_counter(
                "cer_drained_tuples_total",
                "Tuples handed to the shard worker",
                &[("shard", i.to_string())],
                q.drained_tuples,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_gauge(
                "cer_max_drain_batch",
                "Largest coalesced batch handed to the worker",
                &[("shard", i.to_string())],
                q.max_drain_batch as u64,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_gauge(
                "cer_reorder_pending",
                "Blocks currently held in the reorder buffer",
                &[("shard", i.to_string())],
                q.reorder_pending as u64,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_gauge(
                "cer_reorder_high_water",
                "Maximum reorder-buffer occupancy ever observed",
                &[("shard", i.to_string())],
                q.reorder_high_water as u64,
            );
        }
        for (i, q) in queues.iter().enumerate() {
            out.push_counter(
                "cer_reorder_released_total",
                "Entries released from the reorder buffer in block order",
                &[("shard", i.to_string())],
                q.reorder_released,
            );
        }

        // Per-query engine counters (summed across shards).
        let qlabel = |id: QueryId| {
            vec![
                ("query", id.0.to_string()),
                ("name", self.query_name(id).unwrap_or_default().to_string()),
            ]
        };
        for (id, st) in &stats.per_query {
            out.push_counter(
                "cer_query_positions_total",
                "Stream positions evaluated per query",
                &qlabel(*id),
                st.positions,
            );
        }
        for (id, st) in &stats.per_query {
            out.push_gauge(
                "cer_query_arena_nodes",
                "Live enumeration-arena nodes per query",
                &qlabel(*id),
                st.arena_nodes as u64,
            );
        }
        for (id, st) in &stats.per_query {
            out.push_counter(
                "cer_query_extends_total",
                "Extend operations per query",
                &qlabel(*id),
                st.extends,
            );
        }
        for (id, st) in &stats.per_query {
            out.push_counter(
                "cer_query_unions_total",
                "Union operations per query",
                &qlabel(*id),
                st.unions,
            );
        }
        for (id, st) in &stats.per_query {
            out.push_counter(
                "cer_query_ts_regressions_total",
                "Out-of-order timestamps clamped by time-window clocks",
                &qlabel(*id),
                st.ts_regressions,
            );
        }
        out
    }

    /// The Prometheus text exposition of
    /// [`metrics_snapshot`](Self::metrics_snapshot) — serve it from a
    /// `/metrics` endpoint as-is. The output always passes
    /// [`cer_obs::validate_prometheus_text`].
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus_text()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Push whatever the fsync policy was still holding to disk —
        // a clean shutdown loses nothing regardless of `EveryN` /
        // `IntervalMs` batching. (Crashes are the WAL's job.)
        if let Some(wal) = self.shared.wal.get() {
            let _ = wal.flush_sync();
        }
        self.shared.close();
        for worker in &mut self.workers {
            if let Some(handle) = worker.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Merge one query's shard replicas, in ascending shard order, into a
/// single evaluator: arenas concatenate with remapped node ids, the
/// `H` join indexes union, window clocks interleave, counters sum
/// ([`StreamingEvaluator::absorb_replica`]; [`crate::checkpoint`] for
/// the soundness argument). The shared in-memory half of the merge —
/// restore feeds it decoded blobs, rescale the moved evaluators
/// directly. `None` when the query had no replica.
fn merge_replicas(
    replicas: impl IntoIterator<Item = StreamingEvaluator>,
) -> Option<StreamingEvaluator> {
    let mut merged: Option<StreamingEvaluator> = None;
    for eval in replicas {
        match &mut merged {
            None => merged = Some(eval),
            Some(m) => m.absorb_replica(eval),
        }
    }
    merged
}

/// Replay cross-check: a logged control operation must re-apply at the
/// stream position it was originally stamped at, or the log and the
/// restored base state disagree.
fn check_position(op: &str, at: u64, logged: u64) -> Result<(), DurabilityError> {
    if at != logged {
        return Err(DurabilityError::RecoverMismatch(format!(
            "replayed {op} at position {at}, logged at {logged}"
        )));
    }
    Ok(())
}

fn sum_stats(acc: &mut EngineStats, st: &EngineStats) {
    acc.positions += st.positions;
    acc.arena_nodes += st.arena_nodes;
    acc.index_entries += st.index_entries;
    acc.extends += st.extends;
    acc.unions += st.unions;
    acc.collections += st.collections;
    acc.ts_regressions += st.ts_regressions;
}

/// Adopt an evaluator into a worker's hosting structures: intern its
/// predicate slots, append it to `queries`, and place it in a skeleton
/// group. The shared tail of the `Register` and `Install` (rescale
/// hand-off) paths; the caller rebuilds the local routing tables after
/// the last adoption.
#[allow(clippy::too_many_arguments)]
fn host_query(
    queries: &mut Vec<LocalQuery>,
    groups: &mut Vec<QueryGroup>,
    cache: &mut PredicateCache,
    id: QueryId,
    eval: StreamingEvaluator,
    partition: Partition,
    listens: Option<Vec<RelationId>>,
) {
    let slots = eval
        .pcea()
        .transitions()
        .iter()
        .map(|tr| cache.intern(&tr.unary))
        .collect();
    let k = queries.len();
    let last_regressions = eval.stats().ts_regressions;
    queries.push(LocalQuery {
        id,
        eval,
        partition,
        listens,
        slots,
        group: 0,
        last_regressions,
    });
    let gi = find_or_create_group(groups, queries, k);
    queries[k].group = gi;
    groups[gi].members.push(k);
}

/// One worker thread: hosts its queries' evaluators and a local routing
/// table, drains its bounded ingest queue in FIFO order — coalescing
/// consecutive tuple batches up to [`IngestConfig::max_batch`](crate::ingest::IngestConfig::max_batch) per
/// wakeup — evaluates each query's subsequence of the coalesced slice
/// through the vectorized batch path, and publishes completed matches
/// to the subscription registry.
///
/// The queue, stage histograms and shard geometry are spawn-time
/// parameters: they name the worker's *epoch*, and a rescale replaces
/// the whole worker set rather than mutating a running worker.
fn shard_loop(
    shared: Arc<IngestShared>,
    queue: Arc<ShardQueue>,
    stage: Arc<ShardStageMetrics>,
    shard_idx: usize,
    n_shards: usize,
) {
    let max_batch = shared.config.max_batch.max(1);
    let hasher = FxBuildHasher::default();
    let mut queries: Vec<LocalQuery> = Vec::new();
    // Skeleton-compatible query groups: selection (and, through the
    // predicate cache, unary prefiltering) is computed once per group
    // per batch, not once per query.
    let mut groups: Vec<QueryGroup> = Vec::new();
    // Shared unary-predicate cache: each distinct predicate is
    // evaluated at most once per tuple per drained batch, no matter how
    // many hosted queries reference it.
    let mut cache = PredicateCache::default();
    // Reusable per-batch scratch: which queries have a subscriber.
    let mut listening: Vec<bool> = Vec::new();
    // Local routing: relation → indices into `groups`.
    let mut routes: FxHashMap<RelationId, Vec<usize>> = FxHashMap::default();
    let mut wildcards: Vec<usize> = Vec::new();
    let rebuild_local = |groups: &[QueryGroup],
                         routes: &mut FxHashMap<RelationId, Vec<usize>>,
                         wildcards: &mut Vec<usize>| {
        routes.clear();
        wildcards.clear();
        for (gi, g) in groups.iter().enumerate() {
            match &g.listens {
                Some(rels) => {
                    for &rel in rels {
                        routes.entry(rel).or_default().push(gi);
                    }
                }
                None => wildcards.push(gi),
            }
        }
    };
    while let Some(msg) = queue.pop_batch(max_batch) {
        match msg {
            ShardMsg::Tuples(batch) => {
                let ingest_at = batch.ingest_at;
                let tuples = batch.tuples;
                let eval_at = std::time::Instant::now();
                // Enumerating outputs only pays off if someone is
                // listening for the query's events; gate once per batch
                // rather than per tuple (subscriber churn mid-batch is
                // already racy by construction).
                listening.clear();
                listening.extend(queries.iter().map(|q| shared.subs.has_subscriber_for(q.id)));
                cache.begin_batch(&tuples);
                // Select each *group's* subsequence of the slice (every
                // member shares listens and partition, so the group
                // selection is exactly each member's), then evaluate
                // query-major so the batch path sees the whole run at
                // once. Per-query event order (by position) is
                // unchanged; only the interleaving *across* queries
                // differs from tuple-major, and that was never ordered.
                for g in &mut groups {
                    g.sel.clear();
                }
                for (j, (_, t)) in tuples.iter().enumerate() {
                    let listed = routes
                        .get(&t.relation())
                        .map(Vec::as_slice)
                        .unwrap_or_default();
                    for &gi in listed.iter().chain(&wildcards) {
                        if let Partition::ByKey { pos } = groups[gi].partition {
                            // The batch was routed here for *some*
                            // query; this group only owns its key slice.
                            if key_shard(&hasher, t, pos, n_shards) != shard_idx {
                                continue;
                            }
                        }
                        groups[gi].sel.push(j as u32);
                    }
                }
                let last_pos = tuples.last().map(|(i, _)| *i).unwrap_or(0);
                for g in &groups {
                    if g.sel.is_empty() {
                        continue;
                    }
                    for &k in &g.members {
                        let q = &mut queries[k];
                        let id = q.id;
                        q.eval.push_slice_selected_shared(
                            &tuples,
                            &g.sel,
                            &q.slots,
                            &mut cache,
                            listening[k],
                            Some((&stage.prefilter, &stage.eval_tail)),
                            |position, v| {
                                shared.subs.publish(&MatchEvent {
                                    position,
                                    query: id,
                                    valuation: v.clone(),
                                });
                                if shared.metrics.e2e_should_sample() {
                                    shared.metrics.e2e.record_duration(ingest_at.elapsed());
                                }
                            },
                        );
                        // Journal new time-window clamps as a per-batch
                        // delta — one cheap counter read per query per
                        // batch, an event only when the stream actually
                        // violated the timestamp contract.
                        let regs = q.eval.stats().ts_regressions;
                        if regs > q.last_regressions {
                            let count = regs - q.last_regressions;
                            q.last_regressions = regs;
                            shared.metrics.journal.push(PipelineEvent::TsRegressions {
                                shard: shard_idx,
                                query: id,
                                position: last_pos,
                                count,
                            });
                        }
                    }
                }
                stage.eval.record_duration(eval_at.elapsed());
            }
            ShardMsg::Register {
                id,
                pcea,
                window,
                partition,
                gc_every,
                listens,
                state,
            } => {
                let eval = match state {
                    // Checkpoint restore: adopt the captured state.
                    Some(restored) => *restored,
                    None => {
                        let mut fresh = StreamingEvaluator::with_window(pcea, window);
                        fresh.set_gc_every(gc_every);
                        fresh
                    }
                };
                host_query(
                    &mut queries,
                    &mut groups,
                    &mut cache,
                    id,
                    eval,
                    partition,
                    listens,
                );
                rebuild_local(&groups, &mut routes, &mut wildcards);
            }
            ShardMsg::Extract { detach, reply } => {
                // Copy-on-fence: capture every hosted query at this
                // exact point of the released position order. Shards
                // hit their fences concurrently; producers keep staging
                // later blocks meanwhile. No bytes here — a snapshot
                // encodes the capture on the control plane, a rescale
                // never encodes at all.
                let started = std::time::Instant::now();
                if detach {
                    // Rescale hand-off: move the evaluators out and
                    // exit — this worker's queue is retired, and the
                    // reply doubles as proof the entire pre-fence
                    // backlog was evaluated.
                    let extracted = queries
                        .drain(..)
                        .map(|q| (q.id, Box::new(q.eval)))
                        .collect();
                    let _ = reply.send(ShardState {
                        shard: shard_idx,
                        queries: extracted,
                        capture_nanos: started.elapsed().as_nanos() as u64,
                    });
                    return;
                }
                let cloned = queries
                    .iter()
                    .map(|q| (q.id, Box::new(q.eval.clone())))
                    .collect();
                let _ = reply.send(ShardState {
                    shard: shard_idx,
                    queries: cloned,
                    capture_nanos: started.elapsed().as_nanos() as u64,
                });
            }
            ShardMsg::Install {
                queries: moved,
                reply,
            } => {
                // Rescale hand-off, receiving side: adopt the merged
                // evaluators before the first post-fence tuple (the
                // reorder stage held every later block back until this
                // message's block completed).
                for iq in moved {
                    host_query(
                        &mut queries,
                        &mut groups,
                        &mut cache,
                        iq.id,
                        *iq.state,
                        iq.partition,
                        iq.listens,
                    );
                }
                rebuild_local(&groups, &mut routes, &mut wildcards);
                let _ = reply.send(());
            }
            ShardMsg::Replace {
                id,
                pcea,
                window,
                gc_every,
                listens,
                reply,
            } => {
                let swapped = match queries.iter().position(|q| q.id == id) {
                    Some(k) => {
                        let old = queries.remove(k);
                        for &s in &old.slots {
                            cache.release(s);
                        }
                        let eval = old
                            .eval
                            .replace_automaton(pcea, window, gc_every)
                            .expect("replace compatibility validated by the control plane");
                        let slots = eval
                            .pcea()
                            .transitions()
                            .iter()
                            .map(|tr| cache.intern(&tr.unary))
                            .collect();
                        let last_regressions = eval.stats().ts_regressions;
                        queries.insert(
                            k,
                            LocalQuery {
                                id,
                                eval,
                                partition: old.partition,
                                listens,
                                slots,
                                group: 0,
                                last_regressions,
                            },
                        );
                        // The replacement may land in a different
                        // skeleton group than its predecessor, and
                        // `remove`/`insert` shifted member indices.
                        let gi = find_or_create_group(&mut groups, &queries, k);
                        queries[k].group = gi;
                        rebuild_groups(&mut groups, &mut queries);
                        rebuild_local(&groups, &mut routes, &mut wildcards);
                        true
                    }
                    None => false,
                };
                let _ = reply.send(swapped);
            }
            ShardMsg::Deregister { id, reply } => {
                let stats = match queries.iter().position(|q| q.id == id) {
                    Some(k) => {
                        let q = queries.remove(k);
                        for &s in &q.slots {
                            cache.release(s);
                        }
                        rebuild_groups(&mut groups, &mut queries);
                        rebuild_local(&groups, &mut routes, &mut wildcards);
                        Some(q.eval.stats())
                    }
                    None => None,
                };
                let _ = reply.send(stats);
            }
            ShardMsg::Stats { reply } => {
                let per_query = queries.iter().map(|q| (q.id, q.eval.stats())).collect();
                let shared_stats = SharedEvalStats {
                    distinct_predicates: cache.distinct_predicates(),
                    referenced_predicates: cache.referenced_predicates(),
                    prefilter_evals_done: cache.evals_done(),
                    prefilter_evals_saved: cache.evals_saved(),
                    groups: groups.len(),
                    group_sizes: groups.iter().map(|g| g.members.len()).collect(),
                };
                let _ = reply.send((shard_idx, per_query, shared_stats));
            }
            ShardMsg::Barrier { reply } => {
                let _ = reply.send(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::pcea::paper_p0;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    fn p0_runtime(shards: usize) -> (Runtime, QueryId, QueryId) {
        let (_, r, s, t) = Schema::sigma0();
        let mut rt = Runtime::new(shards);
        let a = rt
            .register(QuerySpec::new(
                "pinned",
                paper_p0(r, s, t),
                WindowPolicy::Count(100),
            ))
            .unwrap();
        let b = rt
            .register(
                QuerySpec::new("keyed", paper_p0(r, s, t), WindowPolicy::Count(100))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap();
        (rt, a, b)
    }

    #[test]
    fn two_queries_match_single_evaluators() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        for shards in [1usize, 2, 4] {
            let (mut rt, a, b) = p0_runtime(shards);
            let events = rt.push_batch(&stream);
            let mut single = StreamingEvaluator::new(paper_p0(r, s, t), 100);
            let mut want = Vec::new();
            for (n, tu) in stream.iter().enumerate() {
                for v in single.push_collect(tu) {
                    want.push((n as u64, v));
                }
            }
            want.sort();
            for q in [a, b] {
                let mut got: Vec<(u64, Valuation)> = events
                    .iter()
                    .filter(|e| e.query == q)
                    .map(|e| (e.position, e.valuation.clone()))
                    .collect();
                got.sort();
                assert_eq!(got, want, "query {q:?} with {shards} shards");
            }
        }
    }

    #[test]
    fn unsound_key_partition_rejected() {
        // A chain whose join key rotates positions cannot be partitioned
        // on a single attribute.
        use cer_automata::ccea::Ccea;
        use cer_automata::pcea::StateId;
        use cer_automata::predicate::{EqPredicate, UnaryPredicate};
        use cer_automata::valuation::{Label, LabelSet};
        let mut schema = Schema::new();
        let b0 = schema.add_relation("B0", 2).unwrap();
        let b1 = schema.add_relation("B1", 2).unwrap();
        let mut ccea = Ccea::new(2, 2);
        ccea.set_initial(
            StateId(0),
            UnaryPredicate::Relation(b0),
            LabelSet::singleton(Label(0)),
        );
        ccea.add_transition(
            StateId(0),
            UnaryPredicate::Relation(b1),
            EqPredicate::on_positions(b0, [1usize], b1, [0usize]),
            LabelSet::singleton(Label(1)),
            StateId(1),
        );
        ccea.mark_final(StateId(1));
        let pcea = ccea.to_pcea();
        assert!(!pcea.supports_key_partition(0));
        let mut rt = Runtime::new(2);
        let err = rt
            .register(
                QuerySpec::new("chain", pcea, WindowPolicy::Count(10))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::KeyPartitionUnsound { pos: 0, .. }
        ));
    }

    #[test]
    fn misaligned_join_keys_rejected_for_key_partition() {
        // Both sides *contain* attribute 0 in their keys, but at
        // swapped indices: the join a[0]==b[1] && a[1]==b[0] does not
        // imply equal partition values, so ByKey{0} must be rejected.
        use cer_automata::predicate::{EqPredicate, UnaryPredicate};
        use cer_automata::valuation::{Label, LabelSet};
        let mut schema = Schema::new();
        let a = schema.add_relation("A", 2).unwrap();
        let b = schema.add_relation("B", 2).unwrap();
        let dot = LabelSet::singleton(Label(0));
        let mut builder = cer_automata::pcea::PceaBuilder::new(1);
        let q0 = builder.add_state();
        let q1 = builder.add_state();
        builder.add_initial_transition(UnaryPredicate::Relation(a), dot, q0);
        builder.add_transition(
            vec![(
                q0,
                EqPredicate::on_positions(a, [0usize, 1], b, [1usize, 0]),
            )],
            UnaryPredicate::Relation(b),
            dot,
            q1,
        );
        builder.mark_final(q1);
        let pcea = builder.build();
        assert!(!pcea.supports_key_partition(0));
        assert!(!pcea.supports_key_partition(1));
        let mut rt = Runtime::new(2);
        let err = rt
            .register(
                QuerySpec::new("swapped", pcea, WindowPolicy::Count(10))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::KeyPartitionUnsound { .. }));
    }

    #[test]
    fn keyed_join_free_query_keeps_attribute_less_tuples() {
        // A join-free automaton passes key-partition validation
        // vacuously; tuples lacking the partition attribute must still
        // be routed (to the deterministic home shard), not dropped.
        use cer_automata::predicate::UnaryPredicate;
        use cer_automata::valuation::{Label, LabelSet};
        let mut schema = Schema::new();
        let unary = schema.add_relation("U", 1).unwrap();
        let mut builder = cer_automata::pcea::PceaBuilder::new(1);
        let q0 = builder.add_state();
        builder.add_initial_transition(
            UnaryPredicate::Relation(unary),
            LabelSet::singleton(Label(0)),
            q0,
        );
        builder.mark_final(q0);
        let pcea = builder.build();
        assert!(pcea.supports_key_partition(3), "vacuously sound");
        for shards in [1usize, 2, 4] {
            let mut rt = Runtime::new(shards);
            let id = rt
                .register(
                    QuerySpec::new("unary", pcea.clone(), WindowPolicy::Count(10))
                        // Partition attribute beyond the tuples' arity.
                        .with_partition(Partition::ByKey { pos: 3 }),
                )
                .unwrap();
            let stream: Vec<Tuple> = (0..5)
                .map(|k| cer_common::tuple::tup(unary, [k as i64]))
                .collect();
            let events = rt.push_batch(&stream);
            assert_eq!(events.len(), 5, "shards={shards}");
            assert!(events.iter().all(|e| e.query == id));
        }
    }

    #[test]
    fn batching_is_transparent() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let (mut whole_rt, ..) = p0_runtime(3);
        let whole = whole_rt.push_batch(&stream);
        let (mut split_rt, ..) = p0_runtime(3);
        let mut split = Vec::new();
        for chunk in stream.chunks(3) {
            split.extend(split_rt.push_batch(chunk));
        }
        assert_eq!(whole, split);
        assert_eq!(whole_rt.next_position(), stream.len() as u64);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let (mut rt, a, b) = p0_runtime(4);
        rt.push_batch(&stream);
        let stats = rt.stats();
        assert_eq!(stats.per_query.len(), 2);
        assert_eq!(
            (rt.query_name(a), rt.query_name(b)),
            (Some("pinned"), Some("keyed"))
        );
        let get = |q: QueryId| stats.per_query.iter().find(|(id, _)| *id == q).unwrap().1;
        // Both queries saw all 8 σ0 tuples (all are relevant relations).
        assert_eq!(get(a).positions, 8);
        assert_eq!(get(b).positions, 8);
        assert!(get(a).extends > 0 && get(b).extends > 0);
        // Queue occupancy: drained back to zero, but the high-water
        // mark recorded the batch passing through.
        assert_eq!(stats.shard_queues.len(), 4);
        assert!(stats.shard_queues.iter().all(|q| q.depth == 0));
        assert!(stats.shard_queues.iter().any(|q| q.high_water > 0));
        assert!(stats.shard_queues.iter().all(|q| q.dropped == 0));
    }

    #[test]
    fn foreign_relations_are_not_routed() {
        let (mut schema, r, s, t) = Schema::sigma0();
        let noise = schema.add_relation("NOISE", 1).unwrap();
        let mut rt = Runtime::new(2);
        let q = rt
            .register(QuerySpec::new(
                "p0",
                paper_p0(r, s, t),
                WindowPolicy::Count(100),
            ))
            .unwrap();
        let mut stream = Vec::new();
        for tu in sigma0_prefix(r, s, t) {
            stream.push(cer_common::tuple::tup(noise, [1i64]));
            stream.push(tu);
        }
        let events = rt.push_batch(&stream);
        // Matches still complete (noise consumed global positions: the
        // completing R sits at interleaved position 11).
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.query == q && e.position == 11));
        // The shard evaluator never saw the noise tuples.
        let stats = rt.stats();
        assert_eq!(stats.per_query[0].1.positions, 8);
    }

    #[test]
    fn deregister_returns_final_stats_and_stops_routing() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        for shards in [1usize, 3] {
            let (mut rt, a, b) = p0_runtime(shards);
            let first = rt.push_batch(&stream);
            assert_eq!(first.iter().filter(|e| e.query == b).count(), 2);
            let final_stats = rt.deregister(b).unwrap();
            assert_eq!(final_stats.positions, 8, "shards={shards}");
            assert!(final_stats.extends > 0);
            assert_eq!(rt.num_queries(), 1);
            assert_eq!(rt.query_name(b), Some("keyed"), "name outlives the query");
            // Retired id: a second deregister is rejected.
            assert_eq!(rt.deregister(b), Err(RuntimeError::UnknownQuery { id: b }));
            // The survivor keeps matching (the wide window also joins
            // across batches); the dead query stays silent and no
            // longer accrues stats.
            let second = rt.push_batch(&stream);
            assert!(second.iter().all(|e| e.query == a));
            assert!(second.iter().filter(|e| e.query == a).count() >= 2);
            let stats = rt.stats();
            assert!(stats.per_query.iter().all(|(id, _)| *id != b));
        }
    }

    #[test]
    fn deregister_unknown_id_rejected() {
        let mut rt = Runtime::new(2);
        assert_eq!(
            rt.deregister(QueryId(7)),
            Err(RuntimeError::UnknownQuery { id: QueryId(7) })
        );
    }

    #[test]
    fn query_name_of_unknown_id_is_none_not_a_panic() {
        let (_, r, s, t) = Schema::sigma0();
        let mut rt = Runtime::new(2);
        // Probing a never-registered id must not crash.
        assert_eq!(rt.query_name(QueryId(3)), None);
        let q = rt
            .register(QuerySpec::new(
                "p0",
                paper_p0(r, s, t),
                WindowPolicy::Count(10),
            ))
            .unwrap();
        assert_eq!(rt.query_name(q), Some("p0"));
        assert_eq!(rt.query_name(QueryId(q.0 + 1)), None);
    }

    /// Where each registered query's pinned home landed, read from the
    /// router metadata.
    fn pinned_homes(rt: &Runtime) -> Vec<usize> {
        let seq = rt.shared.seq.lock().unwrap();
        seq.router
            .metas
            .iter()
            .filter(|m| m.alive && m.partition == Partition::ByQuery)
            .map(|m| m.homes[0])
            .collect()
    }

    #[test]
    fn pinned_placement_balances_after_churn() {
        let (_, r, s, t) = Schema::sigma0();
        let mut rt = Runtime::new(2);
        let spec = || QuerySpec::new("pinned", paper_p0(r, s, t), WindowPolicy::Count(10));
        // Fresh runtime: four pinned queries spread 2/2.
        let ids: Vec<QueryId> = (0..4).map(|_| rt.register(spec()).unwrap()).collect();
        assert_eq!(pinned_homes(&rt), vec![0, 1, 0, 1]);
        // Deregister both queries on shard 0. A cursor that ignores
        // deregistration would now alternate 0,1 and leave shard 1 with
        // twice the load; least-loaded placement refills shard 0 first.
        rt.deregister(ids[0]).unwrap();
        rt.deregister(ids[2]).unwrap();
        rt.register(spec()).unwrap();
        rt.register(spec()).unwrap();
        assert_eq!(pinned_homes(&rt), vec![1, 1, 0, 0]);
        // The next two split across the (now equal) shards again.
        rt.register(spec()).unwrap();
        rt.register(spec()).unwrap();
        let homes = pinned_homes(&rt);
        assert_eq!(homes.iter().filter(|&&s| s == 0).count(), 3);
        assert_eq!(homes.iter().filter(|&&s| s == 1).count(), 3);
        // The placement still evaluates correctly after the churn.
        let events = rt.push_batch(&sigma0_prefix(r, s, t));
        assert_eq!(events.len(), 2 * rt.num_queries());
    }
}

//! The multi-query runtime: many registered queries, one stream,
//! key-partitioned sharding across worker threads.
//!
//! The [`StreamingEvaluator`] hosts *one* automaton. A production
//! deployment serves many standing queries over one firehose, so this
//! module layers a [`Runtime`] on top:
//!
//! * **registry** — queries compiled from any front-end (the HCQ
//!   compiler, the pattern language, or hand-built PCEA) are registered
//!   as [`QuerySpec`]s and identified by [`QueryId`];
//! * **routing** — each stream tuple is routed only to the queries
//!   whose automaton can react to its relation
//!   ([`Pcea::relations`]); queries with unconfined predicates see
//!   every tuple;
//! * **sharding** — queries are spread across `n` worker threads.
//!   [`Partition::ByQuery`] pins a query to one shard (always sound);
//!   [`Partition::ByKey`] *replicates* a query across all shards and
//!   routes each tuple by the hash of its partition attribute, so a
//!   single hot query scales across cores. Key partitioning is sound
//!   exactly when every join projects the partition attribute on both
//!   sides, which [`Runtime::register`] validates via
//!   [`Pcea::supports_key_partition`];
//! * **batching** — [`Runtime::push_batch`] ships whole batches to the
//!   shards and collects the completed matches, amortizing channel
//!   traffic.
//!
//! Outputs are *identical* to running one [`StreamingEvaluator`] per
//! query over the full stream: shard evaluators are fed global stream
//! positions via [`StreamingEvaluator::push_at`], so window semantics
//! and reported positions do not depend on the shard count. (For time
//! windows this relies on the documented non-decreasing-timestamp
//! contract.)
//!
//! ```
//! use cer_core::runtime::{Partition, QuerySpec, Runtime};
//! use cer_core::window::WindowPolicy;
//! use cer_automata::pcea::paper_p0;
//! use cer_common::gen::sigma0_prefix;
//! use cer_common::Schema;
//!
//! let (_, r, s, t) = Schema::sigma0();
//! let mut rt = Runtime::new(4);
//! // Two standing queries over the same stream, one key-partitioned.
//! let narrow = rt
//!     .register(QuerySpec::new("p0_w5", paper_p0(r, s, t), WindowPolicy::Count(5)))
//!     .unwrap();
//! let wide = rt
//!     .register(
//!         QuerySpec::new("p0_wide", paper_p0(r, s, t), WindowPolicy::Count(100))
//!             .with_partition(Partition::ByKey { pos: 0 }),
//!     )
//!     .unwrap();
//! let events = rt.push_batch(&sigma0_prefix(r, s, t));
//! let narrow_hits = events.iter().filter(|e| e.query == narrow).count();
//! let wide_hits = events.iter().filter(|e| e.query == wide).count();
//! assert_eq!((narrow_hits, wide_hits), (2, 2));
//! assert!(events.iter().all(|e| e.position == 5));
//! ```

use crate::evaluator::{EngineStats, StreamingEvaluator};
use crate::window::WindowPolicy;
use cer_automata::pcea::Pcea;
use cer_automata::valuation::Valuation;
use cer_common::hash::{FxBuildHasher, FxHashMap};
use cer_common::{RelationId, Tuple};
use std::fmt;
use std::hash::BuildHasher;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

/// Identifier of a query registered in a [`Runtime`], dense from 0 in
/// registration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

/// How a registered query is spread across the runtime's shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// The query lives on exactly one shard (chosen round-robin).
    /// Always sound; multi-query workloads scale because different
    /// queries land on different shards.
    ByQuery,
    /// The query is replicated on every shard and each tuple is routed
    /// by the hash of its value at tuple position `pos`. Sound exactly
    /// when every join of the automaton projects that attribute on both
    /// sides ([`Pcea::supports_key_partition`]); lets a *single* hot
    /// query scale across cores.
    ByKey {
        /// Tuple position holding the partition attribute.
        pos: usize,
    },
}

/// A query ready for registration: an automaton plus its window policy
/// and placement.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Human-readable name, echoed in errors and stats.
    pub name: String,
    /// The compiled automaton.
    pub pcea: Pcea,
    /// The sliding-window policy.
    pub window: WindowPolicy,
    /// Shard placement.
    pub partition: Partition,
    /// GC cadence forwarded to the shard evaluators (0 = automatic).
    pub gc_every: u64,
}

impl QuerySpec {
    /// A query pinned to one shard ([`Partition::ByQuery`]).
    pub fn new(name: impl Into<String>, pcea: Pcea, window: WindowPolicy) -> Self {
        QuerySpec {
            name: name.into(),
            pcea,
            window,
            partition: Partition::ByQuery,
            gc_every: 0,
        }
    }

    /// Override the placement.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Override the GC cadence.
    pub fn with_gc_every(mut self, every: u64) -> Self {
        self.gc_every = every;
        self
    }
}

/// One completed match: which query fired, at which global stream
/// position, with which valuation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatchEvent {
    /// Global position of the completing tuple.
    pub position: u64,
    /// The query that matched.
    pub query: QueryId,
    /// The match itself.
    pub valuation: Valuation,
}

/// Why a registration was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// [`Partition::ByKey`] was requested but some join of the automaton
    /// does not project the partition attribute on both sides, so runs
    /// could cross shard boundaries and outputs would be lost.
    KeyPartitionUnsound {
        /// The query's name.
        query: String,
        /// The requested partition attribute.
        pos: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::KeyPartitionUnsound { query, pos } => write!(
                f,
                "query `{query}`: key partitioning on tuple position {pos} is unsound — \
                 every join must project that attribute on both sides"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Per-query counters aggregated across shards.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// `(query, per-shard engine counters summed)` in id order.
    pub per_query: Vec<(QueryId, EngineStats)>,
}

/// What a shard worker hosts for one registered query.
struct LocalQuery {
    id: QueryId,
    eval: StreamingEvaluator,
    partition: Partition,
}

/// Messages from the runtime to a shard worker.
enum Job {
    Register {
        id: QueryId,
        pcea: Pcea,
        window: WindowPolicy,
        partition: Partition,
        gc_every: u64,
        listens: Option<Vec<RelationId>>,
    },
    Batch {
        tuples: Vec<(u64, Tuple)>,
        reply: Sender<Vec<MatchEvent>>,
    },
    Stats {
        reply: Sender<Vec<(QueryId, EngineStats)>>,
    },
}

struct Shard {
    tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// Registry metadata the router keeps per query.
struct QueryInfo {
    name: String,
}

/// The multi-query, sharded streaming runtime. See the [module
/// docs](self) for the architecture.
pub struct Runtime {
    shards: Vec<Shard>,
    queries: Vec<QueryInfo>,
    /// Shards hosting a pinned query that listens to this relation.
    fixed_routes: FxHashMap<RelationId, Vec<usize>>,
    /// Partition-attribute positions of key-partitioned queries
    /// listening to this relation.
    key_routes: FxHashMap<RelationId, Vec<usize>>,
    /// Shards hosting pinned queries with unconfined predicates.
    wildcard_fixed: Vec<usize>,
    /// Partition positions of key-partitioned unconfined queries.
    wildcard_keys: Vec<usize>,
    /// Round-robin cursor for pinned queries.
    next_shard: usize,
    next_pos: u64,
    /// Per-shard staging buffers; each batch hands its contents off to
    /// the shard workers (the allocations travel with the job).
    staging: Vec<Vec<(u64, Tuple)>>,
    hasher: FxBuildHasher,
}

impl Runtime {
    /// A runtime with `shards` worker threads (clamped to `1..=64`).
    pub fn new(shards: usize) -> Self {
        let n = shards.clamp(1, 64);
        let shards = (0..n)
            .map(|idx| {
                let (tx, rx) = channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("cer-shard-{idx}"))
                    .spawn(move || shard_loop(rx, idx, n))
                    .expect("spawn shard worker");
                Shard {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        Runtime {
            shards,
            queries: Vec::new(),
            fixed_routes: FxHashMap::default(),
            key_routes: FxHashMap::default(),
            wildcard_fixed: Vec::new(),
            wildcard_keys: Vec::new(),
            next_shard: 0,
            next_pos: 0,
            staging: vec![Vec::new(); n],
            hasher: FxBuildHasher::default(),
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The global position the next pushed tuple will occupy.
    pub fn next_position(&self) -> u64 {
        self.next_pos
    }

    /// The name a query was registered under.
    pub fn query_name(&self, id: QueryId) -> &str {
        &self.queries[id.0 as usize].name
    }

    /// Register a query; tuples pushed from now on are evaluated against
    /// it. Key-partitioned placements are validated for soundness.
    pub fn register(&mut self, spec: QuerySpec) -> Result<QueryId, RuntimeError> {
        if let Partition::ByKey { pos } = spec.partition {
            if !spec.pcea.supports_key_partition(pos) {
                return Err(RuntimeError::KeyPartitionUnsound {
                    query: spec.name,
                    pos,
                });
            }
        }
        let id = QueryId(self.queries.len() as u32);
        let listens = spec.pcea.relations();
        let targets: Vec<usize> = match spec.partition {
            Partition::ByQuery => {
                let shard = self.next_shard;
                self.next_shard = (self.next_shard + 1) % self.shards.len();
                match &listens {
                    Some(rels) => {
                        for &rel in rels {
                            let route = self.fixed_routes.entry(rel).or_default();
                            if !route.contains(&shard) {
                                route.push(shard);
                            }
                        }
                    }
                    None => {
                        if !self.wildcard_fixed.contains(&shard) {
                            self.wildcard_fixed.push(shard);
                        }
                    }
                }
                vec![shard]
            }
            Partition::ByKey { pos } => {
                match &listens {
                    Some(rels) => {
                        for &rel in rels {
                            let route = self.key_routes.entry(rel).or_default();
                            if !route.contains(&pos) {
                                route.push(pos);
                            }
                        }
                    }
                    None => {
                        if !self.wildcard_keys.contains(&pos) {
                            self.wildcard_keys.push(pos);
                        }
                    }
                }
                (0..self.shards.len()).collect()
            }
        };
        for &shard in &targets {
            self.send(
                shard,
                Job::Register {
                    id,
                    pcea: spec.pcea.clone(),
                    window: spec.window.clone(),
                    partition: spec.partition,
                    gc_every: spec.gc_every,
                    listens: listens.clone(),
                },
            );
        }
        self.queries.push(QueryInfo { name: spec.name });
        Ok(id)
    }

    /// Push one tuple; returns its completed matches across all queries.
    pub fn push(&mut self, t: &Tuple) -> Vec<MatchEvent> {
        self.push_batch(std::slice::from_ref(t))
    }

    /// Push a batch of tuples in stream order; returns every match the
    /// batch completed, sorted by `(position, query, valuation)`.
    ///
    /// Routing happens once per tuple; shard workers evaluate their
    /// slice of the batch in parallel.
    pub fn push_batch(&mut self, batch: &[Tuple]) -> Vec<MatchEvent> {
        for t in batch {
            let i = self.next_pos;
            self.next_pos += 1;
            let rel = t.relation();
            let mut mask: u64 = 0;
            if let Some(route) = self.fixed_routes.get(&rel) {
                for &s in route {
                    mask |= 1 << s;
                }
            }
            for &s in &self.wildcard_fixed {
                mask |= 1 << s;
            }
            for &pos in self
                .key_routes
                .get(&rel)
                .map(Vec::as_slice)
                .unwrap_or_default()
                .iter()
                .chain(&self.wildcard_keys)
            {
                mask |= 1 << key_shard(&self.hasher, t, pos, self.shards.len());
            }
            let mut m = mask;
            while m != 0 {
                let s = m.trailing_zeros() as usize;
                m &= m - 1;
                self.staging[s].push((i, t.clone()));
            }
        }
        let (reply, results) = channel();
        let mut outstanding = 0usize;
        for s in 0..self.shards.len() {
            if self.staging[s].is_empty() {
                continue;
            }
            let tuples = std::mem::take(&mut self.staging[s]);
            self.send(
                s,
                Job::Batch {
                    tuples,
                    reply: reply.clone(),
                },
            );
            outstanding += 1;
        }
        drop(reply);
        let mut out = Vec::new();
        let mut received = 0usize;
        for events in results {
            out.extend(events);
            received += 1;
        }
        assert!(
            received == outstanding,
            "a runtime shard worker died mid-batch ({received}/{outstanding} replies)"
        );
        out.sort();
        out
    }

    /// Aggregate engine counters per query, summed across shards.
    pub fn stats(&self) -> RuntimeStats {
        let (reply, results) = channel();
        let mut outstanding = 0usize;
        for s in 0..self.shards.len() {
            self.send(
                s,
                Job::Stats {
                    reply: reply.clone(),
                },
            );
            outstanding += 1;
        }
        drop(reply);
        let mut agg: FxHashMap<QueryId, EngineStats> = FxHashMap::default();
        let mut received = 0usize;
        for per_shard in results {
            received += 1;
            for (id, st) in per_shard {
                let e = agg.entry(id).or_default();
                e.positions += st.positions;
                e.arena_nodes += st.arena_nodes;
                e.index_entries += st.index_entries;
                e.extends += st.extends;
                e.unions += st.unions;
                e.collections += st.collections;
            }
        }
        assert!(
            received == outstanding,
            "a runtime shard worker died before reporting stats ({received}/{outstanding} replies)"
        );
        let mut per_query: Vec<(QueryId, EngineStats)> = agg.into_iter().collect();
        per_query.sort_by_key(|(id, _)| *id);
        RuntimeStats { per_query }
    }

    fn send(&self, shard: usize, job: Job) {
        self.shards[shard]
            .tx
            .as_ref()
            .expect("runtime not shut down")
            .send(job)
            .expect("runtime shard worker terminated");
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            drop(shard.tx.take());
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// One worker thread: hosts its queries' evaluators and a local routing
/// table, processes batches in position order.
fn shard_loop(rx: std::sync::mpsc::Receiver<Job>, shard_idx: usize, n_shards: usize) {
    let hasher = FxBuildHasher::default();
    let mut queries: Vec<LocalQuery> = Vec::new();
    // Local routing: relation → indices into `queries`.
    let mut routes: FxHashMap<RelationId, Vec<usize>> = FxHashMap::default();
    let mut wildcards: Vec<usize> = Vec::new();
    for job in rx {
        match job {
            Job::Register {
                id,
                pcea,
                window,
                partition,
                gc_every,
                listens,
            } => {
                let mut eval = StreamingEvaluator::with_window(pcea, window);
                eval.set_gc_every(gc_every);
                let k = queries.len();
                match listens {
                    Some(rels) => {
                        for rel in rels {
                            routes.entry(rel).or_default().push(k);
                        }
                    }
                    None => wildcards.push(k),
                }
                queries.push(LocalQuery {
                    id,
                    eval,
                    partition,
                });
            }
            Job::Batch { tuples, reply } => {
                let mut out = Vec::new();
                for (i, t) in &tuples {
                    let listed = routes
                        .get(&t.relation())
                        .map(Vec::as_slice)
                        .unwrap_or_default();
                    for &k in listed.iter().chain(&wildcards) {
                        let q = &mut queries[k];
                        if let Partition::ByKey { pos } = q.partition {
                            // The batch was routed here for *some*
                            // query; this one only owns its key slice.
                            if key_shard(&hasher, t, pos, n_shards) != shard_idx {
                                continue;
                            }
                        }
                        q.eval.push_at(t, *i);
                        let id = q.id;
                        q.eval.for_each_output(|v| {
                            out.push(MatchEvent {
                                position: *i,
                                query: id,
                                valuation: v.clone(),
                            });
                        });
                    }
                }
                let _ = reply.send(out);
            }
            Job::Stats { reply } => {
                let _ = reply.send(queries.iter().map(|q| (q.id, q.eval.stats())).collect());
            }
        }
    }
}

/// Shard a tuple belongs to under key partitioning on position `pos`:
/// the hash of its partition value, or a deterministic home shard (0)
/// when the tuple lacks that attribute. Router and workers must agree
/// on this function. Attribute-less tuples cannot join under a
/// partition-sound automaton (their key extraction is undefined), so a
/// fixed home shard preserves outputs — their matches are self-contained.
fn key_shard(hasher: &FxBuildHasher, t: &Tuple, pos: usize, n_shards: usize) -> usize {
    match t.values().get(pos) {
        Some(v) => (hasher.hash_one(v) % n_shards as u64) as usize,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::pcea::paper_p0;
    use cer_common::gen::sigma0_prefix;
    use cer_common::Schema;

    fn p0_runtime(shards: usize) -> (Runtime, QueryId, QueryId) {
        let (_, r, s, t) = Schema::sigma0();
        let mut rt = Runtime::new(shards);
        let a = rt
            .register(QuerySpec::new(
                "pinned",
                paper_p0(r, s, t),
                WindowPolicy::Count(100),
            ))
            .unwrap();
        let b = rt
            .register(
                QuerySpec::new("keyed", paper_p0(r, s, t), WindowPolicy::Count(100))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap();
        (rt, a, b)
    }

    #[test]
    fn two_queries_match_single_evaluators() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        for shards in [1usize, 2, 4] {
            let (mut rt, a, b) = p0_runtime(shards);
            let events = rt.push_batch(&stream);
            let mut single = StreamingEvaluator::new(paper_p0(r, s, t), 100);
            let mut want = Vec::new();
            for (n, tu) in stream.iter().enumerate() {
                for v in single.push_collect(tu) {
                    want.push((n as u64, v));
                }
            }
            want.sort();
            for q in [a, b] {
                let mut got: Vec<(u64, Valuation)> = events
                    .iter()
                    .filter(|e| e.query == q)
                    .map(|e| (e.position, e.valuation.clone()))
                    .collect();
                got.sort();
                assert_eq!(got, want, "query {q:?} with {shards} shards");
            }
        }
    }

    #[test]
    fn unsound_key_partition_rejected() {
        // A chain whose join key rotates positions cannot be partitioned
        // on a single attribute.
        use cer_automata::ccea::Ccea;
        use cer_automata::pcea::StateId;
        use cer_automata::predicate::{EqPredicate, UnaryPredicate};
        use cer_automata::valuation::{Label, LabelSet};
        let mut schema = Schema::new();
        let b0 = schema.add_relation("B0", 2).unwrap();
        let b1 = schema.add_relation("B1", 2).unwrap();
        let mut ccea = Ccea::new(2, 2);
        ccea.set_initial(
            StateId(0),
            UnaryPredicate::Relation(b0),
            LabelSet::singleton(Label(0)),
        );
        ccea.add_transition(
            StateId(0),
            UnaryPredicate::Relation(b1),
            EqPredicate::on_positions(b0, [1usize], b1, [0usize]),
            LabelSet::singleton(Label(1)),
            StateId(1),
        );
        ccea.mark_final(StateId(1));
        let pcea = ccea.to_pcea();
        assert!(!pcea.supports_key_partition(0));
        let mut rt = Runtime::new(2);
        let err = rt
            .register(
                QuerySpec::new("chain", pcea, WindowPolicy::Count(10))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::KeyPartitionUnsound { pos: 0, .. }
        ));
    }

    #[test]
    fn misaligned_join_keys_rejected_for_key_partition() {
        // Both sides *contain* attribute 0 in their keys, but at
        // swapped indices: the join a[0]==b[1] && a[1]==b[0] does not
        // imply equal partition values, so ByKey{0} must be rejected.
        use cer_automata::predicate::{EqPredicate, UnaryPredicate};
        use cer_automata::valuation::{Label, LabelSet};
        let mut schema = Schema::new();
        let a = schema.add_relation("A", 2).unwrap();
        let b = schema.add_relation("B", 2).unwrap();
        let dot = LabelSet::singleton(Label(0));
        let mut builder = cer_automata::pcea::PceaBuilder::new(1);
        let q0 = builder.add_state();
        let q1 = builder.add_state();
        builder.add_initial_transition(UnaryPredicate::Relation(a), dot, q0);
        builder.add_transition(
            vec![(
                q0,
                EqPredicate::on_positions(a, [0usize, 1], b, [1usize, 0]),
            )],
            UnaryPredicate::Relation(b),
            dot,
            q1,
        );
        builder.mark_final(q1);
        let pcea = builder.build();
        assert!(!pcea.supports_key_partition(0));
        assert!(!pcea.supports_key_partition(1));
        let mut rt = Runtime::new(2);
        let err = rt
            .register(
                QuerySpec::new("swapped", pcea, WindowPolicy::Count(10))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::KeyPartitionUnsound { .. }));
    }

    #[test]
    fn keyed_join_free_query_keeps_attribute_less_tuples() {
        // A join-free automaton passes key-partition validation
        // vacuously; tuples lacking the partition attribute must still
        // be routed (to the deterministic home shard), not dropped.
        use cer_automata::predicate::UnaryPredicate;
        use cer_automata::valuation::{Label, LabelSet};
        let mut schema = Schema::new();
        let unary = schema.add_relation("U", 1).unwrap();
        let mut builder = cer_automata::pcea::PceaBuilder::new(1);
        let q0 = builder.add_state();
        builder.add_initial_transition(
            UnaryPredicate::Relation(unary),
            LabelSet::singleton(Label(0)),
            q0,
        );
        builder.mark_final(q0);
        let pcea = builder.build();
        assert!(pcea.supports_key_partition(3), "vacuously sound");
        for shards in [1usize, 2, 4] {
            let mut rt = Runtime::new(shards);
            let id = rt
                .register(
                    QuerySpec::new("unary", pcea.clone(), WindowPolicy::Count(10))
                        // Partition attribute beyond the tuples' arity.
                        .with_partition(Partition::ByKey { pos: 3 }),
                )
                .unwrap();
            let stream: Vec<Tuple> = (0..5)
                .map(|k| cer_common::tuple::tup(unary, [k as i64]))
                .collect();
            let events = rt.push_batch(&stream);
            assert_eq!(events.len(), 5, "shards={shards}");
            assert!(events.iter().all(|e| e.query == id));
        }
    }

    #[test]
    fn batching_is_transparent() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let (mut whole_rt, ..) = p0_runtime(3);
        let whole = whole_rt.push_batch(&stream);
        let (mut split_rt, ..) = p0_runtime(3);
        let mut split = Vec::new();
        for chunk in stream.chunks(3) {
            split.extend(split_rt.push_batch(chunk));
        }
        assert_eq!(whole, split);
        assert_eq!(whole_rt.next_position(), stream.len() as u64);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let (_, r, s, t) = Schema::sigma0();
        let stream = sigma0_prefix(r, s, t);
        let (mut rt, a, b) = p0_runtime(4);
        rt.push_batch(&stream);
        let stats = rt.stats();
        assert_eq!(stats.per_query.len(), 2);
        assert_eq!((rt.query_name(a), rt.query_name(b)), ("pinned", "keyed"));
        let get = |q: QueryId| stats.per_query.iter().find(|(id, _)| *id == q).unwrap().1;
        // Both queries saw all 8 σ0 tuples (all are relevant relations).
        assert_eq!(get(a).positions, 8);
        assert_eq!(get(b).positions, 8);
        assert!(get(a).extends > 0 && get(b).extends > 0);
    }

    #[test]
    fn foreign_relations_are_not_routed() {
        let (mut schema, r, s, t) = Schema::sigma0();
        let noise = schema.add_relation("NOISE", 1).unwrap();
        let mut rt = Runtime::new(2);
        let q = rt
            .register(QuerySpec::new(
                "p0",
                paper_p0(r, s, t),
                WindowPolicy::Count(100),
            ))
            .unwrap();
        let mut stream = Vec::new();
        for tu in sigma0_prefix(r, s, t) {
            stream.push(cer_common::tuple::tup(noise, [1i64]));
            stream.push(tu);
        }
        let events = rt.push_batch(&stream);
        // Matches still complete (noise consumed global positions: the
        // completing R sits at interleaved position 11).
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.query == q && e.position == 11));
        // The shard evaluator never saw the noise tuples.
        let stats = rt.stats();
        assert_eq!(stats.per_query[0].1.positions, 8);
    }
}

//! The shared evaluator trait surface.
//!
//! Every per-query evaluator in the workspace — the paper's streaming
//! engine and the comparison baselines in `cer-baselines` — implements
//! [`Evaluator`], so differential tests and the multi-query
//! [`Runtime`](crate::runtime::Runtime) benches can swap engines behind
//! one interface and compare like-for-like.

use cer_automata::valuation::Valuation;
use cer_common::Tuple;

/// A single-query streaming evaluator: push one tuple, get the new
/// outputs completed at its position.
pub trait Evaluator {
    /// Push one tuple; returns the new outputs at its position.
    fn push_collect(&mut self, t: &Tuple) -> Vec<Valuation>;

    /// Push a tuple and count the new outputs. Engines that can count
    /// without materializing valuations should override this.
    fn push_count(&mut self, t: &Tuple) -> usize {
        self.push_collect(t).len()
    }

    /// Push a tuple, calling `f` for each new output.
    fn push_for_each(&mut self, t: &Tuple, f: &mut dyn FnMut(&Valuation)) {
        for v in self.push_collect(t) {
            f(&v);
        }
    }

    /// Push a whole slice of tuples in stream order, calling
    /// `f(offset, v)` for each new output, where `offset` indexes the
    /// tuple within `batch` whose position completed the match.
    ///
    /// The default implementation falls back to tuple-at-a-time
    /// [`push_for_each`](Self::push_for_each), so every evaluator gets
    /// the batch surface for free; engines with a vectorized batch path
    /// (the streaming engine's
    /// [`push_slice_for_each`](crate::evaluator::StreamingEvaluator::push_slice_for_each))
    /// override it. Outputs must be identical to pushing the tuples one
    /// at a time — batch size is an implementation detail, never a
    /// semantic knob.
    fn push_slice(&mut self, batch: &[Tuple], f: &mut dyn FnMut(usize, &Valuation)) {
        for (j, t) in batch.iter().enumerate() {
            self.push_for_each(t, &mut |v| f(j, v));
        }
    }
}

//! Cross-query shared evaluation: the per-shard predicate cache.
//!
//! Serving thousands of standing queries means most unary predicates are
//! referenced by *many* transitions across *many* queries — often the
//! very same structural predicate (relation tests above all). The naive
//! prefilter re-evaluates `tr.unary.matches(t)` once per referencing
//! transition per tuple, so per-batch cost scales linearly with query
//! count even when the distinct-predicate population is tiny.
//!
//! [`PredicateCache`] breaks that: each shard worker interns every
//! registered transition's unary predicate under its structural
//! [`PredicateKey`] and, once per drained batch, evaluates each
//! *distinct* predicate at most once per tuple into a slot-major shared
//! bitmask pool. Queries fan their per-transition masks out of the pool
//! by bit-gather (`crate::fire::FireStage::prefilter_shared`) — no
//! predicate re-evaluation, no tuple dereference.
//!
//! Evaluation of a slot is **lazy** (only slots some routed group
//! actually references this batch are computed) and **relation-confined**:
//! a per-batch relation index maps each relation to the tuple indices
//! carrying it, so a predicate confined to known relations
//! ([`UnaryPredicate::relations`]) only inspects candidate tuples; exact
//! relation tests and `True` fill their masks without calling
//! `matches()` at all.
//!
//! The outputs are bit-identical to the private prefilter: the pool bit
//! for `(slot, tuple)` is exactly `pred.matches(tuple)` (unary
//! predicates are pure), and the fan-out reads the same bits the
//! private path would have computed.

use cer_automata::predicate::{PredicateKey, UnaryPredicate};
use cer_common::hash::FxHashMap;
use cer_common::{RelationId, Tuple};

/// One live interned predicate.
struct Slot {
    pred: UnaryPredicate,
    /// Confining relations ([`UnaryPredicate::relations`]), computed at
    /// intern time.
    rels: Option<Vec<RelationId>>,
    /// How many registered transitions reference this slot.
    refs: u32,
    /// Whether the slot's pool words are valid for the current batch.
    computed: bool,
}

/// Per-shard predicate dedup cache. See the module docs.
#[derive(Default)]
pub(crate) struct PredicateCache {
    /// Structural key → slot index, for live slots.
    interned: FxHashMap<PredicateKey, u32>,
    /// Slot table; `None` marks a freed slot awaiting reuse.
    slots: Vec<Option<Slot>>,
    /// Freed slot indices.
    free: Vec<u32>,
    /// Slot-major bitmask pool: slot `s` owns words
    /// `s * stride .. (s + 1) * stride`; bit `j % 64` of word `j / 64`
    /// within that window is set iff the predicate accepts tuple `j` of
    /// the current batch.
    pool: Vec<u64>,
    /// Words per slot for the current batch.
    stride: usize,
    /// Tuples in the current batch.
    batch_len: usize,
    /// Relation → indices of batch tuples carrying it, rebuilt per
    /// batch (vectors are reused across batches).
    rel_index: FxHashMap<RelationId, Vec<u32>>,
    /// Cumulative `(slot, batch)` computations performed.
    distinct_computes: u64,
    /// Cumulative [`ensure`](Self::ensure) calls (one per referencing
    /// transition per batch).
    referenced: u64,
    /// Cumulative `matches()` calls actually performed.
    evals_done: u64,
    /// Cumulative `matches()` calls avoided versus the private
    /// prefilter (which pays one per tuple per referencing transition).
    evals_saved: u64,
}

impl PredicateCache {
    /// Intern a predicate under its structural key, returning its slot.
    /// Reference-counted: structurally identical predicates share one
    /// slot no matter how many transitions/queries reference them.
    pub fn intern(&mut self, pred: &UnaryPredicate) -> u32 {
        let key = pred.canonical_key();
        if let Some(&s) = self.interned.get(&key) {
            self.slots[s as usize]
                .as_mut()
                .expect("interned key points at a live slot")
                .refs += 1;
            return s;
        }
        let slot = Slot {
            pred: pred.clone(),
            rels: pred.relations(),
            refs: 1,
            computed: false,
        };
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(slot);
                s
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.interned.insert(key, s);
        s
    }

    /// Drop one reference to a slot (query deregistered/replaced); the
    /// slot is freed for reuse when the last reference goes.
    pub fn release(&mut self, s: u32) {
        let entry = self.slots[s as usize]
            .as_mut()
            .expect("released slot is live");
        entry.refs -= 1;
        if entry.refs == 0 {
            let key = entry.pred.canonical_key();
            self.interned.remove(&key);
            self.slots[s as usize] = None;
            self.free.push(s);
        }
    }

    /// Start a new drained batch: invalidate every slot's pool words and
    /// rebuild the per-relation tuple index. `O(slots + batch)`.
    pub fn begin_batch(&mut self, tuples: &[(u64, Tuple)]) {
        self.batch_len = tuples.len();
        self.stride = tuples.len().div_ceil(64).max(1);
        // Stale words from a previous batch layout are harmless: a slot
        // is read only after `ensure` recomputed it (computed = false).
        self.pool.resize(self.slots.len() * self.stride, 0);
        for entry in self.slots.iter_mut().flatten() {
            entry.computed = false;
        }
        for v in self.rel_index.values_mut() {
            v.clear();
        }
        for (j, (_, t)) in tuples.iter().enumerate() {
            self.rel_index
                .entry(t.relation())
                .or_default()
                .push(j as u32);
        }
    }

    /// The slot's bitmask over the current batch, computing it on first
    /// reference. `tuples` must be the batch passed to
    /// [`begin_batch`](Self::begin_batch).
    pub fn ensure(&mut self, s: u32, tuples: &[(u64, Tuple)]) -> &[u64] {
        debug_assert_eq!(tuples.len(), self.batch_len);
        self.referenced += 1;
        let stride = self.stride;
        let range = s as usize * stride..(s as usize + 1) * stride;
        let entry = self.slots[s as usize]
            .as_mut()
            .expect("ensured slot is live");
        if entry.computed {
            self.evals_saved += self.batch_len as u64;
            return &self.pool[range];
        }
        entry.computed = true;
        self.distinct_computes += 1;
        let words = &mut self.pool[range.clone()];
        words.fill(0);
        // `matches()` calls this computation actually pays; the private
        // prefilter would have paid `batch_len` per referencing
        // transition.
        let mut paid = 0u64;
        match &entry.pred {
            UnaryPredicate::True if self.batch_len > 0 => {
                words.fill(!0);
                let tail = self.batch_len % 64;
                if tail != 0 {
                    words[stride - 1] &= (1u64 << tail) - 1;
                }
            }
            UnaryPredicate::True => {}
            // An exact relation test is the per-batch relation index.
            UnaryPredicate::Relation(r) => {
                if let Some(idx) = self.rel_index.get(r) {
                    for &j in idx {
                        words[j as usize / 64] |= 1 << (j % 64);
                    }
                }
            }
            pred => match &entry.rels {
                // Confined: only candidate tuples of the confining
                // relations can match.
                Some(rs) => {
                    for r in rs {
                        if let Some(idx) = self.rel_index.get(r) {
                            for &j in idx {
                                paid += 1;
                                if pred.matches(&tuples[j as usize].1) {
                                    words[j as usize / 64] |= 1 << (j % 64);
                                }
                            }
                        }
                    }
                }
                // Unconfined (`Cmp`, `Custom`): every tuple is a
                // candidate.
                None => {
                    for (j, (_, t)) in tuples.iter().enumerate() {
                        paid += 1;
                        if pred.matches(t) {
                            words[j / 64] |= 1 << (j % 64);
                        }
                    }
                }
            },
        }
        self.evals_done += paid;
        self.evals_saved += self.batch_len as u64 - paid;
        &self.pool[range]
    }

    /// Live distinct predicates (slots currently interned).
    pub fn distinct_predicates(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Total references held by registered transitions.
    pub fn referenced_predicates(&self) -> usize {
        self.slots.iter().flatten().map(|e| e.refs as usize).sum()
    }

    /// Cumulative `matches()` calls performed.
    pub fn evals_done(&self) -> u64 {
        self.evals_done
    }

    /// Cumulative `matches()` calls avoided versus the private
    /// prefilter.
    pub fn evals_saved(&self) -> u64 {
        self.evals_saved
    }

    /// Cumulative `(slot, batch)` computations.
    #[cfg(test)]
    pub fn distinct_computes(&self) -> u64 {
        self.distinct_computes
    }

    /// Cumulative `ensure` calls.
    #[cfg(test)]
    pub fn references(&self) -> u64 {
        self.referenced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::predicate::CmpOp;
    use cer_common::tuple::tup;
    use cer_common::{Schema, Value};

    /// Bits set in a slot mask, as tuple indices.
    fn ones(mask: &[u64]) -> Vec<u32> {
        let mut out = Vec::new();
        for (w, &word) in mask.iter().enumerate() {
            for b in 0..64 {
                if word >> b & 1 == 1 {
                    out.push((w * 64 + b) as u32);
                }
            }
        }
        out
    }

    #[test]
    fn hit_counters_match_hand_counted_dedup() {
        let (_, r, s, t) = Schema::sigma0();
        // Batch: 3×T, 3×S, 2×R = 8 tuples.
        let batch: Vec<(u64, Tuple)> = vec![
            (0, tup(t, [1i64])),
            (1, tup(s, [1i64, 10])),
            (2, tup(t, [2i64])),
            (3, tup(s, [2i64, 20])),
            (4, tup(r, [1i64, 10])),
            (5, tup(t, [3i64])),
            (6, tup(s, [3i64, 5])),
            (7, tup(r, [2i64, 20])),
        ];
        let mut cache = PredicateCache::default();
        let rel_t = cache.intern(&UnaryPredicate::Relation(t));
        let rel_t2 = cache.intern(&UnaryPredicate::Relation(t));
        assert_eq!(rel_t, rel_t2, "structural duplicates share a slot");
        let s_ge = cache.intern(&UnaryPredicate::Relation(s).and(UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Ge,
            value: Value::Int(10),
        }));
        let any = cache.intern(&UnaryPredicate::Cmp {
            pos: 0,
            op: CmpOp::Ge,
            value: Value::Int(2),
        });
        assert_eq!(cache.distinct_predicates(), 3);
        assert_eq!(cache.referenced_predicates(), 4);

        cache.begin_batch(&batch);
        // Exact relation test: filled from the relation index, zero
        // matches() calls, 8 saved vs the private prefilter.
        assert_eq!(ones(cache.ensure(rel_t, &batch)), vec![0, 2, 5]);
        assert_eq!((cache.evals_done(), cache.evals_saved()), (0, 8));
        // Second reference to the same slot: pure cache hit.
        assert_eq!(ones(cache.ensure(rel_t, &batch)), vec![0, 2, 5]);
        assert_eq!((cache.evals_done(), cache.evals_saved()), (0, 16));
        // Confined conjunction: only the 3 S tuples are candidates.
        assert_eq!(ones(cache.ensure(s_ge, &batch)), vec![1, 3]);
        assert_eq!((cache.evals_done(), cache.evals_saved()), (3, 21));
        // Unconfined Cmp: all 8 tuples inspected, nothing saved.
        assert_eq!(ones(cache.ensure(any, &batch)), vec![2, 3, 5, 6, 7]);
        assert_eq!((cache.evals_done(), cache.evals_saved()), (11, 21));
        assert_eq!(cache.distinct_computes(), 3);
        assert_eq!(cache.references(), 4);

        // Next batch invalidates: the same slot recomputes once.
        cache.begin_batch(&batch[..2]);
        assert_eq!(ones(cache.ensure(rel_t, &batch[..2])), vec![0]);
        assert_eq!(ones(cache.ensure(rel_t, &batch[..2])), vec![0]);
        assert_eq!(cache.distinct_computes(), 4);
    }

    #[test]
    fn release_frees_and_reuses_slots() {
        let (_, r, s, _) = Schema::sigma0();
        let mut cache = PredicateCache::default();
        let a = cache.intern(&UnaryPredicate::Relation(r));
        let b = cache.intern(&UnaryPredicate::Relation(r));
        assert_eq!(a, b);
        let c = cache.intern(&UnaryPredicate::Relation(s));
        assert_ne!(a, c);
        assert_eq!(cache.distinct_predicates(), 2);
        cache.release(a);
        assert_eq!(cache.distinct_predicates(), 2, "one reference remains");
        cache.release(b);
        assert_eq!(cache.distinct_predicates(), 1);
        // The freed slot is reused; a fresh intern of the same structure
        // is a new, independent entry.
        let d = cache.intern(&UnaryPredicate::Relation(r));
        assert_eq!(d, a, "freed slot reused");
        assert_eq!(cache.distinct_predicates(), 2);
    }

    #[test]
    fn true_predicate_fills_without_tuple_access() {
        let (_, _, _, t) = Schema::sigma0();
        let batch: Vec<(u64, Tuple)> = (0..70).map(|i| (i, tup(t, [i as i64]))).collect();
        let mut cache = PredicateCache::default();
        let slot = cache.intern(&UnaryPredicate::True);
        cache.begin_batch(&batch);
        let mask = cache.ensure(slot, &batch);
        assert_eq!(mask.len(), 2, "70 tuples span two words");
        assert_eq!(ones(mask).len(), 70, "every tuple accepted");
        assert_eq!(mask[1] >> (70 - 64), 0, "tail bits cleared");
        assert_eq!(cache.evals_done(), 0);
        assert_eq!(cache.evals_saved(), 70);
    }
}

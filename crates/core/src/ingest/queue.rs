//! Bounded per-shard ingest queues.
//!
//! Each shard worker owns one [`ShardQueue`]: a mutex-and-condvar MPSC
//! queue that carries position-stamped tuple batches *and* control
//! messages (register, deregister, stats, barriers). Capacity is
//! accounted in **tuples**, not messages, and only tuple batches count —
//! control traffic always gets through, so a saturated firehose can
//! never wedge registration or shutdown.
//!
//! Two backpressure behaviours are supported per push
//! ([`BackpressurePolicy`]): `Block` parks the producer until the worker
//! has drained some room (the bound is soft — a batch is admitted whole
//! once *any* room exists, so occupancy can overshoot by one batch), and
//! `DropNewest` truncates the incoming batch to the remaining room,
//! counting every dropped tuple.

use super::BackpressurePolicy;
use crate::evaluator::EngineStats;
use crate::runtime::{Partition, QueryId};
use crate::window::WindowPolicy;
use cer_automata::pcea::Pcea;
use cer_common::{RelationId, Tuple};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

/// The queue was closed (its runtime has shut down).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Closed;

/// What travels to a shard worker. Tuple batches compete for queue
/// capacity; everything else is control traffic and always admitted.
pub(crate) enum ShardMsg {
    /// Position-stamped tuples in increasing position order.
    Tuples(Vec<(u64, Tuple)>),
    /// Host a new query on this shard.
    Register {
        id: QueryId,
        pcea: Pcea,
        window: WindowPolicy,
        partition: Partition,
        gc_every: u64,
        listens: Option<Vec<RelationId>>,
    },
    /// Drop a hosted query; replies with its final engine counters
    /// (`None` if this shard never hosted it).
    Deregister {
        id: QueryId,
        reply: Sender<Option<EngineStats>>,
    },
    /// Report per-query engine counters.
    Stats {
        reply: Sender<Vec<(QueryId, EngineStats)>>,
    },
    /// FIFO fence: the worker replies once every earlier message on this
    /// queue has been fully processed (tuples evaluated, match events
    /// published).
    Barrier { reply: Sender<()> },
}

/// Occupancy counters of one shard queue, readable at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Tuples currently queued (stamped but not yet picked up by the
    /// shard worker).
    pub depth: usize,
    /// Maximum `depth` ever observed.
    pub high_water: usize,
    /// Tuples dropped by [`BackpressurePolicy::DropNewest`].
    pub dropped: u64,
}

struct Inner {
    msgs: VecDeque<ShardMsg>,
    depth: usize,
    high_water: usize,
    dropped: u64,
    closed: bool,
}

/// A bounded MPSC queue feeding one shard worker. Producers are the
/// sequencer (under its lock) and the runtime's control plane; the
/// single consumer is the shard worker.
pub(crate) struct ShardQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl ShardQueue {
    pub fn new(capacity: usize) -> Self {
        ShardQueue {
            inner: Mutex::new(Inner {
                msgs: VecDeque::new(),
                depth: 0,
                high_water: 0,
                dropped: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a stamped tuple batch under `policy`. Returns how many
    /// tuples were dropped (`DropNewest` only; `Block` never drops).
    pub fn push_tuples(
        &self,
        mut tuples: Vec<(u64, Tuple)>,
        policy: BackpressurePolicy,
    ) -> Result<u64, Closed> {
        if tuples.is_empty() {
            return Ok(0);
        }
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        let dropped = match policy {
            BackpressurePolicy::Block => {
                while inner.depth >= self.capacity && !inner.closed {
                    inner = self.not_full.wait(inner).expect("ingest queue poisoned");
                }
                if inner.closed {
                    return Err(Closed);
                }
                0
            }
            BackpressurePolicy::DropNewest => {
                let room = self.capacity.saturating_sub(inner.depth);
                let dropped = tuples.len().saturating_sub(room) as u64;
                tuples.truncate(room);
                inner.dropped += dropped;
                dropped
            }
        };
        if !tuples.is_empty() {
            inner.depth += tuples.len();
            inner.high_water = inner.high_water.max(inner.depth);
            inner.msgs.push_back(ShardMsg::Tuples(tuples));
            self.not_empty.notify_one();
        }
        Ok(dropped)
    }

    /// Enqueue a control message; bypasses the capacity bound and is
    /// never dropped.
    pub fn push_control(&self, msg: ShardMsg) -> Result<(), Closed> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        inner.msgs.push_back(msg);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop for the shard worker. Returns `None` once the queue
    /// is closed *and* fully drained, so no queued work is ever lost.
    pub fn pop(&self) -> Option<ShardMsg> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        loop {
            if let Some(msg) = inner.msgs.pop_front() {
                if let ShardMsg::Tuples(ts) = &msg {
                    inner.depth -= ts.len();
                    self.not_full.notify_all();
                }
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("ingest queue poisoned");
        }
    }

    /// Close the queue: producers fail fast, the worker drains what is
    /// left and exits.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("ingest queue poisoned");
        QueueStats {
            depth: inner.depth,
            high_water: inner.high_water,
            dropped: inner.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::tuple::tup;
    use cer_common::Schema;

    fn stamped(r: cer_common::RelationId, n: usize) -> Vec<(u64, Tuple)> {
        (0..n).map(|i| (i as u64, tup(r, [i as i64]))).collect()
    }

    #[test]
    fn drop_newest_truncates_and_counts() {
        let (_, r, _, _) = Schema::sigma0();
        let q = ShardQueue::new(3);
        let dropped = q
            .push_tuples(stamped(r, 5), BackpressurePolicy::DropNewest)
            .unwrap();
        assert_eq!(dropped, 2);
        let st = q.stats();
        assert_eq!((st.depth, st.high_water, st.dropped), (3, 3, 2));
        // Full: everything new is dropped, control still gets through.
        let dropped = q
            .push_tuples(stamped(r, 2), BackpressurePolicy::DropNewest)
            .unwrap();
        assert_eq!(dropped, 2);
        let (tx, rx) = std::sync::mpsc::channel();
        q.push_control(ShardMsg::Barrier { reply: tx }).unwrap();
        match q.pop().unwrap() {
            ShardMsg::Tuples(ts) => assert_eq!(ts.len(), 3),
            _ => panic!("tuples first"),
        }
        match q.pop().unwrap() {
            ShardMsg::Barrier { reply } => reply.send(()).unwrap(),
            _ => panic!("barrier second"),
        }
        rx.recv().unwrap();
        assert_eq!(q.stats().depth, 0);
    }

    #[test]
    fn block_waits_for_room_and_close_drains() {
        let (_, r, _, _) = Schema::sigma0();
        let q = std::sync::Arc::new(ShardQueue::new(2));
        q.push_tuples(stamped(r, 2), BackpressurePolicy::Block)
            .unwrap();
        let producer = {
            let q = q.clone();
            let batch = stamped(r, 2);
            std::thread::spawn(move || q.push_tuples(batch, BackpressurePolicy::Block))
        };
        // The producer is parked until the consumer drains.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished());
        assert!(matches!(q.pop(), Some(ShardMsg::Tuples(_))));
        assert_eq!(producer.join().unwrap(), Ok(0));
        q.close();
        // The queued batch survives the close; then the queue reports
        // exhaustion and producers fail fast.
        assert!(matches!(q.pop(), Some(ShardMsg::Tuples(_))));
        assert!(q.pop().is_none());
        assert_eq!(
            q.push_tuples(stamped(r, 1), BackpressurePolicy::Block),
            Err(Closed)
        );
    }
}

//! Bounded per-shard ingest queues.
//!
//! Each shard worker owns one [`ShardQueue`]: a mutex-and-condvar MPSC
//! queue that carries position-stamped tuple batches *and* control
//! messages (register, deregister, stats, barriers). Capacity is
//! accounted in **tuples**, not messages, and only tuple batches count —
//! control traffic always gets through, so a saturated firehose can
//! never wedge registration or shutdown.
//!
//! Two backpressure behaviours are supported per push
//! ([`BackpressurePolicy`]): `Block` parks the producer until the worker
//! has drained some room (the bound is soft — a batch is admitted whole
//! once *any* room exists, so occupancy can overshoot by one batch), and
//! `DropNewest` truncates the incoming batch to the remaining room,
//! counting every dropped tuple.

use super::BackpressurePolicy;
use crate::evaluator::EngineStats;
use crate::runtime::{Partition, QueryId};
use crate::window::WindowPolicy;
use cer_automata::pcea::Pcea;
use cer_common::{RelationId, Tuple};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

/// The queue was closed (its runtime has shut down).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Closed;

/// What travels to a shard worker. Tuple batches compete for queue
/// capacity; everything else is control traffic and always admitted.
pub(crate) enum ShardMsg {
    /// Position-stamped tuples in increasing position order.
    Tuples(Vec<(u64, Tuple)>),
    /// Host a new query on this shard.
    Register {
        id: QueryId,
        pcea: Pcea,
        window: WindowPolicy,
        partition: Partition,
        gc_every: u64,
        listens: Option<Vec<RelationId>>,
    },
    /// Drop a hosted query; replies with its final engine counters
    /// (`None` if this shard never hosted it).
    Deregister {
        id: QueryId,
        reply: Sender<Option<EngineStats>>,
    },
    /// Report per-query engine counters.
    Stats {
        reply: Sender<Vec<(QueryId, EngineStats)>>,
    },
    /// FIFO fence: the worker replies once every earlier message on this
    /// queue has been fully processed (tuples evaluated, match events
    /// published).
    Barrier { reply: Sender<()> },
}

/// Occupancy counters of one shard queue, readable at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Tuples currently queued (stamped but not yet picked up by the
    /// shard worker).
    pub depth: usize,
    /// Maximum `depth` ever observed.
    pub high_water: usize,
    /// Tuples dropped by [`BackpressurePolicy::DropNewest`].
    pub dropped: u64,
    /// Coalesced tuple batches handed to the shard worker so far (one
    /// per worker wakeup that yielded tuples).
    pub drained_batches: u64,
    /// Total tuples handed to the shard worker across those batches;
    /// `drained_tuples / drained_batches` is the mean evaluation batch
    /// size the worker actually saw.
    pub drained_tuples: u64,
    /// Largest single coalesced batch handed to the worker.
    pub max_drain_batch: usize,
}

struct Inner {
    msgs: VecDeque<ShardMsg>,
    depth: usize,
    high_water: usize,
    dropped: u64,
    drained_batches: u64,
    drained_tuples: u64,
    max_drain: usize,
    closed: bool,
}

/// A bounded MPSC queue feeding one shard worker. Producers are the
/// sequencer (under its lock) and the runtime's control plane; the
/// single consumer is the shard worker.
pub(crate) struct ShardQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl ShardQueue {
    pub fn new(capacity: usize) -> Self {
        ShardQueue {
            inner: Mutex::new(Inner {
                msgs: VecDeque::new(),
                depth: 0,
                high_water: 0,
                dropped: 0,
                drained_batches: 0,
                drained_tuples: 0,
                max_drain: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a stamped tuple batch under `policy`. Returns how many
    /// tuples were dropped (`DropNewest` only; `Block` never drops).
    pub fn push_tuples(
        &self,
        mut tuples: Vec<(u64, Tuple)>,
        policy: BackpressurePolicy,
    ) -> Result<u64, Closed> {
        if tuples.is_empty() {
            return Ok(0);
        }
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        let dropped = match policy {
            BackpressurePolicy::Block => {
                while inner.depth >= self.capacity && !inner.closed {
                    inner = self.not_full.wait(inner).expect("ingest queue poisoned");
                }
                if inner.closed {
                    return Err(Closed);
                }
                0
            }
            BackpressurePolicy::DropNewest => {
                let room = self.capacity.saturating_sub(inner.depth);
                let dropped = tuples.len().saturating_sub(room) as u64;
                tuples.truncate(room);
                inner.dropped += dropped;
                dropped
            }
        };
        if !tuples.is_empty() {
            inner.depth += tuples.len();
            inner.high_water = inner.high_water.max(inner.depth);
            inner.msgs.push_back(ShardMsg::Tuples(tuples));
            self.not_empty.notify_one();
        }
        Ok(dropped)
    }

    /// Enqueue a control message; bypasses the capacity bound and is
    /// never dropped.
    pub fn push_control(&self, msg: ShardMsg) -> Result<(), Closed> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        inner.msgs.push_back(msg);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop without coalescing (`pop_batch(1)`), for tests.
    #[cfg(test)]
    pub fn pop(&self) -> Option<ShardMsg> {
        self.pop_batch(1)
    }

    /// Blocking pop for the shard worker. Returns `None` once the queue
    /// is closed *and* fully drained, so no queued work is ever lost.
    ///
    /// When the front message is a tuple batch, consecutive tuple
    /// batches already queued behind it are opportunistically coalesced
    /// into one slice until it reaches `max_batch` tuples, so a worker
    /// that fell behind evaluates in large batches instead of one
    /// sequencer push at a time. Coalescing only ever merges
    /// front-of-queue neighbours and never crosses a control message,
    /// so FIFO ordering (and barrier semantics) is preserved; the slice
    /// may overshoot `max_batch` by at most one producer batch.
    pub fn pop_batch(&self, max_batch: usize) -> Option<ShardMsg> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        loop {
            if let Some(msg) = inner.msgs.pop_front() {
                let msg = match msg {
                    ShardMsg::Tuples(mut ts) => {
                        while ts.len() < max_batch
                            && matches!(inner.msgs.front(), Some(ShardMsg::Tuples(_)))
                        {
                            match inner.msgs.pop_front() {
                                Some(ShardMsg::Tuples(more)) => ts.extend(more),
                                _ => unreachable!("front was a tuple batch"),
                            }
                        }
                        inner.depth -= ts.len();
                        inner.drained_batches += 1;
                        inner.drained_tuples += ts.len() as u64;
                        inner.max_drain = inner.max_drain.max(ts.len());
                        self.not_full.notify_all();
                        ShardMsg::Tuples(ts)
                    }
                    control => control,
                };
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("ingest queue poisoned");
        }
    }

    /// Close the queue: producers fail fast, the worker drains what is
    /// left and exits.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("ingest queue poisoned");
        QueueStats {
            depth: inner.depth,
            high_water: inner.high_water,
            dropped: inner.dropped,
            drained_batches: inner.drained_batches,
            drained_tuples: inner.drained_tuples,
            max_drain_batch: inner.max_drain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::tuple::tup;
    use cer_common::Schema;

    fn stamped(r: cer_common::RelationId, n: usize) -> Vec<(u64, Tuple)> {
        (0..n).map(|i| (i as u64, tup(r, [i as i64]))).collect()
    }

    #[test]
    fn drop_newest_truncates_and_counts() {
        let (_, r, _, _) = Schema::sigma0();
        let q = ShardQueue::new(3);
        let dropped = q
            .push_tuples(stamped(r, 5), BackpressurePolicy::DropNewest)
            .unwrap();
        assert_eq!(dropped, 2);
        let st = q.stats();
        assert_eq!((st.depth, st.high_water, st.dropped), (3, 3, 2));
        // Full: everything new is dropped, control still gets through.
        let dropped = q
            .push_tuples(stamped(r, 2), BackpressurePolicy::DropNewest)
            .unwrap();
        assert_eq!(dropped, 2);
        let (tx, rx) = std::sync::mpsc::channel();
        q.push_control(ShardMsg::Barrier { reply: tx }).unwrap();
        match q.pop().unwrap() {
            ShardMsg::Tuples(ts) => assert_eq!(ts.len(), 3),
            _ => panic!("tuples first"),
        }
        match q.pop().unwrap() {
            ShardMsg::Barrier { reply } => reply.send(()).unwrap(),
            _ => panic!("barrier second"),
        }
        rx.recv().unwrap();
        assert_eq!(q.stats().depth, 0);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max_but_never_crosses_control() {
        let (_, r, _, _) = Schema::sigma0();
        let q = ShardQueue::new(100);
        // Three consecutive tuple batches, a barrier, then one more.
        q.push_tuples(stamped(r, 3), BackpressurePolicy::Block)
            .unwrap();
        q.push_tuples(stamped(r, 3), BackpressurePolicy::Block)
            .unwrap();
        q.push_tuples(stamped(r, 3), BackpressurePolicy::Block)
            .unwrap();
        let (tx, _rx) = std::sync::mpsc::channel();
        q.push_control(ShardMsg::Barrier { reply: tx }).unwrap();
        q.push_tuples(stamped(r, 2), BackpressurePolicy::Block)
            .unwrap();
        // max_batch 5: the first two batches coalesce (3 < 5, then 6 ≥ 5
        // — overshoot by at most one producer batch), the third stays.
        match q.pop_batch(5).unwrap() {
            ShardMsg::Tuples(ts) => assert_eq!(ts.len(), 6),
            _ => panic!("tuples first"),
        }
        // The third batch never merges across the barrier.
        match q.pop_batch(100).unwrap() {
            ShardMsg::Tuples(ts) => assert_eq!(ts.len(), 3),
            _ => panic!("tuples second"),
        }
        assert!(matches!(
            q.pop_batch(100).unwrap(),
            ShardMsg::Barrier { .. }
        ));
        match q.pop_batch(100).unwrap() {
            ShardMsg::Tuples(ts) => assert_eq!(ts.len(), 2),
            _ => panic!("tuples last"),
        }
        let st = q.stats();
        assert_eq!(st.depth, 0);
        assert_eq!(st.drained_batches, 3);
        assert_eq!(st.drained_tuples, 11);
        assert_eq!(st.max_drain_batch, 6);
    }

    #[test]
    fn block_waits_for_room_and_close_drains() {
        let (_, r, _, _) = Schema::sigma0();
        let q = std::sync::Arc::new(ShardQueue::new(2));
        q.push_tuples(stamped(r, 2), BackpressurePolicy::Block)
            .unwrap();
        let producer = {
            let q = q.clone();
            let batch = stamped(r, 2);
            std::thread::spawn(move || q.push_tuples(batch, BackpressurePolicy::Block))
        };
        // The producer is parked until the consumer drains.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished());
        assert!(matches!(q.pop(), Some(ShardMsg::Tuples(_))));
        assert_eq!(producer.join().unwrap(), Ok(0));
        q.close();
        // The queued batch survives the close; then the queue reports
        // exhaustion and producers fail fast.
        assert!(matches!(q.pop(), Some(ShardMsg::Tuples(_))));
        assert!(q.pop().is_none());
        assert_eq!(
            q.push_tuples(stamped(r, 1), BackpressurePolicy::Block),
            Err(Closed)
        );
    }
}
